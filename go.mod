module layph

go 1.24
