package layph

import (
	"testing"
)

// TestStreamedMatchesRestart10k is the streaming acceptance check: 10,000
// unit updates pushed through layph.NewStream with the Layph engine on
// SSSP must leave a final state vector matching both the one-shot
// ApplyBatch+Update path and the from-scratch Run restart baseline.
func TestStreamedMatchesRestart10k(t *testing.T) {
	g := GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 2000, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.3,
		Weighted: true, Seed: 11,
	})
	pristine := g.Clone()

	// Pre-generate 10k valid unit updates (the generator evolves a
	// private clone so deletions stay valid in sequence order).
	seq := NewBatchGenerator(17).UnitSequence(g, 10000, true)

	sys := NewLayph(g, SSSP(0), Config{Threads: 2})
	st := NewStream(g, sys, StreamConfig{MaxBatch: 500, MaxDelay: -1})
	for _, u := range seq {
		if err := st.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := st.Query()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.Updates != 10000 {
		t.Fatalf("stream applied %d updates, want 10000", snap.Updates)
	}
	if m := st.Metrics(); m.Batches < 20 {
		t.Fatalf("stream flushed %d batches, want >= 20 with MaxBatch=500", m.Batches)
	}

	// One-shot path: the whole sequence as a single batch through a fresh
	// Layph engine on the pristine graph.
	oneShot := NewLayph(pristine, SSSP(0), Config{Threads: 2})
	oneShot.Update(ApplyBatch(pristine, Batch(seq)))
	n := g.Cap()
	if !StatesClose(snap.States[:n], oneShot.States()[:n], 1e-6) {
		t.Fatal("streamed states differ from one-shot ApplyBatch+Update")
	}

	// Restart baseline on the final (stream-mutated) graph.
	want := Run(g, SSSP(0), 2)
	if !StatesClose(snap.States[:n], want[:n], 1e-6) {
		t.Fatal("streamed states differ from Run restart baseline")
	}
}

// TestShardedStreamMatchesRestart pushes a seeded unit-update sequence
// through layph.NewShardedStream (4 community-aware shards) and checks
// the final snapshot against the from-scratch restart baseline, plus the
// scatter-gather surface (Owner totality, per-shard infos).
func TestShardedStreamMatchesRestart(t *testing.T) {
	g := GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 1000, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.3,
		Weighted: true, Seed: 13,
	})
	seq := NewBatchGenerator(19).UnitSequence(g, 3000, true)

	st := NewShardedStream(g, SSSP(0), ShardConfig{Shards: 4, Threads: 1},
		StreamConfig{MaxBatch: 300, MaxDelay: -1})
	for _, u := range seq {
		if err := st.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := st.Query()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	gr, ok := st.System().(*ShardedGroup)
	if !ok {
		t.Fatalf("sharded stream serves a %T", st.System())
	}
	if gr.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", gr.NumShards())
	}
	if infos := gr.ShardInfos(); len(infos) != 4 {
		t.Fatalf("ShardInfos has %d entries, want 4", len(infos))
	}

	n := g.Cap()
	want := Run(g, SSSP(0), 2)
	if !StatesClose(snap.States[:n], want[:n], 1e-6) {
		t.Fatal("sharded streamed states differ from Run restart baseline")
	}
}

// TestStreamTextFormatExposed exercises the public wire-format helpers.
func TestStreamTextFormatExposed(t *testing.T) {
	u, err := ParseUpdate("a 3 4 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != AddEdge || u.U != 3 || u.V != 4 || u.W != 2.5 {
		t.Fatalf("parsed %v", u)
	}
}
