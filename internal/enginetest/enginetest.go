// Package enginetest provides the shared correctness harness for every
// incremental engine in this repository: after each random update batch, the
// engine's states must match a from-scratch batch restart on the updated
// graph (exactly for the tropical semiring, within tolerance for the real
// one). This is the defining equation of incremental computation,
// IA(A(G), ΔG) = A(G ⊕ ΔG) — Equation (4) of the paper.
package enginetest

import (
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Factory constructs an incremental engine bound to g and a. The factory is
// expected to run the initial batch computation.
type Factory func(g *graph.Graph, a algo.Algorithm) inc.System

// AlgoMaker builds an algorithm instance; source-rooted algorithms should
// root at vertex 0 (the harness never deletes vertex 0).
type AlgoMaker func() algo.Algorithm

// Config tunes an equivalence run.
type Config struct {
	Seeds         []int64
	Vertices      int
	Batches       int // update batches per seed
	BatchSize     int // edge updates per batch
	VertexUpdates bool
	Atol          float64 // state comparison tolerance
	Weighted      bool
}

// DefaultConfig returns the standard small-graph equivalence setup.
func DefaultConfig() Config {
	return Config{
		Seeds:     []int64{1, 2, 3},
		Vertices:  400,
		Batches:   4,
		BatchSize: 60,
		Atol:      1e-6,
		Weighted:  true,
	}
}

// RunEquivalence drives the engine through cfg.Batches random batches per
// seed and fails the test on the first divergence from a batch restart.
// Under -short the run is trimmed to one seed and two batches so the
// race-detector CI job stays within budget.
func RunEquivalence(t *testing.T, name string, factory Factory, mkAlgo AlgoMaker, cfg Config) {
	t.Helper()
	if testing.Short() {
		if len(cfg.Seeds) > 1 {
			cfg.Seeds = cfg.Seeds[:1]
		}
		if cfg.Batches > 2 {
			cfg.Batches = 2
		}
	}
	for _, seed := range cfg.Seeds {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices:      cfg.Vertices,
			MeanCommunity: 25,
			IntraDegree:   6,
			InterDegree:   0.4,
			HubFraction:   0.01,
			HubDegree:     10,
			Weighted:      cfg.Weighted,
			Seed:          seed,
		})
		sys := factory(g, mkAlgo())
		genr := delta.NewGenerator(seed * 977)
		for b := 0; b < cfg.Batches; b++ {
			batch := genr.EdgeBatch(g, cfg.BatchSize, cfg.Weighted)
			if cfg.VertexUpdates {
				batch = append(batch, genr.VertexBatch(g, 3, 3, 2, cfg.Weighted)...)
				batch = dropVertexZeroDeletes(batch)
			}
			applied := delta.Apply(g, batch)
			sys.Update(applied)

			want := engine.RunBatch(g, mkAlgo(), engine.Options{Workers: 4})
			got := sys.States()
			if len(got) < len(want.X) {
				t.Fatalf("%s seed=%d batch=%d: state vector too short (%d < %d)",
					name, seed, b, len(got), len(want.X))
			}
			if !statesCloseLive(g, got, want.X, cfg.Atol) {
				t.Fatalf("%s seed=%d batch=%d: incremental != restart, max diff %v",
					name, seed, b, maxDiffLive(g, got, want.X))
			}
		}
	}
}

func dropVertexZeroDeletes(b delta.Batch) delta.Batch {
	out := b[:0]
	for _, u := range b {
		if u.Kind == delta.DelVertex && u.U == 0 {
			continue
		}
		out = append(out, u)
	}
	return out
}

func statesCloseLive(g *graph.Graph, got, want []float64, atol float64) bool {
	ok := true
	g.Vertices(func(v graph.VertexID) {
		if !ok {
			return
		}
		if !algo.StatesClose(got[v:v+1], want[v:v+1], atol) {
			ok = false
		}
	})
	return ok
}

func maxDiffLive(g *graph.Graph, got, want []float64) float64 {
	var worst float64
	g.Vertices(func(v graph.VertexID) {
		if d := algo.MaxStateDiff(got[v:v+1], want[v:v+1]); d > worst {
			worst = d
		}
	})
	return worst
}

// AllAlgorithms returns the four paper workloads rooted at vertex 0 where
// applicable, plus connected components, keyed by name.
func AllAlgorithms() map[string]AlgoMaker {
	return map[string]AlgoMaker{
		"sssp":     func() algo.Algorithm { return algo.NewSSSP(0) },
		"bfs":      func() algo.Algorithm { return algo.NewBFS(0) },
		"cc":       func() algo.Algorithm { return algo.NewCC() },
		"pagerank": func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-10) },
		"php":      func() algo.Algorithm { return algo.NewPHP(0, 0.8, 1e-10) },
	}
}

// MinAlgorithms returns the idempotent workloads (KickStarter and RisGraph
// only support these, as in the paper; CC rides the same machinery).
func MinAlgorithms() map[string]AlgoMaker {
	all := AllAlgorithms()
	return map[string]AlgoMaker{"sssp": all["sssp"], "bfs": all["bfs"], "cc": all["cc"]}
}

// SumAlgorithms returns the non-idempotent workloads (GraphBolt and DZiG
// only support these, as in the paper).
func SumAlgorithms() map[string]AlgoMaker {
	all := AllAlgorithms()
	return map[string]AlgoMaker{"pagerank": all["pagerank"], "php": all["php"]}
}
