package enginetest

import (
	"testing"

	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
)

// NamedFactory pairs an engine constructor with the name reported on a
// divergence.
type NamedFactory struct {
	Name string
	New  Factory
}

// DifferentialConfig tunes RunDifferential.
type DifferentialConfig struct {
	// Seeds drive both graph generation and the update sequence.
	Seeds []int64
	// Vertices sizes the community graph every engine starts from.
	Vertices int
	// Batches is the number of update batches per seed; BatchSize the
	// number of edge updates per batch.
	Batches   int
	BatchSize int
	// AddVertices/DelVertices mix vertex churn into every batch (vertex 0,
	// the root of source-based algorithms, is never deleted).
	AddVertices, DelVertices int
	// Atol is the state comparison tolerance against the restart oracle.
	Atol float64
	// Weighted draws random edge weights (otherwise unit weights).
	Weighted bool
	// CSRCompactFraction, when positive, overrides the compaction
	// threshold on every engine graph (and the driver) so the flat-view
	// overlay compacts repeatedly mid-stream instead of once at the end.
	CSRCompactFraction float64
	// CheckCSR validates overlay coherence (CheckCSR) on every graph
	// after each batch, and forces an EnsureCSR compaction pass between
	// batches so engines see the view flip from overlay-served to
	// freshly compacted rows under them.
	CheckCSR bool
	// MigrationSize/MigrationRewire, when positive, mix a community-
	// migration churn sub-batch into every batch (delta.MigrationBatch):
	// a cluster of MigrationSize vertices is rewired with MigrationRewire
	// edges each into a different community neighborhood. This is the
	// drift schedule for adaptive re-layering: repeated migrations decay
	// any frozen layering, so it stresses membership-migration paths in
	// adaptive engines against the restart oracle.
	MigrationSize, MigrationRewire int
}

// DefaultDifferentialConfig returns the full-size fuzz setup.
func DefaultDifferentialConfig() DifferentialConfig {
	return DifferentialConfig{
		Seeds:       []int64{11, 12},
		Vertices:    500,
		Batches:     5,
		BatchSize:   50,
		AddVertices: 3,
		DelVertices: 2,
		Atol:        1e-6,
		Weighted:    true,
	}
}

// ShortDifferentialConfig returns the -short sizing: one seed, fewer and
// smaller batches, so the fuzzer fits the race-detector CI budget.
func ShortDifferentialConfig() DifferentialConfig {
	c := DefaultDifferentialConfig()
	c.Seeds = c.Seeds[:1]
	c.Batches = 3
	c.BatchSize = 30
	return c
}

// CSRDifferentialConfig returns the CSR-overlay stress schedule: a tiny
// compaction threshold so the flat view compacts several times
// mid-stream, heavy vertex churn so deletes tombstone vertices whose
// rows are still in the flat arrays (and Layph rewires its entry proxies
// across compactions), and per-batch CheckCSR coherence validation.
func CSRDifferentialConfig() DifferentialConfig {
	c := DefaultDifferentialConfig()
	c.Seeds = []int64{21}
	c.Batches = 6
	c.BatchSize = 40
	c.AddVertices = 5
	c.DelVertices = 4
	c.CSRCompactFraction = 0.01
	c.CheckCSR = true
	return c
}

// DriftDifferentialConfig returns the community-migration churn schedule:
// every batch moves a vertex cluster into a different community
// neighborhood on top of the usual edge/vertex churn, so frozen layerings
// drift while adaptive ones migrate memberships each batch.
func DriftDifferentialConfig() DifferentialConfig {
	c := DefaultDifferentialConfig()
	c.Seeds = []int64{31}
	c.Batches = 8
	c.BatchSize = 30
	c.MigrationSize = 12
	c.MigrationRewire = 4
	return c
}

// RunDifferential is the cross-engine differential fuzzer: every engine
// is constructed on its own clone of the same seeded community graph,
// then driven through an identical random update sequence (edge add/del
// plus vertex add/del mixes), and after every batch each engine's states
// are checked against a from-scratch batch restart on the updated graph —
// and therefore, transitively, against each other. A parallel engine that
// diverges from its sequential twin, or any engine that drifts from the
// restart oracle, fails with the engine name, seed and batch index.
func RunDifferential(t *testing.T, engines []NamedFactory, mkAlgo AlgoMaker, cfg DifferentialConfig) {
	t.Helper()
	if len(engines) == 0 {
		t.Fatal("enginetest: no engines to differentiate")
	}
	for _, seed := range cfg.Seeds {
		driver, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices:      cfg.Vertices,
			MeanCommunity: 25,
			IntraDegree:   6,
			InterDegree:   0.4,
			HubFraction:   0.01,
			HubDegree:     10,
			Weighted:      cfg.Weighted,
			Seed:          seed,
		})
		if cfg.CSRCompactFraction > 0 {
			driver.SetCSRCompactFraction(cfg.CSRCompactFraction)
		}
		sys := make([]inc.System, len(engines))
		graphs := make([]*graph.Graph, len(engines))
		for i, e := range engines {
			graphs[i] = driver.Clone()
			if cfg.CSRCompactFraction > 0 {
				graphs[i].SetCSRCompactFraction(cfg.CSRCompactFraction)
			}
			sys[i] = e.New(graphs[i], mkAlgo())
		}
		genr := delta.NewGenerator(seed*131 + 7)
		for b := 0; b < cfg.Batches; b++ {
			// The batch is generated against the driver's pre-batch state;
			// every engine graph is in that same state, so delta.Apply nets
			// out identically everywhere.
			batch := genr.EdgeBatch(driver, cfg.BatchSize, cfg.Weighted)
			if cfg.MigrationSize > 0 && cfg.MigrationRewire > 0 {
				batch = append(batch, genr.MigrationBatch(driver, cfg.MigrationSize, cfg.MigrationRewire, cfg.Weighted)...)
			}
			if cfg.AddVertices+cfg.DelVertices > 0 {
				batch = append(batch, genr.VertexBatch(driver, cfg.AddVertices, cfg.DelVertices, 2, cfg.Weighted)...)
				batch = dropVertexZeroDeletes(batch)
			}
			delta.Apply(driver, batch)
			want := engine.RunBatch(driver, mkAlgo(), engine.Options{Workers: 2})
			for i, e := range engines {
				applied := delta.Apply(graphs[i], batch)
				sys[i].Update(applied)
				if cfg.CheckCSR {
					// Pin overlay coherence after the engine consumed the
					// batch, then force a compaction pass so the next batch
					// runs against freshly rebuilt flat arrays (tombstoned
					// rows dropped, proxy hosts reindexed).
					if err := graphs[i].CheckCSR(); err != nil {
						t.Fatalf("%s seed=%d batch=%d: %v", e.Name, seed, b, err)
					}
					graphs[i].EnsureCSR()
					if err := graphs[i].CheckCSR(); err != nil {
						t.Fatalf("%s seed=%d batch=%d after compaction: %v", e.Name, seed, b, err)
					}
				}
				got := sys[i].States()
				if len(got) < driver.Cap() {
					t.Fatalf("%s seed=%d batch=%d: state vector too short (%d < %d)",
						e.Name, seed, b, len(got), driver.Cap())
				}
				if !statesCloseLive(driver, got, want.X, cfg.Atol) {
					t.Fatalf("%s seed=%d batch=%d: diverged from restart, max diff %v",
						e.Name, seed, b, maxDiffLive(driver, got, want.X))
				}
			}
		}
		if cfg.CheckCSR {
			// The schedule is only exercising what it claims if the flat
			// view actually compacted mid-stream.
			if st := graphs[0].CSRStats(); st.Compactions == 0 {
				t.Fatalf("seed=%d: CSR schedule never compacted (%+v); lower CSRCompactFraction or add batches", seed, st)
			}
		}
	}
}
