package core

import (
	"math"
	"testing"
	"testing/quick"

	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
)

// twoBlockGraph builds two dense 12-cliques joined by one bridge — small
// enough to reason about individual structural transitions.
func twoBlockGraph() *graph.Graph {
	g := graph.New(24)
	for b := 0; b < 2; b++ {
		base := graph.VertexID(b * 12)
		for i := graph.VertexID(0); i < 12; i++ {
			for j := graph.VertexID(0); j < 12; j++ {
				if i != j {
					g.AddEdge(base+i, base+j, 1+float64((i+j)%4))
				}
			}
		}
	}
	g.AddEdge(11, 12, 2) // bridge
	return g
}

func TestRoleFlipInternalToEntry(t *testing.T) {
	g := twoBlockGraph()
	l := New(g, algo.NewSSSP(0), Options{Community: commCfg(12)})
	if len(l.subs) != 2 {
		t.Fatalf("want 2 dense subgraphs, got %d", len(l.subs))
	}
	// Find an internal vertex of block 2 and give it an external in-edge.
	var victim graph.VertexID
	for v := graph.VertexID(12); v < 24; v++ {
		if l.role[v] == RoleInternal {
			victim = v
			break
		}
	}
	if victim == 0 {
		t.Skip("no internal vertex (all boundary)")
	}
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddEdge, U: 0, V: victim, W: 9}})
	l.Update(applied)
	if !l.role[victim].IsEntry() {
		t.Fatalf("role after external in-edge: %v", l.role[victim])
	}
	// The new entry must have shortcuts and be on the skeleton.
	s := l.subs[l.subOf[victim]]
	if len(l.ShortcutsToInternal(s, victim))+len(l.ShortcutsToBoundary(s, victim)) == 0 {
		t.Fatal("new entry has no shortcuts")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And back: deleting the only external in-edge reverts it to internal.
	applied = delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: victim}})
	l.Update(applied)
	if l.role[victim] != RoleInternal {
		t.Fatalf("role after removing the external in-edge: %v", l.role[victim])
	}
	if len(l.ShortcutsToInternal(s, victim)) != 0 {
		t.Fatal("stale shortcut origin for demoted entry")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphDissolution(t *testing.T) {
	g := twoBlockGraph()
	l := New(g, algo.NewSSSP(0), Options{Community: commCfg(12)})
	// Rip out most intra edges of block 2 until it fails Definition 2.
	var batch delta.Batch
	for i := graph.VertexID(12); i < 24; i++ {
		for j := graph.VertexID(12); j < 24; j++ {
			if i != j && (i+j)%3 != 0 {
				batch = append(batch, delta.Update{Kind: delta.DelEdge, U: i, V: j})
			}
		}
	}
	applied := delta.Apply(g, batch)
	l.Update(applied)
	for v := graph.VertexID(12); v < 24; v++ {
		if g.Alive(v) && l.subOf[v] != NoSubgraph && l.subs[l.subOf[v]] == nil {
			t.Fatalf("vertex %d references dissolved subgraph", v)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{})
	if !algo.StatesClose(l.States()[:g.Cap()], want.X, 1e-9) {
		t.Fatal("states diverge after dissolution")
	}
}

func TestProxyDecisionFlip(t *testing.T) {
	g := twoBlockGraph()
	// Give vertex 0 many parallel edges into block 2 to force an entry proxy.
	for _, v := range []graph.VertexID{13, 14, 15, 16} {
		g.AddEdge(0, v, 3)
	}
	l := New(g, algo.NewSSSP(0), Options{Community: commCfg(12)})
	sub2 := l.subOf[13]
	if sub2 == NoSubgraph {
		t.Skip("block 2 not dense")
	}
	hadProxy := l.hasProxy(l.entryProxy, sub2, 0)
	if !hadProxy {
		t.Skip("replication threshold not crossed on this layout")
	}
	// Delete the parallel edges: the proxy must be orphaned.
	applied := delta.Apply(g, delta.Batch{
		{Kind: delta.DelEdge, U: 0, V: 13},
		{Kind: delta.DelEdge, U: 0, V: 14},
		{Kind: delta.DelEdge, U: 0, V: 15},
	})
	l.Update(applied)
	if l.hasProxy(l.entryProxy, sub2, 0) {
		t.Fatal("proxy survived dropping below the replication threshold")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{})
	if !algo.StatesClose(l.States()[:g.Cap()], want.X, 1e-9) {
		t.Fatal("states diverge after proxy flip")
	}
}

// Property: incremental shortcut maintenance must agree with full
// re-deduction after arbitrary intra-subgraph weight churn.
func TestIncrementalShortcutsMatchFullDeduction(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices: 240, MeanCommunity: 20, IntraDegree: 6, InterDegree: 0.2,
			Weighted: true, Seed: seed,
		})
		for _, mk := range []func() algo.Algorithm{
			func() algo.Algorithm { return algo.NewSSSP(0) },
			func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-10) },
		} {
			l := New(g.Clone(), mk(), Options{})
			gLocal := l.Graph()
			genr := delta.NewGenerator(seed + 5)
			for b := 0; b < 3; b++ {
				applied := delta.Apply(gLocal, genr.EdgeBatch(gLocal, 30, true))
				l.Update(applied)
			}
			for _, s := range l.subs {
				fresh := &Subgraph{ID: s.ID, origMembers: s.origMembers, proxies: s.proxies,
					Members: s.Members, Entries: s.Entries, Exits: s.Exits, Internal: s.Internal}
				l.buildLocalFrame(fresh)
				l.deduceShortcuts(fresh)
				for _, u := range s.Entries {
					cu := l.localIdx[u]
					mem, ref := s.scVec[cu], fresh.scVec[cu]
					for i := range mem {
						mi, ri := mem[i], ref[i]
						if math.IsInf(mi, 1) != math.IsInf(ri, 1) {
							t.Logf("seed %d sub %d entry %d idx %d: inf mismatch %v vs %v", seed, s.ID, u, i, mi, ri)
							return false
						}
						if !math.IsInf(mi, 1) && math.Abs(mi-ri) > 1e-6 {
							t.Logf("seed %d sub %d entry %d idx %d: %v vs %v", seed, s.ID, u, i, mi, ri)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexGrowthRemapsProxies(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 800, MeanCommunity: 40, IntraDegree: 8, InterDegree: 0.2,
		HubFraction: 0.03, HubDegree: 40, Weighted: true, Seed: 12,
	})
	l := New(g, algo.NewSSSP(0), Options{})
	if l.OfflineStats.Proxies == 0 {
		t.Skip("no proxies on this layout")
	}
	// Adding vertices forces the proxy segment past the new cap.
	genr := delta.NewGenerator(5)
	batch := genr.VertexBatch(g, 10, 0, 4, true)
	applied := delta.Apply(g, batch)
	l.Update(applied)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{})
	if !algo.StatesClose(l.States()[:g.Cap()], want.X, 1e-9) {
		t.Fatal("states diverge after proxy remap")
	}
}

func commCfg(maxSize int) (c community.Config) { c.MaxSize = maxSize; return c }
