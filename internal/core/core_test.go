package core

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
)

func factory(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, Options{Workers: 2})
}

func factoryNoReplication(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, Options{Workers: 2, DisableReplication: true})
}

func testGraph(seed int64) *graph.Graph {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 500, MeanCommunity: 30, IntraDegree: 7, InterDegree: 0.3,
		HubFraction: 0.01, HubDegree: 12, Weighted: true, Seed: seed,
	})
	return g
}

func TestBuildInvariants(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		g := testGraph(seed)
		l := New(g, algo.NewSSSP(0), Options{})
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if l.OfflineStats.DenseSubgraphs == 0 {
			t.Fatalf("seed %d: no dense subgraphs on a community graph", seed)
		}
		upV, upE := l.UpperLayerSize()
		if upV >= g.NumVertices() {
			t.Fatalf("seed %d: skeleton (%d) not smaller than graph (%d)", seed, upV, g.NumVertices())
		}
		if upE == 0 {
			t.Fatalf("seed %d: empty skeleton", seed)
		}
	}
}

// The flat layered graph (proxy rewiring, no shortcuts) must be message-
// equivalent to the original graph: batch runs agree on original vertices.
func TestFlatGraphEquivalence(t *testing.T) {
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			g := testGraph(7)
			a := mk()
			l := New(g, a, Options{})
			want := engine.RunBatch(g, mk(), engine.Options{Workers: 2})
			for v := 0; v < g.Cap(); v++ {
				got, exp := l.States()[v], want.X[v]
				if math.IsInf(got, 1) != math.IsInf(exp, 1) || (!math.IsInf(got, 1) && math.Abs(got-exp) > 1e-6) {
					t.Fatalf("vertex %d: layered %v vs original %v", v, got, exp)
				}
			}
		})
	}
}

// Shortcut weights must equal an independent local fixpoint over the
// subgraph's internal edges (Definition 3 / Equation 6): shortest internal
// paths from the entry whose intermediate vertices are not entries (entry
// composition happens on Lup, so through-entry paths must not be double
// counted).
func TestShortcutWeightsMatchLocalFixpoint(t *testing.T) {
	g := testGraph(3)
	a := algo.NewSSSP(0)
	l := New(g, a, Options{})
	sr := a.Semiring()
	checked := 0
	for _, s := range l.subs {
		for _, u := range s.Entries {
			// Recompute via Bellman-Ford over the entry-absorbing frame,
			// seeding from u's own out-edges.
			lf := s.Local
			dist := make([]float64, lf.size())
			for i := range dist {
				dist[i] = sr.Zero()
			}
			for _, e := range lf.out[l.localIdx[u]] {
				if e.W < dist[e.To] {
					dist[e.To] = e.W
				}
			}
			for iter := 0; iter < lf.size(); iter++ {
				improved := false
				for ci := range lf.ids {
					if math.IsInf(dist[ci], 1) {
						continue
					}
					for _, e := range lf.absorbOut[ci] {
						if nd := dist[ci] + e.W; nd < dist[e.To] {
							dist[e.To] = nd
							improved = true
						}
					}
				}
				if !improved {
					break
				}
			}
			scs := append([]engine.WEdge(nil), l.ShortcutsToBoundary(s, u)...)
			scs = append(scs, l.ShortcutsToInternal(s, u)...)
			for _, sc := range scs {
				want := dist[l.localIdx[sc.To]]
				if math.Abs(sc.W-want) > 1e-9 {
					t.Fatalf("sub %d entry %d: shortcut to %d weight %v, want %v", s.ID, u, sc.To, sc.W, want)
				}
				checked++
			}
		}
		if checked > 500 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no shortcuts checked")
	}
}

func TestEquivalenceAllAlgorithms(t *testing.T) {
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "layph/"+name, factory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceWithVertexUpdates(t *testing.T) {
	cfg := enginetest.DefaultConfig()
	cfg.VertexUpdates = true
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "layph/"+name, factory, mk, cfg)
		})
	}
}

func TestEquivalenceWithoutReplication(t *testing.T) {
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "layph-norepl/"+name, factoryNoReplication, mk, enginetest.DefaultConfig())
		})
	}
}

func TestInvariantsAcrossUpdates(t *testing.T) {
	g := testGraph(21)
	l := New(g, algo.NewPageRank(0.85, 1e-10), Options{})
	genr := delta.NewGenerator(4)
	for i := 0; i < 6; i++ {
		batch := genr.EdgeBatch(g, 80, true)
		batch = append(batch, genr.VertexBatch(g, 3, 3, 2, true)...)
		applied := delta.Apply(g, batch)
		l.Update(applied)
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("after batch %d: %v", i, err)
		}
	}
}

func TestPaperFigure2Example(t *testing.T) {
	// The paper's running example (Figures 2, Examples 3-6): SSSP from v0,
	// delete (v3,v4,1), add (v3,v2,2); final distances {0,1,3,1,4,7,8,9,9}.
	g := graph.New(9)
	type e struct {
		u, v graph.VertexID
		w    float64
	}
	for _, ed := range []e{
		{0, 1, 1}, {1, 3, 1}, {3, 2, 3}, {3, 4, 1}, {2, 4, 1}, {1, 2, 4},
		{4, 5, 3}, {5, 6, 1}, {6, 7, 1}, {6, 8, 1}, {5, 0, 2}, {7, 8, 2},
		{5, 8, 2},
	} {
		g.AddEdge(ed.u, ed.v, ed.w)
	}
	l := New(g, algo.NewSSSP(0), Options{Community: community.Config{MaxSize: 4}})
	applied := delta.Apply(g, delta.Batch{
		{Kind: delta.DelEdge, U: 3, V: 4},
		{Kind: delta.AddEdge, U: 3, V: 2, W: 2},
	})
	st := l.Update(applied)
	// The deleted edge sits on the dependency tree, so the update must
	// exercise the ⊥-cancellation path, and the result must match a restart.
	if st.Resets == 0 {
		t.Fatal("expected dependency resets")
	}
	want := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{})
	for v := 0; v < g.Cap(); v++ {
		if math.Abs(l.States()[v]-want.X[v]) > 1e-9 &&
			!(math.IsInf(l.States()[v], 1) && math.IsInf(want.X[v], 1)) {
			t.Fatalf("x%d = %v, want %v (all: %v)", v, l.States()[v], want.X[v], l.States()[:9])
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesRecorded(t *testing.T) {
	g := testGraph(31)
	l := New(g, algo.NewSSSP(0), Options{})
	applied := delta.Apply(g, delta.NewGenerator(1).EdgeBatch(g, 50, true))
	l.Update(applied)
	ph := l.LastPhases
	for _, name := range []string{"layered-update", "upload", "lup-iteration", "assignment"} {
		found := false
		for _, n := range ph.Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("phase %q not recorded (got %v)", name, ph.Names())
		}
	}
}

func TestReplicationShrinksSkeleton(t *testing.T) {
	// A graph with strong hubs: replication must reduce the skeleton size.
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 800, MeanCommunity: 40, IntraDegree: 8, InterDegree: 0.2,
		HubFraction: 0.03, HubDegree: 40, Weighted: true, Seed: 12,
	})
	with := New(g, algo.NewSSSP(0), Options{})
	without := New(g, algo.NewSSSP(0), Options{DisableReplication: true})
	wv, _ := with.UpperLayerSize()
	nv, _ := without.UpperLayerSize()
	if with.OfflineStats.Proxies == 0 {
		t.Skip("no proxies created on this graph")
	}
	if wv >= nv {
		t.Fatalf("replication did not shrink skeleton: %d (with) vs %d (without)", wv, nv)
	}
}

func TestOfflineStatsPopulated(t *testing.T) {
	g := testGraph(41)
	l := New(g, algo.NewPageRank(0.85, 1e-8), Options{})
	os := l.OfflineStats
	if os.BuildSeconds <= 0 || os.InitialSeconds <= 0 {
		t.Fatalf("timings not recorded: %+v", os)
	}
	if os.ShortcutCount == 0 || os.ShortcutActivations == 0 {
		t.Fatalf("shortcut stats not recorded: %+v", os)
	}
	if l.ShortcutCount() != os.ShortcutCount {
		t.Fatalf("live shortcut count %d != offline %d", l.ShortcutCount(), os.ShortcutCount)
	}
}

func TestName(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	l := New(g, algo.NewBFS(0), Options{})
	if l.Name() != "layph" || l.Graph() != g || l.Subgraphs() == nil {
		t.Fatal("accessors")
	}
}
