// Package core implements Layph, the paper's primary contribution: a
// two-layered graph framework that constrains the change propagation of
// incremental graph processing.
//
// The upper layer (Lup) is a small skeleton: the entry/exit vertices of all
// dense subgraphs, the vertices that belong to no dense subgraph (outliers),
// the original edges among them, and shortcuts that teleport messages from
// entry vertices across each dense subgraph. The lower layer (Llow) holds
// the internal vertices and intra-subgraph edges. Incremental runs perform
// (1) a layered-graph update restricted to the subgraphs hit by ΔG,
// (2) a revision-message upload via local per-subgraph fixpoints,
// (3) the only global iteration — on the small Lup skeleton — and
// (4) a one-shot assignment of the accumulated entry messages to internal
// vertices through entry→internal shortcuts.
//
// Vertex replication (Section IV-A1): a high-degree external vertex with at
// least R parallel edges into (out of) one dense subgraph is replicated
// inside it as a proxy; the host↔proxy link carries the semiring unit, so
// path algebra is preserved while many boundary vertices become internal and
// the skeleton shrinks (Figure 8 measures the effect).
//
// The package works on the "flat" layered graph: the original graph with
// proxy rewiring applied but no shortcuts. The flat graph is
// message-equivalent to the original, and all memoized state (vertex states
// and, for idempotent algorithms, dependency parents) lives on it.
package core

import (
	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/metrics"
	"layph/internal/pool"
)

// Role classifies a flat vertex with respect to the layered structure.
type Role uint8

// Role values. Boundary roles (entry/exit) place a vertex on Lup.
const (
	// RoleOutlier is a vertex in no dense subgraph; it lives on Lup.
	RoleOutlier Role = iota
	// RoleEntry is a dense-subgraph vertex with an external in-edge.
	RoleEntry
	// RoleExit is a dense-subgraph vertex with an external out-edge.
	RoleExit
	// RoleEntryExit is both.
	RoleEntryExit
	// RoleInternal is a dense-subgraph vertex with no external edges; it
	// lives on Llow and is excluded from global iteration.
	RoleInternal
	// RoleDead marks tombstoned vertices and orphaned proxies.
	RoleDead
)

func (r Role) String() string {
	switch r {
	case RoleOutlier:
		return "outlier"
	case RoleEntry:
		return "entry"
	case RoleExit:
		return "exit"
	case RoleEntryExit:
		return "entry+exit"
	case RoleInternal:
		return "internal"
	case RoleDead:
		return "dead"
	}
	return "?"
}

// IsEntry reports whether the role receives external messages.
func (r Role) IsEntry() bool { return r == RoleEntry || r == RoleEntryExit }

// IsBoundary reports whether the role is on Lup as part of a dense subgraph.
func (r Role) IsBoundary() bool {
	return r == RoleEntry || r == RoleExit || r == RoleEntryExit
}

// NoSubgraph marks vertices outside every dense subgraph.
const NoSubgraph = int32(-1)

// Subgraph is one dense lower-layer subgraph (paper Definition 2).
type Subgraph struct {
	// ID is the community id backing this subgraph (stable across updates).
	ID int32
	// Members are the flat vertices of the subgraph: live original members
	// plus this subgraph's proxies.
	Members []graph.VertexID
	// Entries, Exits and Internal partition Members by role (entry+exit
	// vertices appear in both Entries and Exits).
	Entries  []graph.VertexID
	Exits    []graph.VertexID
	Internal []graph.VertexID
	// Local is the compact message-passing frame over Members' internal
	// edges; shortcut deduction and upload fixpoints run on it.
	Local *localFrame

	// origMembers are the community's original vertices (kept across
	// rebuilds, filtered for liveness); proxies are this subgraph's live
	// proxy vertices.
	origMembers []graph.VertexID
	proxies     []graph.VertexID

	// Shortcut storage, indexed by the entry's compact ID (only entry
	// slots are populated): scToB[cu] holds entry Local.ids[cu]'s
	// shortcuts targeting boundary vertices (these become Lup edges),
	// scToI[cu] those targeting internal vertices (these connect the
	// layers). Weights are semiring weights deduced per Equation (6).
	// Dense slices instead of per-entry maps keep the upload/assignment
	// hot paths free of map lookups; external callers go through
	// Layph.ShortcutsToBoundary / ShortcutsToInternal.
	scToB [][]engine.WEdge
	scToI [][]engine.WEdge
	// Memoized per-entry shortcut state for incremental maintenance
	// (Section IV-B): scVec[cu] holds the local fixpoint values over
	// compact IDs; scParent[cu] (idempotent algorithms only) the compact
	// dependency parents, so that internal edge changes are absorbed with
	// revision messages instead of full re-deduction.
	scVec    [][]float64
	scParent [][]graph.VertexID
}

// NumShortcuts returns the total shortcut count of the subgraph.
func (s *Subgraph) NumShortcuts() int {
	n := 0
	for _, l := range s.scToB {
		n += len(l)
	}
	for _, l := range s.scToI {
		n += len(l)
	}
	return n
}

// compactID returns v's compact index within subgraph s, or (-1, false)
// when v is not a current member. The subOf gate comes first: during
// parallel per-subgraph rebuilds it keeps a task from reading localIdx
// slots another task owns (memberships are disjoint and subOf is frozen
// while tasks are in flight). The ids check then rejects stale slots of
// dead ex-members whose subOf still points here.
func (l *Layph) compactID(s *Subgraph, v graph.VertexID) (int32, bool) {
	if int(v) >= len(l.subOf) || l.subOf[v] != s.ID || s.Local == nil {
		return -1, false
	}
	ci := l.localIdx[v]
	if ci >= 0 && int(ci) < len(s.Local.ids) && s.Local.ids[ci] == v {
		return ci, true
	}
	return -1, false
}

// ShortcutsToBoundary returns entry u's shortcuts to boundary vertices of s
// (nil for non-entries). The slice is owned by the engine.
func (l *Layph) ShortcutsToBoundary(s *Subgraph, u graph.VertexID) []engine.WEdge {
	if cu, ok := l.compactID(s, u); ok && int(cu) < len(s.scToB) {
		return s.scToB[cu]
	}
	return nil
}

// ShortcutsToInternal returns entry u's shortcuts to internal vertices of s
// (nil for non-entries). The slice is owned by the engine.
func (l *Layph) ShortcutsToInternal(s *Subgraph, u graph.VertexID) []engine.WEdge {
	if cu, ok := l.compactID(s, u); ok && int(cu) < len(s.scToI) {
		return s.scToI[cu]
	}
	return nil
}

// localFrame is a compact-ID projection of a subgraph's internal edges.
//
// absorbOut is the same adjacency with entry vertices' out-lists removed:
// entries are absorbing in local fixpoints, because everything an entry
// holds is propagated internally by shortcut application instead (shortcut
// weights count internal paths that avoid intermediate entries, so Lup
// shortcut composition covers through-entry paths exactly once — no double
// counting in the sum semiring). absorbIn mirrors absorbOut for the
// incremental shortcut updater's offer scans.
type localFrame struct {
	ids       []graph.VertexID // compact -> global (global -> compact is Layph.localIdx)
	out       [][]engine.WEdge // full internal adjacency
	absorbOut [][]engine.WEdge // adjacency with absorbing entries
	absorbIn  [][]engine.WEdge // reverse of absorbOut (To = source)
	// edges counts the internal adjacency's entries; the chunked task
	// fusion sizes pool tasks by it.
	edges int
	// x0Buf/m0Buf seed the per-subgraph upload fixpoints, reused across
	// updates: a subgraph is processed by at most one pool task at a time
	// and engine.Run copies its inputs, so reuse is race-free.
	x0Buf, m0Buf []float64
}

func (lf *localFrame) size() int { return len(lf.ids) }

// proxyKey identifies a proxy slot: one host vertex replicated into one
// subgraph in one direction.
type proxyKey struct {
	sub  int32
	host graph.VertexID
}

// Options configures layered-graph construction and the online engine.
type Options struct {
	// Community configures dense-subgraph discovery; MaxSize is the paper's
	// K (0 lets Build pick ~0.1% of |V|, clamped to [8, 4096]).
	Community community.Config
	// ReplicationThreshold is R: an external vertex with at least R parallel
	// edges into/out of one subgraph is replicated as a proxy (default 3).
	// DisableReplication turns the optimization off (Figure 8's ablation).
	ReplicationThreshold int
	DisableReplication   bool
	// Workers is the parallelism of both layers (0 = GOMAXPROCS): the
	// worker count of the global (Lup) iteration and the size of the
	// shared pool that runs independent lower-layer subgraph tasks
	// (upload fixpoints, shortcut deduction, assignment replay)
	// concurrently. Workers=1 is strictly sequential.
	Workers int
	// Tolerance overrides the algorithm's message-significance threshold.
	Tolerance float64
	// SelfCheck makes every Update run CheckInvariants once after the
	// final merge barrier (all pool tasks joined) and record the result
	// in LastCheck. Testing/debugging aid; costs a full structure scan
	// per update.
	SelfCheck bool
	// FusionChunksPerWorker tunes chunked task fusion: lower-layer
	// fan-outs pack the touched subgraphs into about this many
	// edge-weight-balanced chunks per pool worker instead of one task per
	// subgraph (0 = default 4). Higher values mean finer-grained tasks.
	FusionChunksPerWorker int
	// AdaptiveCommunities makes every Update run the incremental community
	// adjustment (community.AdjustDetailed) on the applied batch and migrate
	// dense-subgraph membership to follow the partition — subgraph splits
	// and merges are applied in place, refreshing only the affected
	// subgraphs' layer structures. Off (the default) the memberships
	// computed at build time stay frozen until a full re-layer.
	AdaptiveCommunities bool
}

func (o Options) chunksPerWorker() int {
	if o.FusionChunksPerWorker > 0 {
		return o.FusionChunksPerWorker
	}
	return 4
}

func (o Options) replication() int {
	if o.DisableReplication {
		return 0
	}
	if o.ReplicationThreshold > 0 {
		return o.ReplicationThreshold
	}
	return 3
}

// Layph is the layered incremental engine (implements inc.System).
type Layph struct {
	g   *graph.Graph
	a   algo.Algorithm
	sr  algo.Semiring
	opt Options
	tol float64
	// pool is the shared bounded worker pool (size opt.Workers) running
	// the independent lower-layer subgraph tasks of every parallel phase.
	pool *pool.Pool

	// part holds the community membership of original vertices — frozen
	// between full re-layers unless Options.AdaptiveCommunities is set, in
	// which case adaptMembership evolves it incrementally every Update.
	part *community.Partition
	// commVerts indexes live member lists by community id (adaptive mode
	// only; nil otherwise). Maintained through AdjustDetailed's move log so
	// promotion of drifted communities to fresh subgraphs needs no full
	// partition rescan. May retain dead vertices — readers filter by
	// liveness.
	commVerts [][]graph.VertexID
	// subs maps community id -> dense subgraph (absent = dissolved/sparse).
	subs map[int32]*Subgraph

	// Flat-vertex metadata; indices cover originals then proxies.
	subOf      []int32
	role       []Role
	proxyHost  []graph.VertexID // NoHost for non-proxies
	proxyAlive []bool
	// localIdx maps a flat vertex to its compact index inside its own
	// subgraph's local frame (-1 outside any frame). One shared dense
	// vector works because subgraph memberships are disjoint; staleness
	// after membership changes is caught by compactID's ids check.
	localIdx   []int32
	entryProxy map[proxyKey]graph.VertexID
	exitProxy  map[proxyKey]graph.VertexID

	// Flat layered graph (original + proxy rewiring, semiring weights).
	flatOut [][]engine.WEdge
	flatIn  [][]engine.WEdge
	// Upper-layer skeleton (cross edges + proxy links + entry shortcuts).
	upOut [][]engine.WEdge
	upIn  [][]engine.WEdge

	// Memoized computation state over the flat ID space.
	x      []float64
	parent []graph.VertexID // idempotent algorithms only
	// origCap is the size of the original-vertex segment of the flat ID
	// space; proxies occupy [origCap, flatN).
	origCap int

	// scratch holds per-update working buffers reused across Update calls
	// (dense sets and O(n) vectors) so steady-state batches stop paying
	// per-vertex map allocations.
	scratch updScratch

	// OfflineStats records construction + initial batch run cost (Fig 11b);
	// LastPhases records the most recent Update's per-phase runtime (Fig 7);
	// LastActs records the per-phase edge activations of the last Update.
	OfflineStats OfflineStats
	LastPhases   *metrics.Phases
	LastActs     map[string]int64
	// LastCheck is the result of the post-update invariant check when
	// Options.SelfCheck is set (nil = structure valid after the last
	// Update's merge barrier).
	LastCheck error
}

// NoHost marks non-proxy vertices in proxyHost.
const NoHost = graph.VertexID(engine.NoParent)

// OfflineStats describes the one-time preprocessing cost.
type OfflineStats struct {
	// BuildSeconds is layered-graph construction time (detection,
	// replication, shortcut deduction); InitialSeconds is the initial batch
	// run on the flat graph.
	BuildSeconds   float64
	InitialSeconds float64
	// ShortcutCount is the number of deduced shortcut weights (Fig 11a);
	// ShortcutActivations the F applications spent deducing them.
	ShortcutCount       int
	ShortcutActivations int64
	// DenseSubgraphs and Proxies describe the structure.
	DenseSubgraphs int
	Proxies        int
}

// flatAlive reports liveness of a flat vertex (original or proxy).
func (l *Layph) flatAlive(v graph.VertexID) bool {
	if int(v) < l.g.Cap() {
		return l.g.Alive(v)
	}
	if int(v) < len(l.proxyAlive) {
		return l.proxyAlive[v]
	}
	return false
}

// flatN returns the size of the flat ID space.
func (l *Layph) flatN() int { return len(l.flatOut) }

// onUp reports whether a flat vertex participates in the global iteration.
func (l *Layph) onUp(v graph.VertexID) bool {
	r := l.role[v]
	return r == RoleOutlier || r.IsBoundary()
}

// Name returns "layph".
func (l *Layph) Name() string { return "layph" }

// States returns the memoized states over the flat ID space; indices below
// g.Cap() are the original vertices' states.
func (l *Layph) States() []float64 { return l.x }

// Graph returns the underlying graph.
func (l *Layph) Graph() *graph.Graph { return l.g }

// Subgraphs returns the dense subgraphs keyed by community id.
func (l *Layph) Subgraphs() map[int32]*Subgraph { return l.subs }

// UpperLayerSize returns the vertex and edge counts of the skeleton
// (Figure 8a's "Lup" and "reshaped Lup" series).
func (l *Layph) UpperLayerSize() (vertices, edges int) {
	for v := 0; v < l.flatN(); v++ {
		if l.flatAlive(graph.VertexID(v)) && l.onUp(graph.VertexID(v)) {
			vertices++
			edges += len(l.upOut[v])
		}
	}
	return vertices, edges
}

// ShortcutCount returns the current number of shortcut weights (Fig 11a).
func (l *Layph) ShortcutCount() int {
	n := 0
	for _, s := range l.subs {
		n += s.NumShortcuts()
	}
	return n
}
