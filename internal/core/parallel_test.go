package core

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// replaySequence builds a Layph with the given worker count and replays a
// fixed seeded update sequence (edge churn plus vertex add/del mixes),
// returning the engine, a copy of its final states and the accumulated
// stats. With selfCheck set it fails the test on the first post-barrier
// invariant violation.
func replaySequence(t *testing.T, mk func() algo.Algorithm, workers int, seed int64, selfCheck bool) (*Layph, []float64, inc.Stats) {
	t.Helper()
	g := testGraph(seed)
	l := New(g, mk(), Options{Workers: workers, SelfCheck: selfCheck})
	genr := delta.NewGenerator(seed * 31)
	var total inc.Stats
	batches := 4
	if testing.Short() {
		batches = 2
	}
	for b := 0; b < batches; b++ {
		batch := genr.EdgeBatch(g, 60, true)
		for _, u := range genr.VertexBatch(g, 2, 2, 2, true) {
			if u.Kind == delta.DelVertex && u.U == 0 {
				continue // keep the source vertex alive
			}
			batch = append(batch, u)
		}
		applied := delta.Apply(g, batch)
		st := l.Update(applied)
		total.Add(st)
		if selfCheck && l.LastCheck != nil {
			t.Fatalf("workers=%d seed=%d batch=%d: invariants violated after update: %v",
				workers, seed, b, l.LastCheck)
		}
	}
	return l, append([]float64(nil), l.States()...), total
}

// Determinism contract, monotone-min half: with any fixed Threads value,
// two identical runs must produce byte-identical state vectors for
// SSSP/BFS — min folding is exact, subgraph tasks are independent, and
// merges happen in deterministic task order.
func TestDeterministicParallelMin(t *testing.T) {
	for name, mk := range map[string]func() algo.Algorithm{
		"sssp": func() algo.Algorithm { return algo.NewSSSP(0) },
		"bfs":  func() algo.Algorithm { return algo.NewBFS(0) },
	} {
		t.Run(name, func(t *testing.T) {
			_, x1, _ := replaySequence(t, mk, 8, 3, false)
			_, x2, _ := replaySequence(t, mk, 8, 3, false)
			if len(x1) != len(x2) {
				t.Fatalf("state lengths differ: %d vs %d", len(x1), len(x2))
			}
			for v := range x1 {
				if math.Float64bits(x1[v]) != math.Float64bits(x2[v]) {
					t.Fatalf("vertex %d: %v vs %v — identical Threads=8 runs not byte-identical", v, x1[v], x2[v])
				}
			}
		})
	}
}

// Determinism contract, sum half: identical Threads=8 runs of PageRank
// and PHP must agree within StatesClose tolerance (float accumulation
// order inside the multi-worker skeleton iteration may differ at rounding
// level; the subgraph-local phases are exact).
func TestDeterministicParallelSum(t *testing.T) {
	for name, mk := range map[string]func() algo.Algorithm{
		"pagerank": func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-10) },
		"php":      func() algo.Algorithm { return algo.NewPHP(0, 0.8, 1e-10) },
	} {
		t.Run(name, func(t *testing.T) {
			_, x1, _ := replaySequence(t, mk, 8, 5, false)
			_, x2, _ := replaySequence(t, mk, 8, 5, false)
			if !algo.StatesClose(x1, x2, 1e-9) {
				t.Fatalf("identical Threads=8 runs differ beyond tolerance (max diff %v)", algo.MaxStateDiff(x1, x2))
			}
		})
	}
}

// A parallel engine (Threads=8) must land on the same answer as the
// strictly sequential one (Threads=1) and as a from-scratch restart.
func TestParallelMatchesSequential(t *testing.T) {
	for name, mk := range map[string]func() algo.Algorithm{
		"sssp":     func() algo.Algorithm { return algo.NewSSSP(0) },
		"pagerank": func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-10) },
	} {
		t.Run(name, func(t *testing.T) {
			l1, x1, _ := replaySequence(t, mk, 1, 9, false)
			l8, x8, _ := replaySequence(t, mk, 8, 9, false)
			g := l8.Graph()
			want := engine.RunBatch(g, mk(), engine.Options{Workers: 2})
			ok := true
			g.Vertices(func(v graph.VertexID) {
				if !algo.StatesClose(x8[v:v+1], want.X[v:v+1], 1e-6) ||
					!algo.StatesClose(x1[v:v+1], x8[v:v+1], 1e-6) {
					ok = false
				}
			})
			if !ok {
				t.Fatal("Threads=1, Threads=8 and restart disagree")
			}
			_ = l1
		})
	}
}

// Invariants must hold after every parallel update: SelfCheck runs
// CheckInvariants at the post-phase merge barrier, where no pool task is
// in flight.
func TestInvariantsAfterParallelUpdate(t *testing.T) {
	for name, mk := range map[string]func() algo.Algorithm{
		"sssp":     func() algo.Algorithm { return algo.NewSSSP(0) },
		"pagerank": func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-10) },
	} {
		t.Run(name, func(t *testing.T) {
			l, _, _ := replaySequence(t, mk, 8, 13, true)
			if err := l.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The update must report its lower-layer parallelism: subgraph tasks
// dispatched and pool utilization within [0, 1].
func TestParallelStatsReported(t *testing.T) {
	_, _, st := replaySequence(t, func() algo.Algorithm { return algo.NewSSSP(0) }, 4, 17, false)
	if st.SubgraphsParallel == 0 {
		t.Fatal("no subgraph tasks reported on a community graph")
	}
	if st.PoolUtilization < 0 || st.PoolUtilization > 1 {
		t.Fatalf("pool utilization out of range: %v", st.PoolUtilization)
	}
	if st.PoolUtilization == 0 {
		t.Fatal("pool utilization not measured")
	}
}
