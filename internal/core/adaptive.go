package core

import (
	"sort"

	"layph/internal/community"
	"layph/internal/delta"
	"layph/internal/graph"
)

// adaptMembership is the adaptive half of the layered update (Options.
// AdaptiveCommunities): it runs the incremental community adjustment
// (community.AdjustDetailed) against the already-applied batch and migrates
// dense-subgraph membership to follow the partition, so the layering tracks
// community drift instead of freezing the memberships computed at build
// time.
//
// For every vertex the adjustment moved, the per-community member index and
// the subgraph origMembers lists are updated, subOf is repointed (dense
// subgraphs only — communities without one are outlier territory), and the
// vertex plus its in-neighbors are marked for flat-row refresh. Changed
// communities that back a dense subgraph are returned as forced structural
// rebuilds; changed communities without one are re-evaluated for density
// and promoted to a fresh subgraph when they qualify (a split or merge that
// crossed the density threshold).
//
// Community ids stay stable across adjustments — dead ids are reclaimed
// only at a full re-layer (a fresh engine build), which is the id-stability
// contract the shortcut localization relies on.
func (l *Layph) adaptMembership(applied *delta.Applied) (forced []int32, moves int64) {
	res := community.AdjustDetailed(l.g, l.part, l.opt.Community, applied)
	if len(res.Changed) == 0 {
		return nil, 0
	}
	for len(l.commVerts) < l.part.NumComms {
		l.commVerts = append(l.commVerts, nil)
	}
	sc := &l.scratch
	mark := func(v graph.VertexID) {
		if int(v) < l.flatN() {
			sc.touched.add(v)
			sc.dirtyRoles.add(v)
		}
	}
	for _, m := range res.Moved {
		moves++
		if m.From >= 0 {
			l.commVerts[m.From] = removeVertex(l.commVerts[m.From], m.V)
			if s, ok := l.subs[m.From]; ok {
				s.origMembers = removeVertex(s.origMembers, m.V)
			}
		}
		if m.To >= 0 {
			l.commVerts[m.To] = append(l.commVerts[m.To], m.V)
		}
		if int(m.V) < len(l.subOf) {
			if s, ok := l.subs[m.To]; m.To >= 0 && ok {
				s.origMembers = append(s.origMembers, m.V)
				l.subOf[m.V] = m.To
			} else {
				l.subOf[m.V] = NoSubgraph
			}
		}
		if !l.flatAlive(m.V) {
			continue
		}
		// The mover's flat row must be re-routed against its new subgraph,
		// and so must every in-neighbor's (their edges to the mover may gain
		// or lose proxy indirection).
		mark(m.V)
		for _, ie := range l.g.In(m.V) {
			if int(ie.To) < l.flatN() {
				sc.touched.add(ie.To)
			}
		}
	}

	// Changed communities in ascending id order (deterministic rebuild and
	// promotion order regardless of map iteration).
	ids := make([]int32, 0, len(res.Changed))
	for c := range res.Changed {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, c := range ids {
		if _, ok := l.subs[c]; ok {
			forced = append(forced, c)
			continue
		}
		// No subgraph backs this community yet: promote it if it now passes
		// the density test. The structural rebuild pass allocates proxies
		// and builds the frame; here only membership is claimed.
		var live []graph.VertexID
		for _, v := range l.commVerts[c] {
			if l.g.Alive(v) {
				live = append(live, v)
			}
		}
		if len(live) < 2 {
			continue
		}
		if dec := l.evaluateCommunity(c, live); !dec.dense {
			continue
		}
		s := &Subgraph{ID: c, origMembers: live}
		for _, v := range live {
			l.subOf[v] = c
			mark(v)
			for _, ie := range l.g.In(v) {
				if int(ie.To) < l.flatN() {
					sc.touched.add(ie.To)
				}
			}
		}
		l.subs[c] = s
		forced = append(forced, c)
	}
	return forced, moves
}

// removeVertex deletes the first occurrence of v from list, preserving order
// (order feeds compact-ID assignment, which must stay deterministic).
func removeVertex(list []graph.VertexID, v graph.VertexID) []graph.VertexID {
	for i := range list {
		if list[i] == v {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// CommunityStats reports the partition's live community count against its
// allocated id count. Ids are stable between full re-layers, so under churn
// the gap (dead, unreclaimed ids) grows; the stream drift controller uses
// the ratio as one of its full-re-layer triggers, and a fresh build (which
// re-runs detection) compacts the id space again.
func (l *Layph) CommunityStats() (live, ids int) {
	return l.part.LiveComms(), l.part.NumComms
}
