package core

import (
	"layph/internal/engine"
	"layph/internal/graph"
)

// vset is an epoch-stamped dense vertex set. Membership tests and inserts
// are O(1) array probes, reset is O(1) (an epoch bump), and iteration over
// list is in insertion order — which, unlike Go map iteration, makes every
// pass over the set reproducible between runs. The stamp array grows on
// demand because the flat ID space can grow mid-update (new vertices,
// fresh proxies).
type vset struct {
	stamp []uint32
	epoch uint32
	list  []graph.VertexID
}

// reset empties the set and ensures capacity for n vertices.
func (s *vset) reset(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n+n/2)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // epoch counter wrapped: stamps are ambiguous, wipe them
		clear(s.stamp)
		s.epoch = 1
	}
	s.list = s.list[:0]
}

// add inserts v, growing the stamp array if v is beyond it. Reports whether
// v was newly inserted.
func (s *vset) add(v graph.VertexID) bool {
	if int(v) >= len(s.stamp) {
		grown := make([]uint32, int(v)+1+int(v)/2)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	if s.stamp[v] == s.epoch {
		return false
	}
	s.stamp[v] = s.epoch
	s.list = append(s.list, v)
	return true
}

func (s *vset) has(v graph.VertexID) bool {
	return int(v) < len(s.stamp) && s.stamp[v] == s.epoch
}

// updScratch holds buffers reused across Update calls so a steady-state
// batch allocates no per-vertex maps: the former map-based working sets are
// epoch-stamped dense sets, and the O(n) vectors of the online phases are
// recycled. Update processes one batch at a time and every phase joins its
// pool tasks before the next starts; within a fan-out the buffers are
// either read-only (snapshots) or written at disjoint member indices, so
// plain reuse is race-free.
type updScratch struct {
	touched    vset
	dirtyRoles vset
	upDirty    vset
	oldRoles   []Role // parallel to the role-candidate prefix of dirtyRoles

	// oldSeen guards first-touch snapshots of pre-batch out-lists; oldRows
	// carries the rows (parallel to oldSeen.list). Both are exposed via
	// layeredDiff and only valid for the Update call that filled them.
	oldSeen vset
	oldRows [][]engine.WEdge

	// hostProxies maps a host to its live entry proxies; rebuilt each
	// update but reused so the buckets stay warm.
	hostProxies map[graph.VertexID][]graph.VertexID

	// updateMin working sets.
	repair    vset
	inActive  vset
	changedUp vset
	offerSet  vset

	// O(n) vectors. Callers re-zero (or re-fill) the prefix they use.
	pending   []float64
	fromLocal []float64
	xPre      []float64
	xSnap     []float64
	m0        []float64
	offerVal  []float64
	tagged    []bool

	// Dependency-forest CSR for ⊥-cancellation (children of v =
	// childBuf[childOff[v]:childOff[v+1]]), rebuilt per update that resets.
	childOff []int32
	childBuf []graph.VertexID
}

// floatBuf returns a zeroed n-sized view of one of the reusable vectors.
func floatBuf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n+n/2)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// filledBuf is floatBuf with a custom fill value (e.g. the semiring zero).
func filledBuf(buf *[]float64, n int, fill float64) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n+n/2)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = fill
	}
	return b
}

// copyBuf returns a view of the buffer holding a copy of src.
func copyBuf(buf *[]float64, src []float64) []float64 {
	if cap(*buf) < len(src) {
		*buf = make([]float64, len(src)+len(src)/2)
	}
	b := (*buf)[:len(src)]
	copy(b, src)
	return b
}

func boolBuf(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n+n/2)
	}
	b := (*buf)[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// depChildren builds a CSR over the dependency forest: two counting passes
// over parent, no per-parent slice allocations. children(v) is
// childBuf[childOff[v]:childOff[v+1]].
func (sc *updScratch) depChildren(parent []graph.VertexID) {
	n := len(parent)
	if cap(sc.childOff) < n+1 {
		sc.childOff = make([]int32, n+1+n/2)
	}
	off := sc.childOff[:n+1]
	for i := range off {
		off[i] = 0
	}
	for _, p := range parent {
		if p != engine.NoParent {
			off[p+1]++
		}
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	if cap(sc.childBuf) < int(off[n]) {
		sc.childBuf = make([]graph.VertexID, int(off[n])+int(off[n])/2)
	}
	buf := sc.childBuf[:off[n]]
	// Fill with a moving cursor per parent, then shift the offsets back
	// down one slot: after the fill off[p] is the END of p's segment,
	// which is exactly the start of segment p+1.
	for v, p := range parent {
		if p != engine.NoParent {
			buf[off[p]] = graph.VertexID(v)
			off[p]++
		}
	}
	for i := n; i > 0; i-- {
		off[i] = off[i-1]
	}
	off[0] = 0
	sc.childOff = off
	sc.childBuf = buf
}

// children returns v's dependency children from the last depChildren build.
func (sc *updScratch) children(v graph.VertexID) []graph.VertexID {
	return sc.childBuf[sc.childOff[v]:sc.childOff[v+1]]
}
