package core

import (
	"math"
	"time"

	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/metrics"
)

// Update incrementally adjusts the memoized result to the applied batch
// (the graph must already reflect it). The paper's online phases are timed
// individually into LastPhases (Figure 7):
//
//	layered-update — Section IV-B (structure + shortcut maintenance)
//	upload         — Section V-A  (local fixpoints in affected subgraphs)
//	lup-iteration  — Section V-B  (global iteration on the skeleton)
//	assignment     — Section V-C  (entry→internal shortcut application)
func (l *Layph) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	ph := metrics.NewPhases()
	var st inc.Stats

	var d *layeredDiff
	ph.Time("layered-update", func() { d = l.layeredUpdate(applied) })
	st.Activations += d.shortcutActivations
	l.LastActs = map[string]int64{"layered-update": d.shortcutActivations}
	before := st.Activations

	if l.sr.Idempotent() {
		l.updateMin(applied, d, ph, &st)
	} else {
		l.updateSum(applied, d, ph, &st)
	}
	l.LastActs["online"] = st.Activations - before
	l.LastPhases = ph
	st.Duration = time.Since(start)
	return st
}

// debugFlatOnly short-circuits the layered propagation: revision messages
// run directly on the flat frame. Debug/testing aid for isolating whether a
// divergence comes from deduction or from the layered phases.
var debugFlatOnly = false

// updateSum is the non-idempotent (memoization-free) online path: exact
// inverse-delta revision messages, local absorption, skeleton iteration,
// delta assignment.
func (l *Layph) updateSum(applied *delta.Applied, d *layeredDiff, ph *metrics.Phases, st *inc.Stats) {
	n := l.flatN()
	// pending holds fresh revision messages not yet applied to any state;
	// fromLocal holds boundary deltas the local upload runs already applied
	// to their vertices (the skeleton run must propagate them without
	// re-applying).
	pending := make([]float64, n)
	fromLocal := make([]float64, n)
	// Entry caches (Equation 9) are deltas against the pre-update states:
	// entries absorb both local-upload arrivals and skeleton arrivals, and
	// the assignment phase replays their total delta through the
	// entry→internal shortcuts.
	xPre := append([]float64(nil), l.x...)

	ph.Time("upload", func() {
		// Revision-message deduction: cancel old contributions over the old
		// flat lists, compensate over the new ones.
		for u, old := range d.oldLists {
			xu := l.x[u]
			if xu != 0 {
				for _, e := range old {
					if m := xu * e.W; m != 0 {
						pending[e.To] -= m
						st.Activations++
					}
				}
				for _, e := range l.flatOut[u] {
					if m := xu * e.W; m != 0 {
						pending[e.To] += m
						st.Activations++
					}
				}
			}
			if !l.flatAlive(u) {
				l.x[u] = 0 // removed vertices and orphaned proxies
			}
		}
		for _, v := range applied.AddedVertices {
			pending[v] += l.a.InitMessage(v)
		}

		if debugFlatOnly {
			return
		}
		// Local absorption: one fixpoint per affected subgraph consumes the
		// revision messages addressed to its members and turns them into
		// boundary deltas for the skeleton.
		for _, s := range d.affectedSubs {
			l.uploadSumSubgraph(s, pending, fromLocal, st)
		}
	})

	ph.Time("lup-iteration", func() {
		frame := &engine.Frame{Out: l.upOut}
		if debugFlatOnly {
			frame = &engine.Frame{Out: l.flatOut}
		}
		m0 := make([]float64, n)
		x0 := append([]float64(nil), l.x...)
		any := false
		for v := 0; v < n; v++ {
			seed := pending[v] + fromLocal[v]
			if seed == 0 {
				continue
			}
			m0[v] = seed
			// Only the already-applied part is backed out of the state; the
			// engine re-applies the whole seed, so fresh messages land once
			// and local deltas land exactly once overall.
			x0[v] -= fromLocal[v]
			any = true
		}
		if !any {
			return
		}
		res := engine.Run(frame, l.sr, x0, m0, engine.Options{
			Workers:   l.opt.Workers,
			Tolerance: l.tol,
		})
		l.x = res.X
		st.Activations += res.Activations
		st.Rounds = res.Rounds
	})

	ph.Time("assignment", func() {
		if debugFlatOnly {
			return
		}
		for _, s := range l.subs {
			for _, u := range s.Entries {
				mu := l.x[u] - xPre[u]
				if math.Abs(mu) <= l.tol {
					continue
				}
				for _, sc := range s.ShortToInternal[u] {
					l.x[sc.To] += mu * sc.W
					st.Activations++
				}
			}
		}
	})

	// Dead vertices hold no state: clear correction residue parked on them.
	for u := range d.oldLists {
		if !l.flatAlive(u) {
			l.x[u] = 0
		}
	}
	for _, v := range applied.RemovedVertices {
		l.x[v] = 0
	}
}

// uploadSumSubgraph runs the local fixpoint of one affected subgraph,
// consuming the pending revision messages addressed to its members. Member
// states absorb their internal-path effects; the messages re-emerge as
// pending deltas on boundary members for the skeleton iteration.
func (l *Layph) uploadSumSubgraph(s *Subgraph, pending, fromLocal []float64, st *inc.Stats) {
	lf := s.Local
	k := lf.size()
	x0 := make([]float64, k)
	m0 := make([]float64, k)
	seeded := false
	for i, v := range lf.ids {
		x0[i] = l.x[v]
		if p := pending[v]; p != 0 {
			// Fresh revision messages: the run applies them for the first
			// time (no state back-out).
			m0[i] = p
			pending[v] = 0
			seeded = true
		}
	}
	if !seeded {
		return
	}
	res := engine.Run(&engine.Frame{Out: lf.absorbOut}, l.sr, x0, m0, engine.Options{
		Workers:   1,
		Tolerance: l.tol,
	})
	st.Activations += res.Activations
	for i, v := range lf.ids {
		dl := res.X[i] - l.x[v]
		l.x[v] = res.X[i]
		if dl != 0 && l.onUp(v) {
			// Boundary members forward their full delta (already applied to
			// their own state) to the skeleton.
			fromLocal[v] += dl
		}
	}
}

// updateMin is the idempotent (memoization-path) online path: dependency-
// tree resets, local recomputation in affected subgraphs, skeleton
// iteration with offer re-seeding, shortcut assignment, parent repair.
func (l *Layph) updateMin(applied *delta.Applied, d *layeredDiff, ph *metrics.Phases, st *inc.Stats) {
	n := l.flatN()
	zero := l.sr.Zero()
	tagged := make([]bool, n)
	var resets []graph.VertexID
	repair := make(map[graph.VertexID]struct{})

	var localChanged []graph.VertexID
	var lupChanged []graph.VertexID
	leftoverOffers := make(map[graph.VertexID]float64)
	resetsBySub := make(map[int32]bool)

	actsMark := func(name string, before int64) int64 {
		l.LastActs[name] = st.Activations - before
		return st.Activations
	}
	mark := st.Activations
	ph.Time("upload", func() {
		// ⊥ cancellation: tag the dependency subtrees hanging off removed
		// flat dependency edges, removed vertices and rebuilt proxies.
		var queue []graph.VertexID
		tag := func(v graph.VertexID) {
			if int(v) < n && !tagged[v] {
				tagged[v] = true
				queue = append(queue, v)
			}
		}
		for _, e := range d.removed {
			if l.parent[e.to] == e.from {
				tag(e.to)
			}
		}
		for _, v := range applied.RemovedVertices {
			tag(v)
		}
		for u := range d.oldLists {
			if !l.flatAlive(u) {
				tag(u)
			}
		}
		for _, s := range d.rebuiltSubs {
			for _, p := range s.proxies {
				tag(p)
			}
		}
		if len(queue) > 0 {
			children := make(map[graph.VertexID][]graph.VertexID, n/4)
			for v, p := range l.parent {
				if p != engine.NoParent {
					children[p] = append(children[p], graph.VertexID(v))
				}
			}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				resets = append(resets, v)
				for _, c := range children[v] {
					tag(c)
				}
			}
		}
		for _, v := range resets {
			l.x[v] = zero
			l.parent[v] = engine.NoParent
			repair[v] = struct{}{}
			if c := l.subOf[v]; c != NoSubgraph {
				resetsBySub[c] = true
			}
		}
		st.Resets = len(resets)

		// Active subgraphs: structure-affected plus any holding resets.
		active := make(map[int32]*Subgraph, len(d.affectedSubs))
		for c, s := range d.affectedSubs {
			active[c] = s
		}
		for c := range resetsBySub {
			if s, ok := l.subs[c]; ok {
				active[c] = s
			}
		}

		// Direct compensation candidates from added flat edges.
		addedOffer := make(map[graph.VertexID]float64)
		for _, e := range d.added {
			if !l.flatAlive(e.to) || l.x[e.from] == zero {
				continue
			}
			offer := l.sr.Times(l.x[e.from], e.w)
			st.Activations++
			if offer == zero {
				continue
			}
			if cur, ok := addedOffer[e.to]; !ok || l.sr.Plus(cur, offer) != cur {
				addedOffer[e.to] = offer
			}
		}

		for _, s := range active {
			changed := l.uploadMinSubgraph(s, tagged, addedOffer, st)
			localChanged = append(localChanged, changed...)
			for _, v := range changed {
				repair[v] = struct{}{}
			}
		}

		// Leftover candidates targeting skeleton vertices are handled in the
		// skeleton phase.
		leftoverOffers = addedOffer
	})
	mark = actsMark("upload", mark)

	ph.Time("lup-iteration", func() {
		m0 := make([]float64, n)
		for i := range m0 {
			m0[i] = zero
		}
		inActive := make(map[graph.VertexID]struct{})
		var act []graph.VertexID
		activate := func(v graph.VertexID) {
			if _, ok := inActive[v]; !ok {
				inActive[v] = struct{}{}
				act = append(act, v)
			}
		}
		// Re-seed tagged skeleton vertices from intact skeleton in-edges and
		// root messages.
		for _, v := range resets {
			if !l.flatAlive(v) || !l.onUp(v) {
				continue
			}
			if int(v) < l.origCap {
				if m := l.a.InitMessage(v); m != zero {
					m0[v] = l.sr.Plus(m0[v], m)
				}
			}
			for _, e := range l.upIn[v] {
				src := e.To
				if l.x[src] == zero {
					continue
				}
				offer := l.sr.Times(l.x[src], e.W)
				st.Activations++
				if offer != zero {
					m0[v] = l.sr.Plus(m0[v], offer)
				}
			}
			if m0[v] != zero {
				activate(v)
			}
		}
		// Boundary members whose value changed during local absorption
		// propagate over the skeleton.
		for _, v := range localChanged {
			if l.onUp(v) && l.flatAlive(v) {
				activate(v)
			}
		}
		// Remaining direct candidates on skeleton targets.
		for v, offer := range leftoverOffers {
			if !l.flatAlive(v) || !l.onUp(v) {
				continue
			}
			if l.sr.Plus(l.x[v], offer) != l.x[v] {
				m0[v] = l.sr.Plus(m0[v], offer)
				activate(v)
			}
		}
		if len(act) == 0 {
			return
		}
		res := engine.Run(&engine.Frame{Out: l.upOut}, l.sr, l.x, m0, engine.Options{
			Workers:       l.opt.Workers,
			Tolerance:     l.tol,
			InitialActive: act,
			TrackChanged:  true,
		})
		l.x = res.X
		st.Activations += res.Activations
		st.Rounds = res.Rounds
		for _, v := range res.Changed {
			repair[v] = struct{}{}
		}
		lupChanged = res.Changed
	})
	mark = actsMark("lup-iteration", mark)

	ph.Time("assignment", func() {
		changedUp := make(map[graph.VertexID]struct{}, len(lupChanged)+len(localChanged))
		for _, v := range lupChanged {
			changedUp[v] = struct{}{}
		}
		// Entries are absorbing in local runs, so an entry improved during
		// upload also needs its shortcuts replayed.
		for _, v := range localChanged {
			if l.role[v].IsEntry() {
				changedUp[v] = struct{}{}
			}
		}
		for c, s := range l.subs {
			trigger := resetsBySub[c]
			if !trigger {
				for _, u := range s.Entries {
					if _, ok := changedUp[u]; ok {
						trigger = true
						break
					}
				}
			}
			if !trigger {
				continue
			}
			for _, u := range s.Entries {
				if l.x[u] == zero {
					continue
				}
				for _, sc := range s.ShortToInternal[u] {
					cand := l.sr.Times(l.x[u], sc.W)
					st.Activations++
					if l.sr.Plus(l.x[sc.To], cand) != l.x[sc.To] {
						l.x[sc.To] = cand
						repair[sc.To] = struct{}{}
					}
				}
			}
		}
	})

	actsMark("assignment", mark)

	// Dependency-parent repair for every vertex whose state may have moved.
	for v := range repair {
		l.repairParent(v)
	}
}

// uploadMinSubgraph recomputes one subgraph locally: offers for tagged
// members from valid flat in-neighbors (plus root messages and added-edge
// candidates), then a local fixpoint. Returns the members whose value
// changed.
func (l *Layph) uploadMinSubgraph(s *Subgraph, tagged []bool, addedOffer map[graph.VertexID]float64, st *inc.Stats) []graph.VertexID {
	zero := l.sr.Zero()
	lf := s.Local
	k := lf.size()
	x0 := make([]float64, k)
	m0 := make([]float64, k)
	var act []graph.VertexID
	for i, v := range lf.ids {
		x0[i] = l.x[v]
		m0[i] = zero
		if tagged[v] && l.flatAlive(v) {
			if int(v) < l.origCap {
				if m := l.a.InitMessage(v); m != zero {
					m0[i] = l.sr.Plus(m0[i], m)
				}
			}
			for _, e := range l.flatIn[v] {
				src := e.To
				if tagged[src] || l.x[src] == zero {
					continue
				}
				offer := l.sr.Times(l.x[src], e.W)
				st.Activations++
				if offer != zero {
					m0[i] = l.sr.Plus(m0[i], offer)
				}
			}
		}
		if offer, ok := addedOffer[v]; ok {
			m0[i] = l.sr.Plus(m0[i], offer)
			delete(addedOffer, v)
		}
		if m0[i] != zero && l.sr.Plus(x0[i], m0[i]) != x0[i] {
			act = append(act, graph.VertexID(i))
		}
	}
	if len(act) == 0 {
		return nil
	}
	res := engine.Run(&engine.Frame{Out: lf.absorbOut}, l.sr, x0, m0, engine.Options{
		Workers:       1,
		Tolerance:     l.tol,
		InitialActive: act,
		TrackChanged:  true,
	})
	st.Activations += res.Activations
	var changed []graph.VertexID
	for _, ci := range res.Changed {
		v := lf.ids[ci]
		l.x[v] = res.X[ci]
		changed = append(changed, v)
	}
	return changed
}

// repairParent re-derives v's dependency parent by scanning its flat
// in-edges for a witness. Witness matching uses a relative epsilon: values
// set through shortcut assignment differ from the edge-by-edge sum by float
// rounding, and an orphaned parent would silently exempt the vertex from
// future ⊥ cancellations (a stale-value correctness hole).
func (l *Layph) repairParent(v graph.VertexID) {
	zero := l.sr.Zero()
	if !l.flatAlive(v) || l.x[v] == zero {
		l.parent[v] = engine.NoParent
		return
	}
	l.parent[v] = engine.NoParent
	eps := 1e-9 * (1 + math.Abs(l.x[v]))
	for _, e := range l.flatIn[v] {
		src := e.To
		if l.x[src] == zero {
			continue
		}
		if math.Abs(l.sr.Times(l.x[src], e.W)-l.x[v]) <= eps {
			l.parent[v] = src
			return
		}
	}
}
