package core

import (
	"math"
	"time"

	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/metrics"
	"layph/internal/pool"
)

// Update incrementally adjusts the memoized result to the applied batch
// (the graph must already reflect it). The paper's online phases are timed
// individually into LastPhases (Figure 7):
//
//	layered-update — Section IV-B (structure + shortcut maintenance)
//	upload         — Section V-A  (local fixpoints in affected subgraphs)
//	lup-iteration  — Section V-B  (global iteration on the skeleton)
//	assignment     — Section V-C  (entry→internal shortcut application)
//
// Independent per-subgraph work inside the phases (shortcut maintenance,
// upload fixpoints, assignment replays) fans out over the shared worker
// pool; every phase joins all of its tasks before the next one starts, so
// Update as a whole still presents the sequential phase order. The number
// of subgraph tasks dispatched and the pool's utilization over the update
// are reported in the returned Stats.
func (l *Layph) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	poolBefore := l.pool.Stats()
	ph := metrics.NewPhases()
	var st inc.Stats

	var d *layeredDiff
	ph.Time("layered-update", func() { d = l.layeredUpdate(applied) })
	st.Activations += d.shortcutActivations
	st.SubgraphsParallel += d.parallelSubs
	l.LastActs = map[string]int64{"layered-update": d.shortcutActivations}
	before := st.Activations

	if l.sr.Idempotent() {
		l.updateMin(applied, d, ph, &st)
	} else {
		l.updateSum(applied, d, ph, &st)
	}
	l.LastActs["online"] = st.Activations - before
	l.LastPhases = ph

	// Layering-quality gauges (the stream drift controller's inputs).
	// SkeletonFraction is an O(flatN) scan, matching the per-update cost
	// profile Update already has (state snapshots are O(flatN) too).
	st.MembershipMoves = d.membershipMoves
	live, up := 0, 0
	for v := 0; v < l.flatN(); v++ {
		vid := graph.VertexID(v)
		if l.flatAlive(vid) {
			live++
			if l.onUp(vid) {
				up++
			}
		}
	}
	if live > 0 {
		st.SkeletonFraction = float64(up) / float64(live)
	}

	st.Duration = time.Since(start)
	st.PoolUtilization = pool.Utilization(poolBefore, l.pool.Stats(), st.Duration, l.pool.Size())
	if l.opt.SelfCheck {
		// All pool tasks are joined by now (each phase ends with a merge
		// barrier), so the full-structure invariant scan is race-free.
		l.LastCheck = l.CheckInvariants()
	}
	return st
}

// debugFlatOnly short-circuits the layered propagation: revision messages
// run directly on the flat frame. Debug/testing aid for isolating whether a
// divergence comes from deduction or from the layered phases.
var debugFlatOnly = false

// updateSum is the non-idempotent (memoization-free) online path: exact
// inverse-delta revision messages, local absorption, skeleton iteration,
// delta assignment.
func (l *Layph) updateSum(applied *delta.Applied, d *layeredDiff, ph *metrics.Phases, st *inc.Stats) {
	n := l.flatN()
	sc := &l.scratch
	// pending holds fresh revision messages not yet applied to any state;
	// fromLocal holds boundary deltas the local upload runs already applied
	// to their vertices (the skeleton run must propagate them without
	// re-applying).
	pending := floatBuf(&sc.pending, n)
	fromLocal := floatBuf(&sc.fromLocal, n)
	// Entry caches (Equation 9) are deltas against the pre-update states:
	// entries absorb both local-upload arrivals and skeleton arrivals, and
	// the assignment phase replays their total delta through the
	// entry→internal shortcuts.
	xPre := copyBuf(&sc.xPre, l.x)

	ph.Time("upload", func() {
		// Revision-message deduction: cancel old contributions over the old
		// flat lists, compensate over the new ones.
		for i, u := range d.oldSrc {
			old := d.oldRows[i]
			xu := l.x[u]
			if xu != 0 {
				for _, e := range old {
					if m := xu * e.W; m != 0 {
						pending[e.To] -= m
						st.Activations++
					}
				}
				for _, e := range l.flatOut[u] {
					if m := xu * e.W; m != 0 {
						pending[e.To] += m
						st.Activations++
					}
				}
			}
			if !l.flatAlive(u) {
				l.x[u] = 0 // removed vertices and orphaned proxies
			}
		}
		for _, v := range applied.AddedVertices {
			pending[v] += l.a.InitMessage(v)
		}

		if debugFlatOnly {
			return
		}
		// Local absorption: one fixpoint per affected subgraph consumes the
		// revision messages addressed to its members and turns them into
		// boundary deltas for the skeleton. Subgraphs own disjoint member
		// sets and each task reads/writes pending, fromLocal and l.x only
		// at its own members, so the fused chunks run as independent pool
		// tasks; results are identical to sequential execution.
		chunks := l.subgraphChunks(subgraphList(d.affectedSubs))
		st.SubgraphsParallel += int64(len(chunks))
		acts := make([]int64, len(chunks))
		grp := l.pool.Group()
		for i, ch := range chunks {
			i, ch := i, ch
			grp.Go(func() {
				var a int64
				for _, s := range ch {
					a += l.uploadSumSubgraph(s, pending, fromLocal)
				}
				acts[i] = a
			})
		}
		grp.Wait()
		for _, a := range acts {
			st.Activations += a
		}
	})

	ph.Time("lup-iteration", func() {
		frame := &engine.Frame{Out: l.upOut}
		if debugFlatOnly {
			frame = &engine.Frame{Out: l.flatOut}
		}
		m0 := floatBuf(&sc.m0, n)
		x0 := copyBuf(&sc.xSnap, l.x)
		any := false
		for v := 0; v < n; v++ {
			seed := pending[v] + fromLocal[v]
			if seed == 0 {
				continue
			}
			m0[v] = seed
			// Only the already-applied part is backed out of the state; the
			// engine re-applies the whole seed, so fresh messages land once
			// and local deltas land exactly once overall.
			x0[v] -= fromLocal[v]
			any = true
		}
		if !any {
			return
		}
		res := engine.Run(frame, l.sr, x0, m0, engine.Options{
			Workers:   l.opt.Workers,
			Tolerance: l.tol,
		})
		l.x = res.X
		st.Activations += res.Activations
		st.Rounds = res.Rounds
	})

	ph.Time("assignment", func() {
		if debugFlatOnly {
			return
		}
		// One task per fused chunk: a task reads entry states (boundary
		// vertices, not written here) and writes only its own subgraphs'
		// internal vertices via the entry→internal shortcuts — disjoint
		// across subgraphs, hence across chunks.
		chunks := l.subgraphChunks(subgraphList(l.subs))
		st.SubgraphsParallel += int64(len(chunks))
		acts := make([]int64, len(chunks))
		grp := l.pool.Group()
		for i, ch := range chunks {
			i, ch := i, ch
			grp.Go(func() {
				var a int64
				for _, s := range ch {
					for _, u := range s.Entries {
						mu := l.x[u] - xPre[u]
						if math.Abs(mu) <= l.tol {
							continue
						}
						for _, sc := range s.scToI[l.localIdx[u]] {
							l.x[sc.To] += mu * sc.W
							a++
						}
					}
				}
				acts[i] = a
			})
		}
		grp.Wait()
		for _, a := range acts {
			st.Activations += a
		}
	})

	// Dead vertices hold no state: clear correction residue parked on them.
	for _, u := range d.oldSrc {
		if !l.flatAlive(u) {
			l.x[u] = 0
		}
	}
	for _, v := range applied.RemovedVertices {
		l.x[v] = 0
	}

	// Quality gauges: the sum scheme's assignment iterates all subgraphs (and
	// every replay contributes exactly its delta), so the honest touched set
	// is the subgraphs whose interior the upload had to enter, and the
	// shortcut hit rate is the diagnostic constant 1.
	if len(l.subs) > 0 {
		st.TouchedSubgraphRatio = float64(len(d.affectedSubs)) / float64(len(l.subs))
	}
	st.ShortcutHitRate = 1
}

// uploadSumSubgraph runs the local fixpoint of one affected subgraph,
// consuming the pending revision messages addressed to its members. Member
// states absorb their internal-path effects; the messages re-emerge as
// pending deltas on boundary members for the skeleton iteration. Safe to
// run concurrently with other subgraphs' uploads: it touches pending,
// fromLocal and l.x only at this subgraph's (exclusively owned) members.
// Returns the F applications spent.
func (l *Layph) uploadSumSubgraph(s *Subgraph, pending, fromLocal []float64) int64 {
	lf := s.Local
	k := lf.size()
	if cap(lf.x0Buf) < k {
		lf.x0Buf = make([]float64, k)
		lf.m0Buf = make([]float64, k)
	}
	x0, m0 := lf.x0Buf[:k], lf.m0Buf[:k]
	seeded := false
	for i, v := range lf.ids {
		x0[i] = l.x[v]
		m0[i] = 0
		if p := pending[v]; p != 0 {
			// Fresh revision messages: the run applies them for the first
			// time (no state back-out).
			m0[i] = p
			pending[v] = 0
			seeded = true
		}
	}
	if !seeded {
		return 0
	}
	res := engine.Run(&engine.Frame{Out: lf.absorbOut}, l.sr, x0, m0, engine.Options{
		Workers:   1,
		Tolerance: l.tol,
	})
	for i, v := range lf.ids {
		dl := res.X[i] - l.x[v]
		l.x[v] = res.X[i]
		if dl != 0 && l.onUp(v) {
			// Boundary members forward their full delta (already applied to
			// their own state) to the skeleton.
			fromLocal[v] += dl
		}
	}
	return res.Activations
}

// updateMin is the idempotent (memoization-path) online path: dependency-
// tree resets, local recomputation in affected subgraphs, skeleton
// iteration with offer re-seeding, shortcut assignment, parent repair.
func (l *Layph) updateMin(applied *delta.Applied, d *layeredDiff, ph *metrics.Phases, st *inc.Stats) {
	n := l.flatN()
	zero := l.sr.Zero()
	sc := &l.scratch
	tagged := boolBuf(&sc.tagged, n)
	var resets []graph.VertexID
	sc.repair.reset(n)

	var localChanged []graph.VertexID
	var lupChanged []graph.VertexID
	var triggered []*Subgraph // assignment-phase subgraphs (hoisted for the quality gauges)
	var scApps, scHits int64  // shortcut replays / improving replays
	resetsBySub := make(map[int32]bool)
	// Active subgraphs (filled during upload; lup-iteration consults the
	// set to route the offer candidates the local fixpoints did not consume)
	// and the dense offer store replacing the per-update offer maps:
	// offerSet marks targets, offerVal carries the folded candidate.
	active := make(map[int32]*Subgraph)
	sc.offerSet.reset(n)
	offerVal := filledBuf(&sc.offerVal, n, zero)

	actsMark := func(name string, before int64) int64 {
		l.LastActs[name] = st.Activations - before
		return st.Activations
	}
	mark := st.Activations
	ph.Time("upload", func() {
		// ⊥ cancellation: tag the dependency subtrees hanging off removed
		// flat dependency edges, removed vertices and rebuilt proxies.
		var queue []graph.VertexID
		tag := func(v graph.VertexID) {
			if int(v) < n && !tagged[v] {
				tagged[v] = true
				queue = append(queue, v)
			}
		}
		for _, e := range d.removed {
			if l.parent[e.to] == e.from {
				tag(e.to)
			}
		}
		for _, v := range applied.RemovedVertices {
			tag(v)
		}
		for _, u := range d.oldSrc {
			if !l.flatAlive(u) {
				tag(u)
			}
		}
		for _, s := range d.rebuiltSubs {
			for _, p := range s.proxies {
				tag(p)
			}
		}
		if len(queue) > 0 {
			// CSR over the dependency forest: two counting passes instead
			// of a per-parent map of child slices.
			sc.depChildren(l.parent)
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				resets = append(resets, v)
				for _, c := range sc.children(v) {
					tag(c)
				}
			}
		}
		for _, v := range resets {
			l.x[v] = zero
			l.parent[v] = engine.NoParent
			sc.repair.add(v)
			if c := l.subOf[v]; c != NoSubgraph {
				resetsBySub[c] = true
			}
		}
		st.Resets = len(resets)

		// Active subgraphs: structure-affected plus any holding resets.
		for c, s := range d.affectedSubs {
			active[c] = s
		}
		for c := range resetsBySub {
			if s, ok := l.subs[c]; ok {
				active[c] = s
			}
		}

		// Direct compensation candidates from added flat edges, folded into
		// the dense offer store. An offer targeting a member of an active
		// subgraph is consumed by that subgraph's local task (concurrent
		// tasks only read the store, at their own members); the rest target
		// skeleton vertices and are picked up by the skeleton phase.
		for _, e := range d.added {
			if !l.flatAlive(e.to) || l.x[e.from] == zero {
				continue
			}
			offer := l.sr.Times(l.x[e.from], e.w)
			st.Activations++
			if offer == zero {
				continue
			}
			if sc.offerSet.add(e.to) || l.sr.Plus(offerVal[e.to], offer) != offerVal[e.to] {
				offerVal[e.to] = offer
			}
		}

		// Snapshot of the post-reset states: concurrent subgraph tasks
		// read offer sources from it, so cross-subgraph boundary reads
		// stay stable (and scheduling-independent) while other tasks
		// rewrite their own members. Stale cross-subgraph values are safe
		// under the monotone min semiring: a boundary member whose value
		// improves during upload lands in localChanged and is
		// re-propagated by the skeleton iteration and assignment phases.
		xSnap := copyBuf(&sc.xSnap, l.x)
		chunks := l.subgraphChunks(subgraphList(active))
		st.SubgraphsParallel += int64(len(chunks))
		type upRes struct {
			changed []graph.VertexID
			acts    int64
		}
		results := make([]upRes, len(chunks))
		grp := l.pool.Group()
		for i, cs := range chunks {
			i, cs := i, cs
			grp.Go(func() {
				var r upRes
				for _, s := range cs {
					ch, a := l.uploadMinSubgraph(s, tagged, xSnap, offerVal, &sc.offerSet)
					r.changed = append(r.changed, ch...)
					r.acts += a
				}
				results[i] = r
			})
		}
		grp.Wait()
		for _, r := range results {
			st.Activations += r.acts
			localChanged = append(localChanged, r.changed...)
			for _, v := range r.changed {
				sc.repair.add(v)
			}
		}
	})
	mark = actsMark("upload", mark)

	ph.Time("lup-iteration", func() {
		m0 := filledBuf(&sc.m0, n, zero)
		sc.inActive.reset(n)
		activate := func(v graph.VertexID) {
			sc.inActive.add(v)
		}
		// Re-seed tagged skeleton vertices from intact skeleton in-edges and
		// root messages.
		for _, v := range resets {
			if !l.flatAlive(v) || !l.onUp(v) {
				continue
			}
			if int(v) < l.origCap {
				if m := l.a.InitMessage(v); m != zero {
					m0[v] = l.sr.Plus(m0[v], m)
				}
			}
			for _, e := range l.upIn[v] {
				src := e.To
				if l.x[src] == zero {
					continue
				}
				offer := l.sr.Times(l.x[src], e.W)
				st.Activations++
				if offer != zero {
					m0[v] = l.sr.Plus(m0[v], offer)
				}
			}
			if m0[v] != zero {
				activate(v)
			}
		}
		// Boundary members whose value changed during local absorption
		// propagate over the skeleton.
		for _, v := range localChanged {
			if l.onUp(v) && l.flatAlive(v) {
				activate(v)
			}
		}
		// Remaining direct candidates on skeleton targets: offers whose
		// target sits in an active subgraph were already consumed by that
		// subgraph's local task.
		for _, v := range sc.offerSet.list {
			if c := l.subOf[v]; c != NoSubgraph {
				if _, isActive := active[c]; isActive {
					continue
				}
			}
			if !l.flatAlive(v) || !l.onUp(v) {
				continue
			}
			offer := offerVal[v]
			if l.sr.Plus(l.x[v], offer) != l.x[v] {
				m0[v] = l.sr.Plus(m0[v], offer)
				activate(v)
			}
		}
		if len(sc.inActive.list) == 0 {
			return
		}
		res := engine.Run(&engine.Frame{Out: l.upOut}, l.sr, l.x, m0, engine.Options{
			Workers:       l.opt.Workers,
			Tolerance:     l.tol,
			InitialActive: sc.inActive.list,
			TrackChanged:  true,
		})
		l.x = res.X
		st.Activations += res.Activations
		st.Rounds = res.Rounds
		for _, v := range res.Changed {
			sc.repair.add(v)
		}
		lupChanged = res.Changed
	})
	mark = actsMark("lup-iteration", mark)

	ph.Time("assignment", func() {
		sc.changedUp.reset(n)
		for _, v := range lupChanged {
			sc.changedUp.add(v)
		}
		// Entries are absorbing in local runs, so an entry improved during
		// upload also needs its shortcuts replayed.
		for _, v := range localChanged {
			if l.role[v].IsEntry() {
				sc.changedUp.add(v)
			}
		}
		// Replay entry→internal shortcuts of the triggered subgraphs, one
		// pool task each: a task reads its own entries' states (boundary
		// vertices, never written here) and writes only its own internal
		// vertices — disjoint across subgraphs. The min-replay outcome is
		// order-independent, so the parallel result equals the sequential
		// one.
		for _, s := range subgraphList(l.subs) {
			trigger := resetsBySub[s.ID]
			if !trigger {
				for _, u := range s.Entries {
					if sc.changedUp.has(u) {
						trigger = true
						break
					}
				}
			}
			if trigger {
				triggered = append(triggered, s)
			}
		}
		chunks := l.subgraphChunks(triggered)
		st.SubgraphsParallel += int64(len(chunks))
		type asgRes struct {
			repaired []graph.VertexID
			acts     int64
		}
		results := make([]asgRes, len(chunks))
		grp := l.pool.Group()
		for i, cs := range chunks {
			i, cs := i, cs
			grp.Go(func() {
				var r asgRes
				for _, s := range cs {
					for _, u := range s.Entries {
						if l.x[u] == zero {
							continue
						}
						for _, e := range s.scToI[l.localIdx[u]] {
							cand := l.sr.Times(l.x[u], e.W)
							r.acts++
							if l.sr.Plus(l.x[e.To], cand) != l.x[e.To] {
								l.x[e.To] = cand
								r.repaired = append(r.repaired, e.To)
							}
						}
					}
				}
				results[i] = r
			})
		}
		grp.Wait()
		for _, r := range results {
			st.Activations += r.acts
			scApps += r.acts
			scHits += int64(len(r.repaired))
			for _, v := range r.repaired {
				sc.repair.add(v)
			}
		}
	})

	actsMark("assignment", mark)

	// Quality gauges: the touched set is every subgraph whose interior this
	// update entered — upload work (structure-affected or reset-holding) plus
	// assignment replays. The hit rate is the fraction of shortcut replays
	// that improved their target; as memoized state drifts from the live
	// community structure it decays toward 0 (1 when nothing was replayed).
	touchedSubs := len(active)
	for _, s := range triggered {
		if _, ok := active[s.ID]; !ok {
			touchedSubs++
		}
	}
	if len(l.subs) > 0 {
		st.TouchedSubgraphRatio = float64(touchedSubs) / float64(len(l.subs))
	}
	st.ShortcutHitRate = 1
	if scApps > 0 {
		st.ShortcutHitRate = float64(scHits) / float64(scApps)
	}

	// Dependency-parent repair for every vertex whose state may have moved.
	// States are final by now and each repair writes only parent[v], so the
	// scan fans out over the pool in chunks (per-vertex tasks would drown
	// in scheduling overhead).
	repList := sc.repair.list
	l.pool.ForEachChunk(len(repList), 512, func(lo, hi int) {
		for _, v := range repList[lo:hi] {
			l.repairParent(v)
		}
	})
}

// uploadMinSubgraph recomputes one subgraph locally: offers for tagged
// members from valid flat in-neighbors (plus root messages and the
// subgraph's share of added-edge candidates), then a local fixpoint.
// Returns the members whose value changed and the F applications spent.
//
// Safe to run concurrently with other subgraphs' uploads: offer sources
// are read from xRead, the post-reset snapshot (identical to the live
// states for this subgraph's own members, which no other task writes),
// the shared offer store is only read (at this subgraph's own members),
// and l.x is written only at this subgraph's members.
func (l *Layph) uploadMinSubgraph(s *Subgraph, tagged []bool, xRead, offerVal []float64, offerSet *vset) (changed []graph.VertexID, acts int64) {
	zero := l.sr.Zero()
	lf := s.Local
	k := lf.size()
	if cap(lf.x0Buf) < k {
		lf.x0Buf = make([]float64, k)
		lf.m0Buf = make([]float64, k)
	}
	x0, m0 := lf.x0Buf[:k], lf.m0Buf[:k]
	var act []graph.VertexID
	for i, v := range lf.ids {
		x0[i] = xRead[v]
		m0[i] = zero
		if tagged[v] && l.flatAlive(v) {
			if int(v) < l.origCap {
				if m := l.a.InitMessage(v); m != zero {
					m0[i] = l.sr.Plus(m0[i], m)
				}
			}
			for _, e := range l.flatIn[v] {
				src := e.To
				if tagged[src] || xRead[src] == zero {
					continue
				}
				offer := l.sr.Times(xRead[src], e.W)
				acts++
				if offer != zero {
					m0[i] = l.sr.Plus(m0[i], offer)
				}
			}
		}
		if offerSet.has(v) {
			m0[i] = l.sr.Plus(m0[i], offerVal[v])
		}
		if m0[i] != zero && l.sr.Plus(x0[i], m0[i]) != x0[i] {
			act = append(act, graph.VertexID(i))
		}
	}
	if len(act) == 0 {
		return nil, acts
	}
	res := engine.Run(&engine.Frame{Out: lf.absorbOut}, l.sr, x0, m0, engine.Options{
		Workers:       1,
		Tolerance:     l.tol,
		InitialActive: act,
		TrackChanged:  true,
	})
	acts += res.Activations
	for _, ci := range res.Changed {
		v := lf.ids[ci]
		l.x[v] = res.X[ci]
		changed = append(changed, v)
	}
	return changed, acts
}

// repairParent re-derives v's dependency parent by scanning its flat
// in-edges for a witness. Witness matching uses a relative epsilon: values
// set through shortcut assignment differ from the edge-by-edge sum by float
// rounding, and an orphaned parent would silently exempt the vertex from
// future ⊥ cancellations (a stale-value correctness hole).
func (l *Layph) repairParent(v graph.VertexID) {
	zero := l.sr.Zero()
	if !l.flatAlive(v) || l.x[v] == zero {
		l.parent[v] = engine.NoParent
		return
	}
	l.parent[v] = engine.NoParent
	eps := 1e-9 * (1 + math.Abs(l.x[v]))
	for _, e := range l.flatIn[v] {
		src := e.To
		if l.x[src] == zero {
			continue
		}
		if math.Abs(l.sr.Times(l.x[src], e.W)-l.x[v]) <= eps {
			l.parent[v] = src
			return
		}
	}
}
