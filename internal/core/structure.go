package core

import (
	"sort"

	"layph/internal/engine"
	"layph/internal/graph"
)

// commOf returns the community id of an original vertex (NoSubgraph if
// outside the partition or dead).
func (l *Layph) commOf(v graph.VertexID) int32 {
	if int(v) >= len(l.part.Comm) {
		return NoSubgraph
	}
	if c := l.part.Comm[v]; c >= 0 {
		return c
	}
	return NoSubgraph
}

// denseDecision is the outcome of evaluating one community for dense-
// subgraph status (Definition 2) including prospective vertex replication.
type denseDecision struct {
	dense       bool
	entryHosts  []graph.VertexID // external sources to replicate (entry side)
	exitHosts   []graph.VertexID // external targets to replicate (exit side)
	numEntries  int
	numExits    int
	numInternal int
}

// evaluateCommunity counts boundary vertices and internal edges of the
// community as they would look after replication, and applies the paper's
// density test |V_I|·|V_O| < |E_i|.
func (l *Layph) evaluateCommunity(c int32, members []graph.VertexID) denseDecision {
	var d denseDecision
	if len(members) < 2 {
		return d
	}
	in := make(map[graph.VertexID]struct{}, len(members))
	for _, v := range members {
		in[v] = struct{}{}
	}
	r := l.opt.replication()

	inCount := make(map[graph.VertexID]int)  // external source -> #edges into c
	outCount := make(map[graph.VertexID]int) // external target -> #edges out of c
	intraEdges := 0
	for _, v := range members {
		for _, e := range l.g.Out(v) {
			if _, ok := in[e.To]; ok {
				intraEdges++
			} else {
				outCount[e.To]++
			}
		}
		for _, e := range l.g.In(v) {
			if _, ok := in[e.To]; !ok {
				inCount[e.To]++
			}
		}
	}
	entryProxied := make(map[graph.VertexID]struct{})
	exitProxied := make(map[graph.VertexID]struct{})
	if r > 0 {
		for h, n := range inCount {
			if n >= r {
				entryProxied[h] = struct{}{}
				d.entryHosts = append(d.entryHosts, h)
			}
		}
		for h, n := range outCount {
			if n >= r {
				exitProxied[h] = struct{}{}
				d.exitHosts = append(d.exitHosts, h)
			}
		}
	}
	sortVertices(d.entryHosts)
	sortVertices(d.exitHosts)

	// Post-replication boundary/edge counts: an edge from a replicated host
	// becomes internal (it now targets vertices from the in-subgraph proxy),
	// so it stops conferring entry status; symmetrically for exits.
	entries := make(map[graph.VertexID]struct{})
	exits := make(map[graph.VertexID]struct{})
	internalEdges := intraEdges
	for _, v := range members {
		for _, e := range l.g.In(v) {
			if _, ok := in[e.To]; ok {
				continue
			}
			if _, prox := entryProxied[e.To]; prox {
				internalEdges++
			} else {
				entries[v] = struct{}{}
			}
		}
		for _, e := range l.g.Out(v) {
			if _, ok := in[e.To]; ok {
				continue
			}
			if _, prox := exitProxied[e.To]; prox {
				internalEdges++
			} else {
				exits[v] = struct{}{}
			}
		}
	}
	d.numEntries = len(entries) + len(d.entryHosts)
	d.numExits = len(exits) + len(d.exitHosts)
	d.numInternal = len(members) - len(entries) - len(exits) // approximate; overlap ignored
	d.dense = d.numEntries*d.numExits < internalEdges
	return d
}

func sortVertices(vs []graph.VertexID) {
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
}

// allocProxy returns the proxy id for (sub, host) in the given registry,
// allocating a fresh flat vertex when absent, and revives it if orphaned.
func (l *Layph) allocProxy(reg map[proxyKey]graph.VertexID, sub int32, host graph.VertexID) graph.VertexID {
	k := proxyKey{sub: sub, host: host}
	if p, ok := reg[k]; ok {
		l.proxyAlive[p] = true
		l.subOf[p] = sub
		return p
	}
	p := graph.VertexID(l.flatN())
	reg[k] = p
	l.subOf = append(l.subOf, sub)
	l.role = append(l.role, RoleInternal) // refined by recomputeRoles
	l.proxyHost = append(l.proxyHost, host)
	l.proxyAlive = append(l.proxyAlive, true)
	l.localIdx = append(l.localIdx, -1)
	l.flatOut = append(l.flatOut, nil)
	l.flatIn = append(l.flatIn, nil)
	l.upOut = append(l.upOut, nil)
	l.upIn = append(l.upIn, nil)
	l.x = append(l.x, l.sr.Zero())
	if l.parent != nil {
		l.parent = append(l.parent, engine.NoParent)
	}
	return p
}

// computeFlatOut derives the flat out-list of a flat vertex from the graph
// and the current proxy registries. Precedence for a cross-subgraph edge
// that qualifies for both sides: the exit-side proxy wins (the edge is
// swallowed into the source's subgraph).
func (l *Layph) computeFlatOut(v graph.VertexID) []engine.WEdge {
	if !l.flatAlive(v) {
		return nil
	}
	if int(v) >= l.g.Cap() {
		return l.computeProxyOut(v)
	}
	sv := l.subOf[v]
	var out []engine.WEdge
	linkEmitted := make(map[int32]struct{})
	for _, e := range l.g.Out(v) {
		w := l.a.EdgeWeight(l.g, v, e)
		st := l.subOf[e.To]
		switch {
		case sv != NoSubgraph && st == sv:
			out = append(out, engine.WEdge{To: e.To, W: w})
		case sv != NoSubgraph && l.hasProxy(l.exitProxy, sv, e.To):
			out = append(out, engine.WEdge{To: l.exitProxy[proxyKey{sv, e.To}], W: w})
		case st != NoSubgraph && l.hasProxy(l.entryProxy, st, v):
			if _, done := linkEmitted[st]; !done {
				linkEmitted[st] = struct{}{}
				out = append(out, engine.WEdge{To: l.entryProxy[proxyKey{st, v}], W: l.sr.One()})
			}
			// The real edge belongs to the proxy's out-list.
		default:
			out = append(out, engine.WEdge{To: e.To, W: w})
		}
	}
	return out
}

func (l *Layph) hasProxy(reg map[proxyKey]graph.VertexID, sub int32, host graph.VertexID) bool {
	p, ok := reg[proxyKey{sub, host}]
	return ok && l.proxyAlive[p]
}

// computeProxyOut builds a proxy's out-list: an exit proxy links to its
// host; an entry proxy carries the host's (non-exit-proxied) edges into the
// subgraph, with the host's original semiring weights.
func (l *Layph) computeProxyOut(p graph.VertexID) []engine.WEdge {
	host := l.proxyHost[p]
	sub := l.subOf[p]
	if l.hasProxy(l.exitProxy, sub, host) && l.exitProxy[proxyKey{sub, host}] == p {
		return []engine.WEdge{{To: host, W: l.sr.One()}}
	}
	var out []engine.WEdge
	if !l.g.Alive(host) {
		return nil
	}
	sh := l.subOf[host]
	for _, e := range l.g.Out(host) {
		if l.subOf[e.To] != sub {
			continue
		}
		// Exit-side precedence: the host's subgraph may have swallowed this
		// edge into an exit proxy already.
		if sh != NoSubgraph && l.hasProxy(l.exitProxy, sh, e.To) {
			continue
		}
		out = append(out, engine.WEdge{To: e.To, W: l.a.EdgeWeight(l.g, host, e)})
	}
	return out
}

// refreshFlatVertex recomputes v's flat out-list, updates the mirrored
// in-lists, and returns the previous list together with the diff.
func (l *Layph) refreshFlatVertex(v graph.VertexID) (old, added, removed []engine.WEdge) {
	old = l.flatOut[v]
	fresh := l.computeFlatOut(v)
	l.flatOut[v] = fresh

	oldM := make(map[graph.VertexID]float64, len(old))
	for _, e := range old {
		oldM[e.To] = e.W
	}
	for _, e := range fresh {
		if w, ok := oldM[e.To]; ok && w == e.W {
			delete(oldM, e.To)
			continue
		}
		if w, ok := oldM[e.To]; ok {
			removed = append(removed, engine.WEdge{To: e.To, W: w})
			delete(oldM, e.To)
		}
		added = append(added, e)
	}
	for to, w := range oldM {
		removed = append(removed, engine.WEdge{To: to, W: w})
	}
	for _, e := range removed {
		l.flatIn[e.To] = dropEdge(l.flatIn[e.To], v)
	}
	for _, e := range added {
		l.flatIn[e.To] = append(l.flatIn[e.To], engine.WEdge{To: v, W: e.W})
	}
	return old, added, removed
}

func dropEdge(list []engine.WEdge, to graph.VertexID) []engine.WEdge {
	for i := range list {
		if list[i].To == to {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// recomputeRoles reassigns roles for the given flat vertices from the flat
// adjacency and subgraph membership.
func (l *Layph) recomputeRoles(vs []graph.VertexID) {
	for _, v := range vs {
		if !l.flatAlive(v) {
			l.role[v] = RoleDead
			continue
		}
		sv := l.subOf[v]
		if sv == NoSubgraph {
			l.role[v] = RoleOutlier
			continue
		}
		entry, exit := false, false
		for _, e := range l.flatIn[v] {
			if l.subOf[e.To] != sv {
				entry = true
				break
			}
		}
		for _, e := range l.flatOut[v] {
			if l.subOf[e.To] != sv {
				exit = true
				break
			}
		}
		switch {
		case entry && exit:
			l.role[v] = RoleEntryExit
		case entry:
			l.role[v] = RoleEntry
		case exit:
			l.role[v] = RoleExit
		default:
			l.role[v] = RoleInternal
		}
	}
}

// buildLocalFrame projects the subgraph's internal flat edges onto compact
// IDs. It (re)assigns the members' slots in the shared localIdx vector;
// concurrent builds of different subgraphs write disjoint slots because
// memberships are disjoint.
func (l *Layph) buildLocalFrame(s *Subgraph) {
	lf := &localFrame{ids: make([]graph.VertexID, 0, len(s.Members))}
	s.Local = lf
	for _, v := range s.Members {
		l.localIdx[v] = int32(len(lf.ids))
		lf.ids = append(lf.ids, v)
	}
	lf.out = make([][]engine.WEdge, len(lf.ids))
	lf.absorbOut = make([][]engine.WEdge, len(lf.ids))
	lf.absorbIn = make([][]engine.WEdge, len(lf.ids))
	for ci, v := range lf.ids {
		for _, e := range l.flatOut[v] {
			if tj, ok := l.compactID(s, e.To); ok {
				lf.out[ci] = append(lf.out[ci], engine.WEdge{To: graph.VertexID(tj), W: e.W})
			}
		}
		lf.edges += len(lf.out[ci])
		if !l.role[v].IsEntry() {
			lf.absorbOut[ci] = lf.out[ci]
		}
	}
	for ci := range lf.absorbOut {
		for _, e := range lf.absorbOut[ci] {
			lf.absorbIn[e.To] = append(lf.absorbIn[e.To], engine.WEdge{To: graph.VertexID(ci), W: e.W})
		}
	}
}

// deduceShortcuts runs Equation (6) for every entry vertex of the subgraph:
// inject the semiring unit at the entry, run the local fixpoint over the
// compact frame, and read off the aggregates as shortcut weights, fanning
// the independent per-entry deductions out over the worker pool. Returns
// the F applications spent.
func (l *Layph) deduceShortcuts(s *Subgraph) int64 {
	return l.deduceShortcutsPar(s, true)
}

// deduceShortcutsPar is deduceShortcuts with an explicit fan-out switch:
// callers already running one task per subgraph pass parallelEntries=false
// so entry deductions stay sequential inside the task — one level of
// fan-out keeps pool busy-time accounting exact (see buildSubgraphs).
func (l *Layph) deduceShortcutsPar(s *Subgraph, parallelEntries bool) int64 {
	lf := s.Local
	k := lf.size()
	var acts int64
	zero := l.sr.Zero()
	s.scToB = make([][]engine.WEdge, k)
	s.scToI = make([][]engine.WEdge, k)
	s.scVec = make([][]float64, k)
	if l.sr.Idempotent() {
		s.scParent = make([][]graph.VertexID, k)
	} else {
		s.scParent = nil
	}
	// Shortcut weights count internal paths whose intermediate vertices are
	// not entries (the source included): the unit message is emitted over
	// the source's out-edges directly and the fixpoint runs on the fully
	// absorbing frame. Through-entry and revisiting paths are then covered
	// exactly once by shortcut composition on Lup (including the self-
	// shortcut for sum-semiring cycles back to the entry).
	//
	// Each entry's fixpoint only reads the frozen local frame, so the
	// per-entry deductions can fan out over the worker pool; the shared
	// shortcut maps are filled sequentially after the join, in entry
	// order, keeping results deterministic.
	frame := &engine.Frame{Out: lf.absorbOut}
	type entryRes struct {
		vec  []float64
		par  []graph.VertexID
		acts int64
	}
	deduceEntry := func(u graph.VertexID) entryRes {
		cu := l.localIdx[u]
		x0 := make([]float64, k)
		m0 := make([]float64, k)
		for j := range x0 {
			x0[j] = zero
			m0[j] = zero
		}
		var a int64
		for _, e := range lf.out[cu] {
			m0[e.To] = l.sr.Plus(m0[e.To], l.sr.Times(l.sr.One(), e.W))
			a++
		}
		res := engine.Run(frame, l.sr, x0, m0, engine.Options{
			Workers:   1,
			Tolerance: l.scTol(),
		})
		a += res.Activations
		er := entryRes{vec: res.X, acts: a}
		if s.scParent != nil {
			par := make([]graph.VertexID, k)
			for ci := range par {
				par[ci] = l.scWitness(s, u, res.X, graph.VertexID(ci))
			}
			er.par = par
		}
		return er
	}
	results := make([]entryRes, len(s.Entries))
	if parallelEntries {
		grp := l.pool.Group()
		for i, u := range s.Entries {
			i, u := i, u
			grp.Go(func() { results[i] = deduceEntry(u) })
		}
		grp.Wait()
	} else {
		for i, u := range s.Entries {
			results[i] = deduceEntry(u)
		}
	}
	for i, u := range s.Entries {
		cu := l.localIdx[u]
		acts += results[i].acts
		s.scVec[cu] = results[i].vec
		if s.scParent != nil {
			s.scParent[cu] = results[i].par
		}
		l.rebuildShortcutLists(s, u)
	}
	return acts
}

// scWitness finds a compact dependency parent for target ci in entry u's
// shortcut vector: an absorbing-frame in-neighbor (or u's own direct edge)
// whose value composes to vec[ci] within rounding.
func (l *Layph) scWitness(s *Subgraph, u graph.VertexID, vec []float64, ci graph.VertexID) graph.VertexID {
	zero := l.sr.Zero()
	if vec[ci] == zero {
		return engine.NoParent
	}
	lf := s.Local
	cu := l.localIdx[u]
	eps := 1e-9 * (1 + absF(vec[ci]))
	for _, e := range lf.out[cu] {
		if e.To == ci && absF(l.sr.Times(l.sr.One(), e.W)-vec[ci]) <= eps {
			return graph.VertexID(cu)
		}
	}
	for _, ie := range lf.absorbIn[ci] {
		a := ie.To
		if vec[a] == zero {
			continue
		}
		if absF(l.sr.Times(vec[a], ie.W)-vec[ci]) <= eps {
			return a
		}
	}
	return engine.NoParent
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// rebuildShortcutLists re-derives entry u's shortcut lists from its
// memoized vector.
func (l *Layph) rebuildShortcutLists(s *Subgraph, u graph.VertexID) {
	zero := l.sr.Zero()
	lf := s.Local
	cu := l.localIdx[u]
	var toB, toI []engine.WEdge
	for ci, w := range s.scVec[cu] {
		if w == zero {
			continue
		}
		v := lf.ids[ci]
		if v == u {
			// Self-shortcut: cycles that return to the entry. For
			// idempotent semirings cycles cannot improve anything.
			if !l.sr.Idempotent() {
				toB = append(toB, engine.WEdge{To: u, W: w})
			}
			continue
		}
		sc := engine.WEdge{To: v, W: w}
		if l.role[v] == RoleInternal {
			toI = append(toI, sc)
		} else {
			toB = append(toB, sc)
		}
	}
	s.scToB[cu] = toB
	s.scToI[cu] = toI
}

// updateShortcutsIncremental absorbs internal edge diffs into every entry's
// memoized shortcut vector with revision messages — the paper's incremental
// shortcut weight update — instead of re-deducing from scratch. The caller
// guarantees the subgraph's membership, roles and proxies are unchanged.
// Returns the F applications spent.
func (l *Layph) updateShortcutsIncremental(s *Subgraph, added, removed []flatEdge) int64 {
	lf := s.Local
	zero := l.sr.Zero()
	var acts int64

	// Map diffs to compact IDs; rebuild the compact adjacency rows of the
	// changed sources first. changedSrc is a k-sized scoreboard, not a
	// map: diffs arrive in deterministic order and k is subgraph-sized.
	var cAdded, cRemoved []cDiff
	changedSrc := make([]bool, lf.size())
	var changedList []graph.VertexID
	markSrc := func(cf graph.VertexID) {
		if !changedSrc[cf] {
			changedSrc[cf] = true
			changedList = append(changedList, cf)
		}
	}
	for _, e := range added {
		cf, okF := l.compactID(s, e.from)
		ct, okT := l.compactID(s, e.to)
		if okF && okT {
			cAdded = append(cAdded, cDiff{graph.VertexID(cf), graph.VertexID(ct), e.w})
			markSrc(graph.VertexID(cf))
		}
	}
	for _, e := range removed {
		cf, okF := l.compactID(s, e.from)
		ct, okT := l.compactID(s, e.to)
		if okF && okT {
			cRemoved = append(cRemoved, cDiff{graph.VertexID(cf), graph.VertexID(ct), e.w})
			markSrc(graph.VertexID(cf))
		}
	}
	if len(cAdded) == 0 && len(cRemoved) == 0 {
		return 0
	}
	for _, cf := range changedList {
		v := lf.ids[cf]
		var row []engine.WEdge
		for _, e := range l.flatOut[v] {
			if tj, ok := l.compactID(s, e.To); ok {
				row = append(row, engine.WEdge{To: graph.VertexID(tj), W: e.W})
			}
		}
		// Update absorbIn by diffing the old row.
		oldRow := lf.out[cf]
		lf.out[cf] = row
		lf.edges += len(row) - len(oldRow)
		isEntry := l.role[v].IsEntry()
		if !isEntry {
			for _, e := range oldRow {
				lf.absorbIn[e.To] = dropEdge(lf.absorbIn[e.To], cf)
			}
			for _, e := range row {
				lf.absorbIn[e.To] = append(lf.absorbIn[e.To], engine.WEdge{To: cf, W: e.W})
			}
			lf.absorbOut[cf] = row
		}
	}

	frame := &engine.Frame{Out: lf.absorbOut}
	for _, u := range s.Entries {
		cu := l.localIdx[u]
		vec := s.scVec[cu]
		if vec == nil {
			continue
		}
		if l.sr.Idempotent() {
			acts += l.updateEntryMin(s, u, cu, vec, frame, cAdded, cRemoved)
		} else {
			acts += l.updateEntrySum(s, u, cu, vec, frame, cAdded, cRemoved)
		}
	}
	_ = zero
	return acts
}

// cDiff is an internal edge diff in a subgraph's compact ID space.
type cDiff struct {
	from, to graph.VertexID
	w        float64
}

// updateEntrySum applies exact inverse deltas for one entry's vector.
func (l *Layph) updateEntrySum(s *Subgraph, u graph.VertexID, cu int32, vec []float64,
	frame *engine.Frame, added, removed []cDiff) int64 {
	k := len(vec)
	pending := make([]float64, k)
	var acts int64
	seeded := false
	contrib := func(from graph.VertexID, w float64) float64 {
		if from == graph.VertexID(cu) {
			return l.sr.One() * w // direct seed edge from the entry
		}
		if l.role[s.Local.ids[from]].IsEntry() {
			return 0 // other entries are absorbing: their edges carry nothing
		}
		return vec[from] * w
	}
	for _, e := range removed {
		if m := contrib(e.from, e.w); m != 0 {
			pending[e.to] -= m
			seeded = true
			acts++
		}
	}
	for _, e := range added {
		if m := contrib(e.from, e.w); m != 0 {
			pending[e.to] += m
			seeded = true
			acts++
		}
	}
	if !seeded {
		return acts
	}
	res := engine.Run(frame, l.sr, vec, pending, engine.Options{Workers: 1, Tolerance: l.scTol()})
	acts += res.Activations
	s.scVec[cu] = res.X
	l.rebuildShortcutLists(s, u)
	return acts
}

// scTol is the tolerance of shortcut-maintenance fixpoints: tighter than the
// propagation tolerance because shortcut weights are reused by every later
// update, so truncation would accumulate across batches.
func (l *Layph) scTol() float64 { return l.tol * 1e-2 }

// updateEntryMin applies ⊥-cancellation resets and recomputation for one
// entry's vector.
func (l *Layph) updateEntryMin(s *Subgraph, u graph.VertexID, cu int32, vec []float64,
	frame *engine.Frame, added, removed []cDiff) int64 {
	lf := s.Local
	k := len(vec)
	zero := l.sr.Zero()
	par := s.scParent[cu]
	var acts int64

	// Everything below runs in compact-ID space, so k-sized scoreboards
	// replace maps: cheaper, and iteration order is the insertion order of
	// the queues, which is deterministic.
	tagged := make([]bool, k)
	var queue []graph.VertexID
	tag := func(c graph.VertexID) {
		if !tagged[c] {
			tagged[c] = true
			queue = append(queue, c)
		}
	}
	for _, e := range removed {
		if e.from == graph.VertexID(cu) || par[e.to] == e.from {
			tag(e.to)
		}
	}
	var resets []graph.VertexID
	if len(queue) > 0 {
		children := make([][]graph.VertexID, k)
		for c, p := range par {
			if p != engine.NoParent {
				children[p] = append(children[p], graph.VertexID(c))
			}
		}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			resets = append(resets, c)
			for _, ch := range children[c] {
				tag(ch)
			}
		}
	}
	for _, c := range resets {
		vec[c] = zero
		par[c] = engine.NoParent
	}

	pending := make([]float64, k)
	for i := range pending {
		pending[i] = zero
	}
	var act []graph.VertexID
	inAct := make([]bool, k)
	activate := func(c graph.VertexID) {
		if !inAct[c] {
			inAct[c] = true
			act = append(act, c)
		}
	}
	// Offers for reset targets from intact sources: u's direct edges plus
	// non-tagged absorbing-frame in-neighbors.
	for _, c := range resets {
		for _, e := range lf.out[cu] {
			if e.To == c {
				pending[c] = l.sr.Plus(pending[c], l.sr.Times(l.sr.One(), e.W))
				acts++
			}
		}
		for _, ie := range lf.absorbIn[c] {
			a := ie.To
			if tagged[a] || vec[a] == zero {
				continue
			}
			offer := l.sr.Times(vec[a], ie.W)
			acts++
			if offer != zero {
				pending[c] = l.sr.Plus(pending[c], offer)
			}
		}
		if pending[c] != zero {
			activate(c)
		}
	}
	// Compensation candidates from added edges.
	for _, e := range added {
		var offer float64
		switch {
		case e.from == graph.VertexID(cu):
			offer = l.sr.Times(l.sr.One(), e.w)
		case l.role[lf.ids[e.from]].IsEntry():
			continue
		case vec[e.from] != zero:
			offer = l.sr.Times(vec[e.from], e.w)
		default:
			continue
		}
		acts++
		if l.sr.Plus(vec[e.to], offer) != vec[e.to] {
			pending[e.to] = l.sr.Plus(pending[e.to], offer)
			activate(e.to)
		}
	}
	if len(act) == 0 && len(resets) == 0 {
		return acts
	}
	res := engine.Run(frame, l.sr, vec, pending, engine.Options{
		Workers: 1, Tolerance: l.scTol(), InitialActive: act, TrackChanged: true,
	})
	acts += res.Activations
	s.scVec[cu] = res.X
	// Repair compact parents for everything that moved.
	for _, c := range res.Changed {
		par[c] = l.scWitness(s, u, res.X, c)
	}
	for _, c := range resets {
		par[c] = l.scWitness(s, u, res.X, c)
	}
	l.rebuildShortcutLists(s, u)
	return acts
}

// computeUpOut derives a flat vertex's upper-layer out-list: flat edges
// leaving its subgraph (or any flat edge, for outliers) plus, for entries,
// their boundary shortcuts.
func (l *Layph) computeUpOut(v graph.VertexID) []engine.WEdge {
	if !l.flatAlive(v) || !l.onUp(v) {
		return nil
	}
	sv := l.subOf[v]
	var out []engine.WEdge
	for _, e := range l.flatOut[v] {
		if sv != NoSubgraph && l.subOf[e.To] == sv {
			continue
		}
		out = append(out, e)
	}
	if l.role[v].IsEntry() {
		if s := l.subs[sv]; s != nil {
			out = append(out, l.ShortcutsToBoundary(s, v)...)
		}
	}
	return out
}

// refreshUpVertex recomputes v's Lup out-list and mirrors the diff into the
// Lup in-lists.
func (l *Layph) refreshUpVertex(v graph.VertexID) {
	old := l.upOut[v]
	fresh := l.computeUpOut(v)
	l.upOut[v] = fresh
	oldM := make(map[graph.VertexID]float64, len(old))
	for _, e := range old {
		oldM[e.To] = e.W
	}
	for _, e := range fresh {
		if w, ok := oldM[e.To]; ok && w == e.W {
			delete(oldM, e.To)
			continue
		}
		if _, ok := oldM[e.To]; ok {
			l.upIn[e.To] = dropEdge(l.upIn[e.To], v)
			delete(oldM, e.To)
		}
		l.upIn[e.To] = append(l.upIn[e.To], engine.WEdge{To: v, W: e.W})
	}
	for to := range oldM {
		l.upIn[to] = dropEdge(l.upIn[to], v)
	}
}
