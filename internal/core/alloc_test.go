package core

import (
	"fmt"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
)

// allocWorkload builds a community graph plus a pair of inverse batches:
// addB inserts fresh edges, delB removes exactly those edges. Applying
// add+update then del+update returns the graph to its original edge set,
// so the cycle can repeat indefinitely — a steady-state incremental
// workload with no drift in graph size.
func allocWorkload(vertices, batch int) (*graph.Graph, delta.Batch, delta.Batch) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices:      vertices,
		MeanCommunity: 40,
		IntraDegree:   8,
		InterDegree:   0.3,
		Weighted:      true,
		Seed:          7,
	})
	addB := make(delta.Batch, 0, batch)
	delB := make(delta.Batch, 0, batch)
	// Deterministic fresh edges: stride enumeration. Every (u, u+d) pair
	// with a fixed stride d is distinct across strides, so pairs never
	// repeat and the scan terminates as soon as `batch` non-edges are
	// found. Large strides cross community boundaries.
	n := graph.VertexID(vertices)
outer:
	for d := n / 3; d > 0; d-- {
		for u := graph.VertexID(0); u < n; u++ {
			v := (u + d) % n
			if _, ok := g.HasEdge(u, v); ok {
				continue
			}
			w := 1 + float64((u+v)%5)
			addB = append(addB, delta.Update{Kind: delta.AddEdge, U: u, V: v, W: w})
			delB = append(delB, delta.Update{Kind: delta.DelEdge, U: u, V: v})
			if len(addB) == batch {
				break outer
			}
		}
	}
	return g, addB, delB
}

// cycleOnce applies the add batch, updates, applies the inverse delete
// batch, and updates again — one steady-state round trip.
func cycleOnce(l *Layph, g *graph.Graph, addB, delB delta.Batch) {
	l.Update(delta.Apply(g, addB))
	l.Update(delta.Apply(g, delB))
}

// steadyStateAllocs measures the allocation count of one warm add+del
// update cycle on a community graph with `vertices` vertices.
func steadyStateAllocs(a algo.Algorithm, vertices, batch int) float64 {
	g, addB, delB := allocWorkload(vertices, batch)
	l := New(g, a, Options{Workers: 1})
	// Warm the scratch buffers: the first cycles grow vsets, O(n)
	// vectors, and proxy capacity to their steady size.
	for i := 0; i < 3; i++ {
		cycleOnce(l, g, addB, delB)
	}
	return testing.AllocsPerRun(5, func() {
		cycleOnce(l, g, addB, delB)
	})
}

// TestUpdateSteadyStateAllocs asserts that a warm incremental batch
// performs no per-vertex (O(n)) allocations: the hot path keeps engine
// state on dense vectors and reuses epoch-stamped scratch sets across
// Update calls, so its allocations scale with the touched footprint of
// the batch, not with graph size. The check runs the same fixed batch on
// a graph 4x larger and requires the allocation count to stay within 2x
// — any reintroduced per-vertex map or per-update O(n) buffer makes the
// big-graph run allocate ~4x and fails loudly.
func TestUpdateSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow in -short CI lanes")
	}
	const (
		small = 4000
		big   = 4 * small
		batch = 200
	)
	for _, tc := range []struct {
		name string
		mk   func() algo.Algorithm
	}{
		{"SSSP", func() algo.Algorithm { return algo.NewSSSP(0) }},
		{"PageRank", func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-6) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			at := steadyStateAllocs(tc.mk(), small, batch)
			ab := steadyStateAllocs(tc.mk(), big, batch)
			t.Logf("%s: %.0f allocs/cycle at %d vertices, %.0f at %d (ratio %.2f)",
				tc.name, at, small, ab, big, ab/at)
			if ab > 2*at+1000 {
				t.Fatalf("allocations scale with graph size (%.0f at n=%d vs %.0f at n=%d): steady-state hot path regressed to per-vertex allocation",
					ab, big, at, small)
			}
		})
	}
}

// BenchmarkUpdate measures the incremental-update hot path end to end
// (apply inverse batches + Update) with allocation reporting; run with
// -benchmem to track bytes/op and allocs/op across layout changes:
//
//	go test ./internal/core -bench BenchmarkUpdate -benchmem
func BenchmarkUpdate(b *testing.B) {
	for _, name := range []string{"SSSP", "PageRank"} {
		for _, batch := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/batch=%d", name, batch), func(b *testing.B) {
				g, addB, delB := allocWorkload(8000, batch)
				var a algo.Algorithm
				if name == "SSSP" {
					a = algo.NewSSSP(0)
				} else {
					a = algo.NewPageRank(0.85, 1e-6)
				}
				l := New(g, a, Options{Workers: 1})
				cycleOnce(l, g, addB, delB) // warm scratch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cycleOnce(l, g, addB, delB)
				}
			})
		}
	}
}
