package core

import (
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/gen"
)

// TestAdaptiveDriftMigratesAndHoldsInvariants drives an adaptive engine
// through community-migration churn and pins that (a) the incremental
// adjustment actually migrates memberships, (b) every update leaves the
// layered structure invariant-clean (SelfCheck), and (c) the quality
// gauges stay in range.
func TestAdaptiveDriftMigratesAndHoldsInvariants(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 3,
	})
	l := New(g, algo.NewSSSP(0), Options{Workers: 2, AdaptiveCommunities: true, SelfCheck: true})
	genr := delta.NewGenerator(17)
	var moves int64
	for i := 0; i < 10; i++ {
		batch := genr.MigrationBatch(g, 15, 4, true)
		batch = append(batch, genr.EdgeBatch(g, 40, true)...)
		st := l.Update(delta.Apply(g, batch))
		moves += st.MembershipMoves
		if l.LastCheck != nil {
			t.Fatalf("batch %d: invariants violated after adaptive update: %v", i, l.LastCheck)
		}
		if st.TouchedSubgraphRatio < 0 || st.TouchedSubgraphRatio > 1 {
			t.Fatalf("batch %d: touched ratio out of range: %v", i, st.TouchedSubgraphRatio)
		}
		if st.SkeletonFraction <= 0 || st.SkeletonFraction > 1 {
			t.Fatalf("batch %d: skeleton fraction out of range: %v", i, st.SkeletonFraction)
		}
		if st.ShortcutHitRate < 0 || st.ShortcutHitRate > 1 {
			t.Fatalf("batch %d: shortcut hit rate out of range: %v", i, st.ShortcutHitRate)
		}
	}
	if moves == 0 {
		t.Fatal("adaptive mode never migrated a vertex under migration churn")
	}
	live, ids := l.CommunityStats()
	if live <= 0 || live > ids {
		t.Fatalf("CommunityStats out of range: live=%d ids=%d", live, ids)
	}
}

// TestAdaptiveOffLeavesPartitionFrozen pins the default: without
// AdaptiveCommunities no membership ever moves, whatever the churn.
func TestAdaptiveOffLeavesPartitionFrozen(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 400, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 4,
	})
	l := New(g, algo.NewSSSP(0), Options{Workers: 2})
	before := append([]int32(nil), l.part.Comm...)
	genr := delta.NewGenerator(5)
	for i := 0; i < 5; i++ {
		batch := genr.MigrationBatch(g, 12, 4, true)
		st := l.Update(delta.Apply(g, batch))
		if st.MembershipMoves != 0 {
			t.Fatalf("batch %d: frozen engine reported %d membership moves", i, st.MembershipMoves)
		}
	}
	for v, c := range before {
		if l.part.Comm[v] != c {
			t.Fatalf("vertex %d: community changed %d -> %d with adaptivity off", v, c, l.part.Comm[v])
		}
	}
}
