package core

import (
	"sort"
	"time"

	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/metrics"
	"layph/internal/pool"
)

// New builds the layered graph for g under algorithm a (offline phase) and
// runs the initial batch computation over the flat layered graph, memoizing
// states (and dependency parents for idempotent algorithms).
func New(g *graph.Graph, a algo.Algorithm, opt Options) *Layph {
	l := &Layph{
		g:          g,
		a:          a,
		sr:         a.Semiring(),
		opt:        opt,
		subs:       make(map[int32]*Subgraph),
		entryProxy: make(map[proxyKey]graph.VertexID),
		exitProxy:  make(map[proxyKey]graph.VertexID),
		LastPhases: metrics.NewPhases(),
	}
	l.pool = pool.New(opt.Workers)
	l.tol = opt.Tolerance
	if l.tol == 0 {
		l.tol = a.Tolerance()
	}
	if l.opt.Community.MaxSize == 0 {
		k := g.NumVertices() / 1000 // the paper's rule of thumb: ~0.1% of |V|
		if k < 64 {
			k = 64 // floor keeps small graphs from fragmenting below density
		}
		if k > 4096 {
			k = 4096
		}
		l.opt.Community.MaxSize = k
	}

	buildStart := time.Now()
	l.part = community.Detect(g, l.opt.Community)

	n := g.Cap()
	l.origCap = n
	l.subOf = make([]int32, n)
	l.role = make([]Role, n)
	l.proxyHost = make([]graph.VertexID, n)
	l.proxyAlive = make([]bool, n)
	l.localIdx = make([]int32, n)
	for v := 0; v < n; v++ {
		l.subOf[v] = NoSubgraph
		l.role[v] = RoleOutlier
		l.proxyHost[v] = NoHost
		l.localIdx[v] = -1
		if !g.Alive(graph.VertexID(v)) {
			l.role[v] = RoleDead
		}
	}
	l.flatOut = make([][]engine.WEdge, n)
	l.flatIn = make([][]engine.WEdge, n)
	l.upOut = make([][]engine.WEdge, n)
	l.upIn = make([][]engine.WEdge, n)
	l.x = make([]float64, n) // placeholder; re-initialized before the batch run

	// Dense-subgraph selection and proxy allocation.
	members := l.part.Members()
	for c := int32(0); int(c) < len(members); c++ {
		ms := members[c]
		d := l.evaluateCommunity(c, ms)
		if !d.dense {
			continue
		}
		s := &Subgraph{ID: c, origMembers: append([]graph.VertexID(nil), ms...)}
		for _, v := range ms {
			l.subOf[v] = c
		}
		for _, h := range d.entryHosts {
			s.proxies = append(s.proxies, l.allocProxy(l.entryProxy, c, h))
		}
		for _, h := range d.exitHosts {
			s.proxies = append(s.proxies, l.allocProxy(l.exitProxy, c, h))
		}
		l.subs[c] = s
	}
	if l.opt.AdaptiveCommunities {
		// members was just materialized from the fresh partition; keep it as
		// the per-community index adaptMembership maintains incrementally.
		l.commVerts = members
	}

	// Flat graph over the final ID space.
	fn := l.flatN()
	for v := 0; v < fn; v++ {
		l.flatOut[v] = l.computeFlatOut(graph.VertexID(v))
	}
	for v := 0; v < fn; v++ {
		for _, e := range l.flatOut[v] {
			l.flatIn[e.To] = append(l.flatIn[e.To], engine.WEdge{To: graph.VertexID(v), W: e.W})
		}
	}

	// Roles, member lists, local frames, shortcuts. Subgraphs are
	// disjoint and their construction only reads the (now frozen) flat
	// adjacency and role vectors, so the per-subgraph pass fans out over
	// the worker pool.
	all := make([]graph.VertexID, fn)
	for v := range all {
		all[v] = graph.VertexID(v)
	}
	l.recomputeRoles(all)
	scActs, _ := l.buildSubgraphs(subgraphList(l.subs))
	l.OfflineStats.ShortcutActivations += scActs
	l.OfflineStats.ShortcutCount = l.ShortcutCount()
	l.OfflineStats.DenseSubgraphs = len(l.subs)
	l.OfflineStats.Proxies = fn - n

	// Upper layer.
	for v := 0; v < fn; v++ {
		l.refreshUpVertex(graph.VertexID(v))
	}
	l.OfflineStats.BuildSeconds = time.Since(buildStart).Seconds()

	// Initial batch run on the flat layered graph.
	initStart := time.Now()
	x0 := make([]float64, fn)
	m0 := make([]float64, fn)
	for v := 0; v < fn; v++ {
		x0[v], m0[v] = l.sr.Zero(), l.sr.Zero()
		if v < g.Cap() && g.Alive(graph.VertexID(v)) {
			x0[v] = a.InitState(graph.VertexID(v))
			m0[v] = a.InitMessage(graph.VertexID(v))
		}
	}
	res := engine.Run(&engine.Frame{Out: l.flatOut}, l.sr, x0, m0, engine.Options{
		Workers:      opt.Workers,
		Tolerance:    l.tol,
		TrackParents: l.sr.Idempotent(),
	})
	l.x = res.X
	l.parent = res.Parent
	l.OfflineStats.InitialSeconds = time.Since(initStart).Seconds()
	return l
}

// subgraphList collects a subgraph map's values in ascending ID order, so
// parallel fan-outs process (and merge) a deterministic task sequence
// regardless of map iteration order.
func subgraphList(m map[int32]*Subgraph) []*Subgraph {
	out := make([]*Subgraph, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sortSubgraphs(out)
	return out
}

func sortSubgraphs(subs []*Subgraph) {
	sort.Slice(subs, func(a, b int) bool { return subs[a].ID < subs[b].ID })
}

// buildSubgraphs (re)constructs each listed subgraph — member
// classification, local frame, full shortcut deduction — and returns the
// total F applications spent plus the number of pool tasks dispatched.
// The fan-out axis adapts to the work shape: with several subgraphs, one
// pool task per fused chunk of subgraphs (entries within each deduced
// sequentially); with a single subgraph, the per-entry deductions
// fan out instead. One level of fan-out either way keeps the pool's
// busy-time accounting exact (no task ever blocks inside another task);
// the pool's inline fallback would keep even accidental nesting
// deadlock-free. Tasks write only their own subgraph and read shared
// structure that is frozen for the duration of the fan-out.
func (l *Layph) buildSubgraphs(subs []*Subgraph) (int64, int64) {
	if len(subs) == 1 {
		s := subs[0]
		l.classifyMembers(s)
		l.buildLocalFrame(s)
		return l.deduceShortcutsPar(s, true), 1
	}
	chunks := l.subgraphChunks(subs)
	acts := make([]int64, len(chunks))
	grp := l.pool.Group()
	for i, ch := range chunks {
		i, ch := i, ch
		grp.Go(func() {
			var a int64
			for _, s := range ch {
				l.classifyMembers(s)
				l.buildLocalFrame(s)
				a += l.deduceShortcutsPar(s, false)
			}
			acts[i] = a
		})
	}
	grp.Wait()
	var total int64
	for _, a := range acts {
		total += a
	}
	return total, int64(len(chunks))
}

// classifyMembers fills the subgraph's member/role lists from the current
// liveness and role assignments.
func (l *Layph) classifyMembers(s *Subgraph) {
	s.Members = s.Members[:0]
	s.Entries = s.Entries[:0]
	s.Exits = s.Exits[:0]
	s.Internal = s.Internal[:0]
	for _, v := range s.origMembers {
		if l.flatAlive(v) && l.subOf[v] == s.ID {
			s.Members = append(s.Members, v)
		}
	}
	for _, p := range s.proxies {
		if l.flatAlive(p) && l.subOf[p] == s.ID {
			s.Members = append(s.Members, p)
		}
	}
	for _, v := range s.Members {
		r := l.role[v]
		if r.IsEntry() {
			s.Entries = append(s.Entries, v)
		}
		if r == RoleExit || r == RoleEntryExit {
			s.Exits = append(s.Exits, v)
		}
		if r == RoleInternal {
			s.Internal = append(s.Internal, v)
		}
	}
}
