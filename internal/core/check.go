package core

import (
	"fmt"

	"layph/internal/graph"
)

// CheckInvariants validates the layered structure; tests call it after
// construction and after every update. It returns the first violation.
//
// Concurrency contract: the check scans the whole structure (states,
// adjacency, subgraph maps) without locks, so it must only run at a merge
// barrier — when no pool task is in flight. It must not be called from
// inside a concurrent subgraph task: a sibling task's in-progress state
// writes would be reported as (phantom) violations. Every parallel phase
// of Update joins all of its tasks before returning, so the end of Update
// is always a safe point; Options.SelfCheck runs the check there
// automatically and records the result in Layph.LastCheck.
func (l *Layph) CheckInvariants() error {
	n := l.flatN()
	if len(l.flatIn) != n || len(l.upOut) != n || len(l.upIn) != n ||
		len(l.role) != n || len(l.subOf) != n || len(l.x) != n {
		return fmt.Errorf("vector length mismatch (n=%d)", n)
	}
	// Original vertices must map identically; proxies must carry hosts.
	for v := 0; v < n; v++ {
		isProxy := l.proxyHost[v] != NoHost
		if (v < l.origCap) == isProxy {
			return fmt.Errorf("vertex %d: origCap=%d but proxyHost=%v", v, l.origCap, l.proxyHost[v])
		}
	}
	// flatIn mirrors flatOut.
	inCount := 0
	for v := 0; v < n; v++ {
		for _, e := range l.flatOut[v] {
			found := false
			for _, r := range l.flatIn[e.To] {
				if r.To == graph.VertexID(v) && r.W == e.W {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("flat edge (%d,%d) missing from in-list", v, e.To)
			}
		}
		inCount += len(l.flatIn[v])
	}
	outCount := 0
	for v := 0; v < n; v++ {
		outCount += len(l.flatOut[v])
	}
	if inCount != outCount {
		return fmt.Errorf("flat in/out edge counts differ: %d vs %d", inCount, outCount)
	}
	// Dead vertices carry no flat edges.
	for v := 0; v < n; v++ {
		if !l.flatAlive(graph.VertexID(v)) {
			if len(l.flatOut[v]) != 0 {
				return fmt.Errorf("dead vertex %d has flat out-edges", v)
			}
			if l.role[v] != RoleDead {
				return fmt.Errorf("dead vertex %d has role %v", v, l.role[v])
			}
		}
	}
	// Roles consistent with flat adjacency and membership.
	for v := 0; v < n; v++ {
		if !l.flatAlive(graph.VertexID(v)) {
			continue
		}
		sv := l.subOf[v]
		if sv == NoSubgraph {
			if l.role[v] != RoleOutlier {
				return fmt.Errorf("vertex %d: no subgraph but role %v", v, l.role[v])
			}
			continue
		}
		if _, ok := l.subs[sv]; !ok {
			return fmt.Errorf("vertex %d references missing subgraph %d", v, sv)
		}
		entry, exit := false, false
		for _, e := range l.flatIn[v] {
			if l.subOf[e.To] != sv {
				entry = true
			}
		}
		for _, e := range l.flatOut[v] {
			if l.subOf[e.To] != sv {
				exit = true
			}
		}
		want := RoleInternal
		switch {
		case entry && exit:
			want = RoleEntryExit
		case entry:
			want = RoleEntry
		case exit:
			want = RoleExit
		}
		if l.role[v] != want {
			return fmt.Errorf("vertex %d (sub %d): role %v, want %v", v, sv, l.role[v], want)
		}
	}
	// Upper layer: internal vertices never appear; lists match recomputation.
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		if !l.flatAlive(vid) || !l.onUp(vid) {
			if len(l.upOut[v]) != 0 {
				return fmt.Errorf("off-skeleton vertex %d has up out-edges", v)
			}
			continue
		}
		want := l.computeUpOut(vid)
		if len(want) != len(l.upOut[v]) {
			return fmt.Errorf("vertex %d: up out-list stale (%d vs %d edges)", v, len(l.upOut[v]), len(want))
		}
		wm := make(map[graph.VertexID]float64, len(want))
		for _, e := range want {
			wm[e.To] = e.W
		}
		for _, e := range l.upOut[v] {
			if w, ok := wm[e.To]; !ok || w != e.W {
				return fmt.Errorf("vertex %d: up edge (%d,%v) stale", v, e.To, e.W)
			}
		}
		for _, e := range l.upOut[v] {
			if l.role[e.To] == RoleInternal {
				return fmt.Errorf("up edge (%d,%d) targets an internal vertex", v, e.To)
			}
		}
	}
	// Subgraph member lists consistent.
	for c, s := range l.subs {
		if s.ID != c {
			return fmt.Errorf("subgraph id mismatch %d vs %d", s.ID, c)
		}
		for _, v := range s.Members {
			if l.subOf[v] != c {
				return fmt.Errorf("member %d of sub %d has subOf %d", v, c, l.subOf[v])
			}
			if !l.flatAlive(v) {
				return fmt.Errorf("dead member %d in sub %d", v, c)
			}
		}
		if len(s.Entries)+len(s.Exits) == 0 && len(s.Members) > 0 {
			// A dense subgraph completely disconnected from the rest is
			// possible but suspicious enough to flag only if it has
			// external edges in the graph; skip.
			continue
		}
	}
	return nil
}
