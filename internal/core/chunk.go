package core

// Chunked task fusion: the lower-layer fan-outs (shortcut deduction,
// upload fixpoints, assignment replay) used to dispatch one pool task per
// touched subgraph. Real partitions produce dozens of subgraphs whose
// individual fixpoints are microseconds of work, so task scheduling
// overhead dominated and the parallel lower layer lost to sequential
// execution. Fusing the ID-sorted subgraphs into a handful of
// edge-weight-balanced chunks gives every worker a task fat enough to
// amortize its dispatch.

// subWeight estimates the fixpoint cost of one subgraph task: internal
// edges plus members when a local frame exists, member count otherwise
// (rebuild tasks construct the frame inside the task, so only a member
// count is available up front).
func subWeight(s *Subgraph) int {
	if s.Local != nil {
		if w := s.Local.edges + len(s.Local.ids); w > 0 {
			return w
		}
	}
	if n := len(s.Members); n > 0 {
		return n
	}
	if n := len(s.origMembers); n > 0 {
		return n
	}
	return 1
}

// subgraphChunks packs ID-sorted subgraphs into contiguous chunks weighted
// by subWeight, targeting chunksPerWorker chunks per pool worker (default
// 4, i.e. each chunk carries roughly a quarter of the touched edges per
// thread). Chunk boundaries depend only on the sorted input, the worker
// count and the knob — not on timing — so for a fixed Threads setting the
// grouping, and therefore the fan-out and merge order, is deterministic.
func (l *Layph) subgraphChunks(subs []*Subgraph) [][]*Subgraph {
	if len(subs) == 0 {
		return nil
	}
	workers := l.pool.Size()
	if len(subs) == 1 || workers <= 1 {
		return [][]*Subgraph{subs}
	}
	maxChunks := workers * l.opt.chunksPerWorker()
	if maxChunks > len(subs) {
		maxChunks = len(subs)
	}
	total := 0
	for _, s := range subs {
		total += subWeight(s)
	}
	target := (total + maxChunks - 1) / maxChunks
	if target < 1 {
		target = 1
	}
	out := make([][]*Subgraph, 0, maxChunks)
	start, acc := 0, 0
	for i, s := range subs {
		acc += subWeight(s)
		if acc >= target {
			out = append(out, subs[start:i+1:i+1])
			start, acc = i+1, 0
		}
	}
	if start < len(subs) {
		out = append(out, subs[start:])
	}
	return out
}
