package core

import (
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
)

// layeredUpdate is the first online phase (Section IV-B): bring the layered
// structure in sync with the already-applied batch. It
//
//   - grows the flat ID space for fresh vertices (they join Lup as outliers;
//     memberships are frozen between full rebuilds, as the paper prescribes:
//     "we update the dense subgraphs only when enough ΔG are accumulated"),
//   - rebuilds the structure (roles, proxies, local frames, shortcuts) of
//     every dense subgraph touched by the batch — shortcut deletion,
//     addition and reweighting from the paper collapse into this local
//     recomputation, which is confined to the affected subgraphs,
//   - refreshes the flat out-lists of every source whose edges or weights
//     may have changed, returning the edge-level diff that drives
//     revision-message deduction, and
//   - refreshes the upper-layer skeleton for the dirty vertices.
type layeredDiff struct {
	// oldLists snapshots pre-update flat out-lists of touched sources (the
	// non-idempotent scheme cancels old contributions from them).
	oldLists map[graph.VertexID][]engine.WEdge
	// added/removed are flat-level edge diffs with semiring weights.
	added   []flatEdge
	removed []flatEdge
	// affectedSubs are the subgraphs whose interior changed (rebuilt or
	// incrementally re-shortcut); the upload phase runs local fixpoints on
	// them.
	affectedSubs map[int32]*Subgraph
	// rebuiltSubs is the subset whose structure (roles/proxies) was fully
	// rebuilt; their proxies' memoized values are invalidated.
	rebuiltSubs map[int32]*Subgraph
	// shortcutActivations counts F applications spent maintaining shortcuts.
	shortcutActivations int64
	// parallelSubs counts the subgraph tasks dispatched to the worker pool
	// during shortcut maintenance (rebuilds + incremental updates).
	parallelSubs int64
}

type flatEdge struct {
	from, to graph.VertexID
	w        float64
}

func (l *Layph) layeredUpdate(applied *delta.Applied) *layeredDiff {
	d := &layeredDiff{
		oldLists:     make(map[graph.VertexID][]engine.WEdge),
		affectedSubs: make(map[int32]*Subgraph),
		rebuiltSubs:  make(map[int32]*Subgraph),
	}
	l.growForNewVertices(applied)

	// Pass 1: refresh the flat lists of sources whose out-edges (or, for
	// degree-dependent weights, out-weights) changed: sources of changed
	// edges, removed vertices, added vertices, and the entry proxies that
	// carry a changed cross edge on behalf of their host.
	touched := make(map[graph.VertexID]struct{})
	markTouched := func(v graph.VertexID) {
		if int(v) < l.flatN() {
			touched[v] = struct{}{}
		}
	}
	subOfSafe := func(v graph.VertexID) int32 {
		if int(v) < len(l.subOf) {
			if c := l.subOf[v]; c != NoSubgraph {
				if _, ok := l.subs[c]; ok {
					return c
				}
			}
		}
		return NoSubgraph
	}
	// Entry proxies inherit their host's degree-dependent edge weights, so
	// any change to a host's out-list dirties every entry proxy replicating
	// it — in every subgraph, not just the one the changed edge targets.
	hostProxies := make(map[graph.VertexID][]graph.VertexID)
	for k, p := range l.entryProxy {
		if l.proxyAlive[p] {
			hostProxies[k.host] = append(hostProxies[k.host], p)
		}
	}
	touchSource := func(u graph.VertexID) {
		markTouched(u)
		for _, p := range hostProxies[u] {
			markTouched(p)
		}
	}
	changedEdges := append(append([]graph.DeletedEdge(nil), applied.AddedEdges...), applied.RemovedEdges...)
	for _, e := range changedEdges {
		touchSource(e.From)
		if sv := subOfSafe(e.To); sv != NoSubgraph && subOfSafe(e.From) != sv {
			if p, ok := l.entryProxy[proxyKey{sv, e.From}]; ok && l.proxyAlive[p] {
				markTouched(p)
			}
		}
	}
	for _, v := range applied.RemovedVertices {
		touchSource(v)
	}
	for _, v := range applied.AddedVertices {
		markTouched(v)
	}

	dirtyRoles := make(map[graph.VertexID]struct{})
	refresh := func(v graph.VertexID) {
		old, added, removed := l.refreshFlatVertex(v)
		// Keep the FIRST (true pre-batch) list if v is refreshed twice —
		// rebuilds reroute proxies, forcing a second pass; the sum-scheme
		// corrections must cancel against the pre-batch contributions.
		if _, seen := d.oldLists[v]; !seen {
			d.oldLists[v] = old
		}
		for _, e := range added {
			d.added = append(d.added, flatEdge{from: v, to: e.To, w: e.W})
			dirtyRoles[e.To] = struct{}{}
		}
		for _, e := range removed {
			d.removed = append(d.removed, flatEdge{from: v, to: e.To, w: e.W})
			if int(e.To) < l.flatN() {
				dirtyRoles[e.To] = struct{}{}
			}
		}
		dirtyRoles[v] = struct{}{}
	}
	for v := range touched {
		refresh(v)
	}

	// Decide which dense subgraphs need a structural rebuild. The paper's
	// three shortcut-update cases (deletion, addition, weight update) map to:
	//
	//   - an internal flat edge changed (weight updates included) — the
	//     subgraph's path sums move;
	//   - a member's role flipped (a new external in-edge turns an internal
	//     vertex into an entry whose shortcuts must be deduced; deleting the
	//     last one reverses it) — the absorbing structure moves;
	//   - a replication decision flipped (a host crossed the threshold R);
	//   - a member vertex was removed.
	rebuild := make(map[int32]struct{})
	markRebuild := func(c int32) {
		if c != NoSubgraph {
			if _, ok := l.subs[c]; ok {
				rebuild[c] = struct{}{}
			}
		}
	}
	// Role flips among diff endpoints.
	roleCands := make([]graph.VertexID, 0, len(dirtyRoles))
	oldRoles := make(map[graph.VertexID]Role, len(dirtyRoles))
	for v := range dirtyRoles {
		roleCands = append(roleCands, v)
		oldRoles[v] = l.role[v]
	}
	l.recomputeRoles(roleCands)
	for _, v := range roleCands {
		if l.role[v] != oldRoles[v] {
			markRebuild(subOfSafe(v))
		}
	}

	// Replication-decision flips on changed cross edges.
	r := l.opt.replication()
	for _, e := range changedEdges {
		u, v := e.From, e.To
		su, sv := subOfSafe(u), subOfSafe(v)
		if sv != NoSubgraph && su != sv {
			count := 0
			if l.g.Alive(u) {
				for _, oe := range l.g.Out(u) {
					if subOfSafe(oe.To) == sv {
						count++
					}
				}
			}
			desire := r > 0 && count >= r
			if desire != l.hasProxy(l.entryProxy, sv, u) {
				markRebuild(sv)
			}
		}
		if su != NoSubgraph && su != sv {
			count := 0
			if l.g.Alive(v) {
				for _, ie := range l.g.In(v) {
					if subOfSafe(ie.To) == su {
						count++
					}
				}
			}
			desire := r > 0 && count >= r
			if desire != l.hasProxy(l.exitProxy, su, v) {
				markRebuild(su)
			}
		}
	}
	for _, v := range applied.RemovedVertices {
		markRebuild(subOfSafe(v))
	}

	// Rebuild phase: memberships stay frozen; proxies are re-decided, the
	// local frame and every shortcut of the subgraph are re-deduced.
	for c := range rebuild {
		s := l.subs[c]
		for _, v := range s.Members {
			dirtyRoles[v] = struct{}{}
			markTouched(v)
			if int(v) < l.g.Cap() && l.g.Alive(v) {
				for _, ie := range l.g.In(v) {
					if l.subOf[ie.To] != c {
						markTouched(ie.To)
					}
				}
			}
		}
		for _, p := range s.proxies {
			l.proxyAlive[p] = false
			l.subOf[p] = NoSubgraph
			dirtyRoles[p] = struct{}{}
			markTouched(p)
		}
		s.proxies = s.proxies[:0]

		live := s.origMembers[:0]
		for _, v := range s.origMembers {
			if l.g.Alive(v) {
				live = append(live, v)
			}
		}
		s.origMembers = live
		dec := l.evaluateCommunity(c, s.origMembers)
		if !dec.dense || len(s.origMembers) < 2 {
			for _, v := range s.origMembers {
				l.subOf[v] = NoSubgraph
				dirtyRoles[v] = struct{}{}
				markTouched(v)
			}
			delete(l.subs, c)
			continue
		}
		for _, h := range dec.entryHosts {
			p := l.allocProxy(l.entryProxy, c, h)
			s.proxies = append(s.proxies, p)
			dirtyRoles[p] = struct{}{}
			markTouched(p)
			markTouched(h)
		}
		for _, h := range dec.exitHosts {
			p := l.allocProxy(l.exitProxy, c, h)
			s.proxies = append(s.proxies, p)
			dirtyRoles[p] = struct{}{}
			markTouched(p)
		}
		d.affectedSubs[c] = s
		d.rebuiltSubs[c] = s
	}
	for v := range touched {
		refresh(v)
	}

	roleList := make([]graph.VertexID, 0, len(dirtyRoles))
	for v := range dirtyRoles {
		roleList = append(roleList, v)
	}
	l.recomputeRoles(roleList)

	rebuilt := subgraphList(d.rebuiltSubs)
	d.parallelSubs += int64(len(rebuilt))
	d.shortcutActivations += l.buildSubgraphs(rebuilt)

	// Incremental shortcut maintenance (the paper's Section IV-B weight
	// updates): subgraphs whose internal edges changed without any
	// structural flip absorb the diffs into their memoized per-entry
	// vectors instead of re-deducing from scratch.
	intraAdd := make(map[int32][]flatEdge)
	intraDel := make(map[int32][]flatEdge)
	markIntra := func(m map[int32][]flatEdge, e flatEdge) {
		if c := subOfSafe(e.from); c != NoSubgraph && subOfSafe(e.to) == c {
			if _, full := d.rebuiltSubs[c]; !full {
				m[c] = append(m[c], e)
			}
		}
	}
	for _, e := range d.added {
		markIntra(intraAdd, e)
	}
	for _, e := range d.removed {
		markIntra(intraDel, e)
	}
	for c := range intraAdd {
		if _, ok := intraDel[c]; !ok {
			intraDel[c] = nil
		}
	}
	// Conservative guard: batches that delete vertices fall back to full
	// re-deduction for the intra-changed subgraphs. Vertex deletions ripple
	// through proxy routing in ways the row-level diff above does not fully
	// capture; deletions are rare in the paper's workloads (Figure 5e), so
	// correctness is bought here at negligible average cost.
	//
	// Each subgraph's shortcut maintenance touches only its own frame and
	// memoized vectors (the flat adjacency is frozen by now), so the
	// per-subgraph work fans out over the worker pool.
	forceFull := len(applied.RemovedVertices) > 0
	intraSubs := make([]*Subgraph, 0, len(intraDel))
	for c := range intraDel {
		intraSubs = append(intraSubs, l.subs[c])
	}
	sortSubgraphs(intraSubs)
	d.parallelSubs += int64(len(intraSubs))
	intraActs := make([]int64, len(intraSubs))
	maintain := func(s *Subgraph, parallelEntries bool) int64 {
		if forceFull {
			l.classifyMembers(s)
			l.buildLocalFrame(s)
			return l.deduceShortcutsPar(s, parallelEntries)
		}
		return l.updateShortcutsIncremental(s, intraAdd[s.ID], intraDel[s.ID])
	}
	if len(intraSubs) == 1 {
		// Single subgraph: fan out inside it (per-entry deduction) rather
		// than spending the pool on a one-task outer level.
		intraActs[0] = maintain(intraSubs[0], true)
	} else {
		grp := l.pool.Group()
		for i, s := range intraSubs {
			i, s := i, s
			grp.Go(func() { intraActs[i] = maintain(s, false) })
		}
		grp.Wait()
	}
	for i, s := range intraSubs {
		d.shortcutActivations += intraActs[i]
		d.affectedSubs[s.ID] = s
	}

	upDirty := make(map[graph.VertexID]struct{}, len(dirtyRoles))
	for v := range dirtyRoles {
		upDirty[v] = struct{}{}
	}
	for _, s := range d.affectedSubs {
		for _, u := range s.Entries {
			upDirty[u] = struct{}{}
		}
	}
	for v := range upDirty {
		l.refreshUpVertex(v)
	}
	return d
}

// growForNewVertices extends all flat-space vectors when the graph gained
// vertices. The invariant "original vertex v is flat vertex v" must hold, so
// when fresh original IDs would collide with previously allocated proxy IDs,
// the proxy segment is relocated past the new cap.
func (l *Layph) growForNewVertices(applied *delta.Applied) {
	if len(applied.AddedVertices) == 0 {
		return
	}
	capNow := l.g.Cap()
	if capNow > l.origCap {
		if l.flatN() > l.origCap {
			l.remapProxies(capNow)
		} else {
			for l.flatN() < capNow {
				l.subOf = append(l.subOf, NoSubgraph)
				l.role = append(l.role, RoleDead)
				l.proxyHost = append(l.proxyHost, NoHost)
				l.proxyAlive = append(l.proxyAlive, false)
				l.flatOut = append(l.flatOut, nil)
				l.flatIn = append(l.flatIn, nil)
				l.upOut = append(l.upOut, nil)
				l.upIn = append(l.upIn, nil)
				l.x = append(l.x, l.sr.Zero())
				if l.parent != nil {
					l.parent = append(l.parent, engine.NoParent)
				}
			}
		}
		l.origCap = capNow
	}
	for _, v := range applied.AddedVertices {
		l.subOf[v] = NoSubgraph
		l.role[v] = RoleOutlier
		l.x[v] = l.a.InitState(v)
		if l.parent != nil {
			l.parent[v] = engine.NoParent
		}
	}
}

// remapProxies relocates all proxy vertices to the end of the grown ID
// space. Proxy state (x, parents, adjacency) moves with them.
func (l *Layph) remapProxies(newCap int) {
	oldN := l.flatN()
	numProxies := 0
	remap := make(map[graph.VertexID]graph.VertexID)
	for v := l.origCap; v < oldN; v++ {
		remap[graph.VertexID(v)] = graph.VertexID(newCap + numProxies)
		numProxies++
	}
	if numProxies == 0 {
		return
	}
	mapID := func(v graph.VertexID) graph.VertexID {
		if nv, ok := remap[v]; ok {
			return nv
		}
		return v
	}
	newN := newCap + numProxies
	subOf := make([]int32, newN)
	role := make([]Role, newN)
	proxyHost := make([]graph.VertexID, newN)
	proxyAlive := make([]bool, newN)
	flatOut := make([][]engine.WEdge, newN)
	flatIn := make([][]engine.WEdge, newN)
	upOut := make([][]engine.WEdge, newN)
	upIn := make([][]engine.WEdge, newN)
	x := make([]float64, newN)
	var parent []graph.VertexID
	if l.parent != nil {
		parent = make([]graph.VertexID, newN)
	}
	for i := 0; i < newN; i++ {
		subOf[i] = NoSubgraph
		role[i] = RoleDead
		proxyHost[i] = NoHost
		x[i] = l.sr.Zero()
		if parent != nil {
			parent[i] = engine.NoParent
		}
	}
	moveList := func(list []engine.WEdge) []engine.WEdge {
		out := make([]engine.WEdge, len(list))
		for i, e := range list {
			out[i] = engine.WEdge{To: mapID(e.To), W: e.W}
		}
		return out
	}
	for v := 0; v < oldN; v++ {
		nv := mapID(graph.VertexID(v))
		subOf[nv] = l.subOf[v]
		role[nv] = l.role[v]
		proxyHost[nv] = l.proxyHost[v]
		proxyAlive[nv] = l.proxyAlive[v]
		flatOut[nv] = moveList(l.flatOut[v])
		flatIn[nv] = moveList(l.flatIn[v])
		upOut[nv] = moveList(l.upOut[v])
		upIn[nv] = moveList(l.upIn[v])
		x[nv] = l.x[v]
		if parent != nil {
			p := l.parent[v]
			if p != engine.NoParent {
				p = mapID(p)
			}
			parent[nv] = p
		}
	}
	l.subOf, l.role, l.proxyHost, l.proxyAlive = subOf, role, proxyHost, proxyAlive
	l.flatOut, l.flatIn, l.upOut, l.upIn = flatOut, flatIn, upOut, upIn
	l.x, l.parent = x, parent
	for k, p := range l.entryProxy {
		l.entryProxy[k] = mapID(p)
	}
	for k, p := range l.exitProxy {
		l.exitProxy[k] = mapID(p)
	}
	for _, s := range l.subs {
		for i, p := range s.proxies {
			s.proxies[i] = mapID(p)
		}
		for i, v := range s.Members {
			s.Members[i] = mapID(v)
		}
		for i, v := range s.Entries {
			s.Entries[i] = mapID(v)
		}
		for i, v := range s.Exits {
			s.Exits[i] = mapID(v)
		}
		for i, v := range s.Internal {
			s.Internal[i] = mapID(v)
		}
		if s.Local != nil {
			for i, v := range s.Local.ids {
				s.Local.ids[i] = mapID(v)
			}
			idx := make(map[graph.VertexID]int32, len(s.Local.ids))
			for i, v := range s.Local.ids {
				idx[v] = int32(i)
			}
			s.Local.idx = idx
		}
		remapShortcuts := func(m map[graph.VertexID][]engine.WEdge) map[graph.VertexID][]engine.WEdge {
			out := make(map[graph.VertexID][]engine.WEdge, len(m))
			for u, list := range m {
				out[mapID(u)] = moveList(list)
			}
			return out
		}
		s.ShortToBoundary = remapShortcuts(s.ShortToBoundary)
		s.ShortToInternal = remapShortcuts(s.ShortToInternal)
	}
}
