package core

import (
	"sort"

	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
)

// layeredUpdate is the first online phase (Section IV-B): bring the layered
// structure in sync with the already-applied batch. It
//
//   - grows the flat ID space for fresh vertices (they join Lup as outliers;
//     by default memberships are frozen between full rebuilds, as the paper
//     prescribes: "we update the dense subgraphs only when enough ΔG are
//     accumulated" — with Options.AdaptiveCommunities the adaptMembership
//     phase instead migrates memberships incrementally and forces rebuilds
//     of the drifted subgraphs),
//   - rebuilds the structure (roles, proxies, local frames, shortcuts) of
//     every dense subgraph touched by the batch — shortcut deletion,
//     addition and reweighting from the paper collapse into this local
//     recomputation, which is confined to the affected subgraphs,
//   - refreshes the flat out-lists of every source whose edges or weights
//     may have changed, returning the edge-level diff that drives
//     revision-message deduction, and
//   - refreshes the upper-layer skeleton for the dirty vertices.
type layeredDiff struct {
	// oldSrc/oldRows snapshot pre-update flat out-lists of touched sources
	// in first-touch order (the non-idempotent scheme cancels old
	// contributions from them). Parallel slices, scratch-backed: valid
	// only until the next Update call.
	oldSrc  []graph.VertexID
	oldRows [][]engine.WEdge
	// added/removed are flat-level edge diffs with semiring weights.
	added   []flatEdge
	removed []flatEdge
	// affectedSubs are the subgraphs whose interior changed (rebuilt or
	// incrementally re-shortcut); the upload phase runs local fixpoints on
	// them.
	affectedSubs map[int32]*Subgraph
	// rebuiltSubs is the subset whose structure (roles/proxies) was fully
	// rebuilt; their proxies' memoized values are invalidated.
	rebuiltSubs map[int32]*Subgraph
	// shortcutActivations counts F applications spent maintaining shortcuts.
	shortcutActivations int64
	// membershipMoves counts the vertices the adaptive community adjustment
	// migrated during this update (0 when AdaptiveCommunities is off).
	membershipMoves int64
	// parallelSubs counts the subgraph tasks dispatched to the worker pool
	// during shortcut maintenance (rebuilds + incremental updates).
	parallelSubs int64
}

type flatEdge struct {
	from, to graph.VertexID
	w        float64
}

func (l *Layph) layeredUpdate(applied *delta.Applied) *layeredDiff {
	d := &layeredDiff{
		affectedSubs: make(map[int32]*Subgraph),
		rebuiltSubs:  make(map[int32]*Subgraph),
	}
	l.growForNewVertices(applied)
	sc := &l.scratch
	sc.touched.reset(l.flatN())
	sc.dirtyRoles.reset(l.flatN())
	sc.oldSeen.reset(l.flatN())
	sc.oldRows = sc.oldRows[:0]

	// Adaptive phase: evolve the community partition with the batch and
	// migrate subgraph membership before any flat row is refreshed, so the
	// first refresh pass snapshots true pre-batch routing and the rebuilt
	// rows already reflect the new memberships. Subgraphs whose membership
	// changed are force-rebuilt below.
	var forcedRebuild []int32
	if l.opt.AdaptiveCommunities {
		forcedRebuild, d.membershipMoves = l.adaptMembership(applied)
	}

	// Pass 1: refresh the flat lists of sources whose out-edges (or, for
	// degree-dependent weights, out-weights) changed: sources of changed
	// edges, removed vertices, added vertices, and the entry proxies that
	// carry a changed cross edge on behalf of their host.
	markTouched := func(v graph.VertexID) {
		if int(v) < l.flatN() {
			sc.touched.add(v)
		}
	}
	subOfSafe := func(v graph.VertexID) int32 {
		if int(v) < len(l.subOf) {
			if c := l.subOf[v]; c != NoSubgraph {
				if _, ok := l.subs[c]; ok {
					return c
				}
			}
		}
		return NoSubgraph
	}
	// Entry proxies inherit their host's degree-dependent edge weights, so
	// any change to a host's out-list dirties every entry proxy replicating
	// it — in every subgraph, not just the one the changed edge targets.
	if sc.hostProxies == nil {
		sc.hostProxies = make(map[graph.VertexID][]graph.VertexID)
	}
	clear(sc.hostProxies)
	hostProxies := sc.hostProxies
	for k, p := range l.entryProxy {
		if l.proxyAlive[p] {
			hostProxies[k.host] = append(hostProxies[k.host], p)
		}
	}
	touchSource := func(u graph.VertexID) {
		markTouched(u)
		for _, p := range hostProxies[u] {
			markTouched(p)
		}
	}
	changedEdges := append(append([]graph.DeletedEdge(nil), applied.AddedEdges...), applied.RemovedEdges...)
	for _, e := range changedEdges {
		touchSource(e.From)
		if sv := subOfSafe(e.To); sv != NoSubgraph && subOfSafe(e.From) != sv {
			if p, ok := l.entryProxy[proxyKey{sv, e.From}]; ok && l.proxyAlive[p] {
				markTouched(p)
			}
		}
	}
	for _, v := range applied.RemovedVertices {
		touchSource(v)
	}
	for _, v := range applied.AddedVertices {
		markTouched(v)
	}

	refresh := func(v graph.VertexID) {
		old, added, removed := l.refreshFlatVertex(v)
		// Keep the FIRST (true pre-batch) list if v is refreshed twice —
		// rebuilds reroute proxies, forcing a second pass; the sum-scheme
		// corrections must cancel against the pre-batch contributions.
		if sc.oldSeen.add(v) {
			sc.oldRows = append(sc.oldRows, old)
		}
		for _, e := range added {
			d.added = append(d.added, flatEdge{from: v, to: e.To, w: e.W})
			sc.dirtyRoles.add(e.To)
		}
		for _, e := range removed {
			d.removed = append(d.removed, flatEdge{from: v, to: e.To, w: e.W})
			if int(e.To) < l.flatN() {
				sc.dirtyRoles.add(e.To)
			}
		}
		sc.dirtyRoles.add(v)
	}
	for _, v := range sc.touched.list {
		refresh(v)
	}

	// Decide which dense subgraphs need a structural rebuild. The paper's
	// three shortcut-update cases (deletion, addition, weight update) map to:
	//
	//   - an internal flat edge changed (weight updates included) — the
	//     subgraph's path sums move;
	//   - a member's role flipped (a new external in-edge turns an internal
	//     vertex into an entry whose shortcuts must be deduced; deleting the
	//     last one reverses it) — the absorbing structure moves;
	//   - a replication decision flipped (a host crossed the threshold R);
	//   - a member vertex was removed.
	rebuild := make(map[int32]struct{})
	markRebuild := func(c int32) {
		if c != NoSubgraph {
			if _, ok := l.subs[c]; ok {
				rebuild[c] = struct{}{}
			}
		}
	}
	// Membership drift forces a structural rebuild regardless of role or
	// replication flips (this includes subgraphs freshly promoted by
	// adaptMembership, whose frames don't exist yet).
	for _, c := range forcedRebuild {
		markRebuild(c)
	}
	// Role flips among diff endpoints. roleCands is the current dirtyRoles
	// prefix (capacity-clamped: the set keeps growing below).
	nCands := len(sc.dirtyRoles.list)
	roleCands := sc.dirtyRoles.list[:nCands:nCands]
	sc.oldRoles = sc.oldRoles[:0]
	for _, v := range roleCands {
		sc.oldRoles = append(sc.oldRoles, l.role[v])
	}
	l.recomputeRoles(roleCands)
	for i, v := range roleCands {
		if l.role[v] != sc.oldRoles[i] {
			markRebuild(subOfSafe(v))
		}
	}

	// Replication-decision flips on changed cross edges.
	r := l.opt.replication()
	for _, e := range changedEdges {
		u, v := e.From, e.To
		su, sv := subOfSafe(u), subOfSafe(v)
		if sv != NoSubgraph && su != sv {
			count := 0
			if l.g.Alive(u) {
				for _, oe := range l.g.Out(u) {
					if subOfSafe(oe.To) == sv {
						count++
					}
				}
			}
			desire := r > 0 && count >= r
			if desire != l.hasProxy(l.entryProxy, sv, u) {
				markRebuild(sv)
			}
		}
		if su != NoSubgraph && su != sv {
			count := 0
			if l.g.Alive(v) {
				for _, ie := range l.g.In(v) {
					if subOfSafe(ie.To) == su {
						count++
					}
				}
			}
			desire := r > 0 && count >= r
			if desire != l.hasProxy(l.exitProxy, su, v) {
				markRebuild(su)
			}
		}
	}
	for _, v := range applied.RemovedVertices {
		markRebuild(subOfSafe(v))
	}

	// Rebuild phase: memberships are taken as-is (frozen, or already
	// migrated by adaptMembership); proxies are re-decided, the local frame
	// and every shortcut of the subgraph are re-deduced. Sorted order keeps
	// fresh proxy IDs reproducible between runs.
	rebuildIDs := make([]int32, 0, len(rebuild))
	for c := range rebuild {
		rebuildIDs = append(rebuildIDs, c)
	}
	sort.Slice(rebuildIDs, func(a, b int) bool { return rebuildIDs[a] < rebuildIDs[b] })
	for _, c := range rebuildIDs {
		s := l.subs[c]
		for _, v := range s.Members {
			sc.dirtyRoles.add(v)
			markTouched(v)
			if int(v) < l.g.Cap() && l.g.Alive(v) {
				for _, ie := range l.g.In(v) {
					if l.subOf[ie.To] != c {
						markTouched(ie.To)
					}
				}
			}
		}
		for _, p := range s.proxies {
			l.proxyAlive[p] = false
			l.subOf[p] = NoSubgraph
			sc.dirtyRoles.add(p)
			markTouched(p)
		}
		s.proxies = s.proxies[:0]

		live := s.origMembers[:0]
		for _, v := range s.origMembers {
			if l.g.Alive(v) {
				live = append(live, v)
			}
		}
		s.origMembers = live
		dec := l.evaluateCommunity(c, s.origMembers)
		if !dec.dense || len(s.origMembers) < 2 {
			for _, v := range s.origMembers {
				l.subOf[v] = NoSubgraph
				sc.dirtyRoles.add(v)
				markTouched(v)
			}
			delete(l.subs, c)
			continue
		}
		for _, h := range dec.entryHosts {
			p := l.allocProxy(l.entryProxy, c, h)
			s.proxies = append(s.proxies, p)
			sc.dirtyRoles.add(p)
			markTouched(p)
			markTouched(h)
		}
		for _, h := range dec.exitHosts {
			p := l.allocProxy(l.exitProxy, c, h)
			s.proxies = append(s.proxies, p)
			sc.dirtyRoles.add(p)
			markTouched(p)
		}
		d.affectedSubs[c] = s
		d.rebuiltSubs[c] = s
	}
	for _, v := range sc.touched.list {
		refresh(v)
	}
	d.oldSrc, d.oldRows = sc.oldSeen.list, sc.oldRows

	l.recomputeRoles(sc.dirtyRoles.list)

	rebuildActs, rebuildTasks := l.buildSubgraphs(subgraphList(d.rebuiltSubs))
	d.parallelSubs += rebuildTasks
	d.shortcutActivations += rebuildActs

	// Incremental shortcut maintenance (the paper's Section IV-B weight
	// updates): subgraphs whose internal edges changed without any
	// structural flip absorb the diffs into their memoized per-entry
	// vectors instead of re-deducing from scratch.
	intraAdd := make(map[int32][]flatEdge)
	intraDel := make(map[int32][]flatEdge)
	markIntra := func(m map[int32][]flatEdge, e flatEdge) {
		if c := subOfSafe(e.from); c != NoSubgraph && subOfSafe(e.to) == c {
			if _, full := d.rebuiltSubs[c]; !full {
				m[c] = append(m[c], e)
			}
		}
	}
	for _, e := range d.added {
		markIntra(intraAdd, e)
	}
	for _, e := range d.removed {
		markIntra(intraDel, e)
	}
	for c := range intraAdd {
		if _, ok := intraDel[c]; !ok {
			intraDel[c] = nil
		}
	}
	// Conservative guard: batches that delete vertices fall back to full
	// re-deduction for the intra-changed subgraphs. Vertex deletions ripple
	// through proxy routing in ways the row-level diff above does not fully
	// capture; deletions are rare in the paper's workloads (Figure 5e), so
	// correctness is bought here at negligible average cost.
	//
	// Each subgraph's shortcut maintenance touches only its own frame and
	// memoized vectors (the flat adjacency is frozen by now), so the
	// per-subgraph work fans out over the worker pool.
	forceFull := len(applied.RemovedVertices) > 0
	intraSubs := make([]*Subgraph, 0, len(intraDel))
	for c := range intraDel {
		intraSubs = append(intraSubs, l.subs[c])
	}
	sortSubgraphs(intraSubs)
	maintain := func(s *Subgraph, parallelEntries bool) int64 {
		if forceFull {
			l.classifyMembers(s)
			l.buildLocalFrame(s)
			return l.deduceShortcutsPar(s, parallelEntries)
		}
		return l.updateShortcutsIncremental(s, intraAdd[s.ID], intraDel[s.ID])
	}
	if len(intraSubs) == 1 {
		// Single subgraph: fan out inside it (per-entry deduction) rather
		// than spending the pool on a one-task outer level.
		d.parallelSubs++
		d.shortcutActivations += maintain(intraSubs[0], true)
	} else if len(intraSubs) > 1 {
		chunks := l.subgraphChunks(intraSubs)
		d.parallelSubs += int64(len(chunks))
		intraActs := make([]int64, len(chunks))
		grp := l.pool.Group()
		for i, ch := range chunks {
			i, ch := i, ch
			grp.Go(func() {
				var a int64
				for _, s := range ch {
					a += maintain(s, false)
				}
				intraActs[i] = a
			})
		}
		grp.Wait()
		for _, a := range intraActs {
			d.shortcutActivations += a
		}
	}
	for _, s := range intraSubs {
		d.affectedSubs[s.ID] = s
	}

	sc.upDirty.reset(l.flatN())
	for _, v := range sc.dirtyRoles.list {
		sc.upDirty.add(v)
	}
	for _, s := range subgraphList(d.affectedSubs) {
		for _, u := range s.Entries {
			sc.upDirty.add(u)
		}
	}
	for _, v := range sc.upDirty.list {
		l.refreshUpVertex(v)
	}
	return d
}

// growForNewVertices extends all flat-space vectors when the graph gained
// vertices. The invariant "original vertex v is flat vertex v" must hold, so
// when fresh original IDs would collide with previously allocated proxy IDs,
// the proxy segment is relocated past the new cap.
func (l *Layph) growForNewVertices(applied *delta.Applied) {
	if len(applied.AddedVertices) == 0 {
		return
	}
	capNow := l.g.Cap()
	if capNow > l.origCap {
		if l.flatN() > l.origCap {
			l.remapProxies(capNow)
		} else {
			for l.flatN() < capNow {
				l.subOf = append(l.subOf, NoSubgraph)
				l.role = append(l.role, RoleDead)
				l.proxyHost = append(l.proxyHost, NoHost)
				l.proxyAlive = append(l.proxyAlive, false)
				l.localIdx = append(l.localIdx, -1)
				l.flatOut = append(l.flatOut, nil)
				l.flatIn = append(l.flatIn, nil)
				l.upOut = append(l.upOut, nil)
				l.upIn = append(l.upIn, nil)
				l.x = append(l.x, l.sr.Zero())
				if l.parent != nil {
					l.parent = append(l.parent, engine.NoParent)
				}
			}
		}
		l.origCap = capNow
	}
	for _, v := range applied.AddedVertices {
		l.subOf[v] = NoSubgraph
		l.role[v] = RoleOutlier
		l.x[v] = l.a.InitState(v)
		if l.parent != nil {
			l.parent[v] = engine.NoParent
		}
	}
}

// remapProxies relocates all proxy vertices to the end of the grown ID
// space. Proxy state (x, parents, adjacency) moves with them.
func (l *Layph) remapProxies(newCap int) {
	oldN := l.flatN()
	numProxies := 0
	remap := make(map[graph.VertexID]graph.VertexID)
	for v := l.origCap; v < oldN; v++ {
		remap[graph.VertexID(v)] = graph.VertexID(newCap + numProxies)
		numProxies++
	}
	if numProxies == 0 {
		return
	}
	mapID := func(v graph.VertexID) graph.VertexID {
		if nv, ok := remap[v]; ok {
			return nv
		}
		return v
	}
	newN := newCap + numProxies
	subOf := make([]int32, newN)
	role := make([]Role, newN)
	proxyHost := make([]graph.VertexID, newN)
	proxyAlive := make([]bool, newN)
	flatOut := make([][]engine.WEdge, newN)
	flatIn := make([][]engine.WEdge, newN)
	upOut := make([][]engine.WEdge, newN)
	upIn := make([][]engine.WEdge, newN)
	x := make([]float64, newN)
	var parent []graph.VertexID
	if l.parent != nil {
		parent = make([]graph.VertexID, newN)
	}
	for i := 0; i < newN; i++ {
		subOf[i] = NoSubgraph
		role[i] = RoleDead
		proxyHost[i] = NoHost
		x[i] = l.sr.Zero()
		if parent != nil {
			parent[i] = engine.NoParent
		}
	}
	moveList := func(list []engine.WEdge) []engine.WEdge {
		out := make([]engine.WEdge, len(list))
		for i, e := range list {
			out[i] = engine.WEdge{To: mapID(e.To), W: e.W}
		}
		return out
	}
	for v := 0; v < oldN; v++ {
		nv := mapID(graph.VertexID(v))
		subOf[nv] = l.subOf[v]
		role[nv] = l.role[v]
		proxyHost[nv] = l.proxyHost[v]
		proxyAlive[nv] = l.proxyAlive[v]
		flatOut[nv] = moveList(l.flatOut[v])
		flatIn[nv] = moveList(l.flatIn[v])
		upOut[nv] = moveList(l.upOut[v])
		upIn[nv] = moveList(l.upIn[v])
		x[nv] = l.x[v]
		if parent != nil {
			p := l.parent[v]
			if p != engine.NoParent {
				p = mapID(p)
			}
			parent[nv] = p
		}
	}
	l.subOf, l.role, l.proxyHost, l.proxyAlive = subOf, role, proxyHost, proxyAlive
	l.flatOut, l.flatIn, l.upOut, l.upIn = flatOut, flatIn, upOut, upIn
	l.x, l.parent = x, parent
	l.localIdx = make([]int32, newN)
	for i := range l.localIdx {
		l.localIdx[i] = -1
	}
	for k, p := range l.entryProxy {
		l.entryProxy[k] = mapID(p)
	}
	for k, p := range l.exitProxy {
		l.exitProxy[k] = mapID(p)
	}
	for _, s := range l.subs {
		for i, p := range s.proxies {
			s.proxies[i] = mapID(p)
		}
		for i, v := range s.Members {
			s.Members[i] = mapID(v)
		}
		for i, v := range s.Entries {
			s.Entries[i] = mapID(v)
		}
		for i, v := range s.Exits {
			s.Exits[i] = mapID(v)
		}
		for i, v := range s.Internal {
			s.Internal[i] = mapID(v)
		}
		if s.Local != nil {
			for i, v := range s.Local.ids {
				s.Local.ids[i] = mapID(v)
				l.localIdx[s.Local.ids[i]] = int32(i)
			}
		}
		// Shortcut lists target global flat IDs; their vectors and parents
		// live in compact-ID space and survive the remap untouched.
		for i, list := range s.scToB {
			s.scToB[i] = moveList(list)
		}
		for i, list := range s.scToI {
			s.scToI[i] = moveList(list)
		}
	}
}
