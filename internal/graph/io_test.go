package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(4, 0, 3)
	g.DeleteVertex(3)

	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != g.Cap() || r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: cap=%d V=%d E=%d", r.Cap(), r.NumVertices(), r.NumEdges())
	}
	if r.Alive(3) {
		t.Fatal("dead vertex revived by round trip")
	}
	g.Edges(func(u, v VertexID, w float64) {
		if got, ok := r.HasEdge(u, v); !ok || got != w {
			t.Fatalf("edge (%d,%d,%v) lost in round trip (got %v,%v)", u, v, w, got, ok)
		}
	})
}

func TestReadPlainEdgeList(t *testing.T) {
	in := "0 1\n1 2 3.5\n\n2 0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 1 {
		t.Fatal("default weight not 1")
	}
	if w, ok := g.HasEdge(1, 2); !ok || w != 3.5 {
		t.Fatal("explicit weight lost")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 x\n",
		"# vertices 2\n0 5 1\n",
		"# vertices nope\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty input should yield empty graph")
	}
}

func TestComputeStats(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 0, 1)
	s := ComputeStats(g)
	if s.Vertices != 4 || s.Edges != 4 {
		t.Fatalf("stats V=%d E=%d", s.Vertices, s.Edges)
	}
	if s.MaxOutDegree != 3 || s.MaxInDegree != 1 {
		t.Fatalf("degrees out=%d in=%d", s.MaxOutDegree, s.MaxInDegree)
	}
	if s.AvgDegree != 1 {
		t.Fatalf("avg = %v", s.AvgDegree)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
