package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	for v := VertexID(0); v < 5; v++ {
		if !g.Alive(v) {
			t.Errorf("vertex %d not alive", v)
		}
	}
	if g.Alive(5) {
		t.Error("out-of-range vertex reported alive")
	}
}

func TestAddDeleteEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 1.0)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w, ok := g.HasEdge(0, 1); !ok || w != 2.5 {
		t.Fatalf("HasEdge(0,1) = %v,%v", w, ok)
	}
	// Overwrite keeps edge count and returns previous weight.
	prev, replaced := g.AddEdge(0, 1, 7)
	if !replaced || prev != 2.5 {
		t.Fatalf("overwrite: prev=%v replaced=%v", prev, replaced)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after overwrite = %d, want 2", g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 7 {
		t.Fatalf("weight after overwrite = %v, want 7", w)
	}
	// In-list mirrors the overwrite.
	if len(g.In(1)) != 1 || g.In(1)[0].W != 7 {
		t.Fatalf("in-list not mirrored: %+v", g.In(1))
	}
	w, ok := g.DeleteEdge(0, 1)
	if !ok || w != 7 {
		t.Fatalf("DeleteEdge = %v,%v", w, ok)
	}
	if _, ok := g.DeleteEdge(0, 1); ok {
		t.Fatal("double delete reported ok")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteVertex(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(1, 1, 1) // self loop
	g.AddEdge(3, 1, 1)
	removed := g.DeleteVertex(1)
	if len(removed) != 5 {
		t.Fatalf("removed %d edges, want 5: %+v", len(removed), removed)
	}
	if g.Alive(1) {
		t.Fatal("vertex 1 still alive")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 0 {
		t.Fatalf("V=%d E=%d, want 3,0", g.NumVertices(), g.NumEdges())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := g.DeleteVertex(1); got != nil {
		t.Fatalf("double delete returned edges: %+v", got)
	}
	g.ReviveVertex(1)
	if !g.Alive(1) || g.NumVertices() != 4 {
		t.Fatal("revive failed")
	}
	g.AddEdge(1, 0, 1) // can use revived vertex again
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	id := g.AddVertex()
	if id != 2 {
		t.Fatalf("AddVertex id = %d, want 2", id)
	}
	g.AddEdge(2, 0, 1)
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Fatal("counts wrong after AddVertex")
	}
}

func TestAddEdgeDeadEndpointPanics(t *testing.T) {
	g := New(2)
	g.DeleteVertex(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddEdge(0, 1, 1)
}

func TestClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	c := g.Clone()
	c.AddEdge(2, 0, 3)
	c.DeleteEdge(0, 1)
	if g.NumEdges() != 2 {
		t.Fatal("clone mutation leaked into original")
	}
	if _, ok := g.HasEdge(0, 1); !ok {
		t.Fatal("original lost edge after clone mutation")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesVerticesIteration(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 0, 4)
	g.DeleteVertex(1)
	var vs []VertexID
	g.Vertices(func(v VertexID) { vs = append(vs, v) })
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 2 {
		t.Fatalf("Vertices = %v", vs)
	}
	count := 0
	g.Edges(func(u, v VertexID, w float64) {
		count++
		if u != 2 || v != 0 || w != 4 {
			t.Fatalf("unexpected edge (%d,%d,%v)", u, v, w)
		}
	})
	if count != 1 {
		t.Fatalf("edge count = %d, want 1", count)
	}
}

// Property: a random interleaving of mutations always preserves internal
// consistency, and applying the exact inverse sequence restores the original
// edge set.
func TestRandomMutationConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		type op struct {
			kind int
			u, v VertexID
			w    float64
		}
		var undo []op
		for i := 0; i < 200; i++ {
			u := VertexID(rng.Intn(n))
			v := VertexID(rng.Intn(n))
			switch rng.Intn(3) {
			case 0:
				if g.Alive(u) && g.Alive(v) {
					if _, exists := g.HasEdge(u, v); !exists {
						g.AddEdge(u, v, float64(1+rng.Intn(9)))
						undo = append(undo, op{kind: 1, u: u, v: v})
					}
				}
			case 1:
				if w, ok := g.DeleteEdge(u, v); ok {
					undo = append(undo, op{kind: 0, u: u, v: v, w: w})
				}
			case 2:
				if g.Alive(u) && rng.Intn(10) == 0 {
					removed := g.DeleteVertex(u)
					for _, d := range removed {
						undo = append(undo, op{kind: 0, u: d.From, v: d.To, w: d.W})
					}
					// Replay is in reverse, so the revive must come last here
					// to run before the edge re-adds.
					undo = append(undo, op{kind: 2, u: u})
				}
			}
			if err := g.CheckConsistency(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		for i := len(undo) - 1; i >= 0; i-- {
			o := undo[i]
			switch o.kind {
			case 0:
				g.AddEdge(o.u, o.v, o.w)
			case 1:
				g.DeleteEdge(o.u, o.v)
			case 2:
				g.ReviveVertex(o.u)
			}
		}
		if g.NumEdges() != 0 || g.NumVertices() != n {
			t.Logf("seed %d: undo did not restore empty graph: V=%d E=%d", seed, g.NumVertices(), g.NumEdges())
			return false
		}
		return g.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOutWeightSum(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(0, 2, 2.5)
	if s := g.OutWeightSum(0); s != 4 {
		t.Fatalf("OutWeightSum = %v, want 4", s)
	}
	if s := g.OutWeightSum(1); s != 0 {
		t.Fatalf("OutWeightSum(1) = %v, want 0", s)
	}
}

func TestUndirectedViews(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 3)
	g.AddEdge(2, 1, 5)
	if d := g.UndirectedDegree(1); d != 3 {
		t.Fatalf("UndirectedDegree(1) = %d, want 3", d)
	}
	if w := g.UndirectedWeight(1); w != 10 {
		t.Fatalf("UndirectedWeight(1) = %v, want 10", w)
	}
	seen := map[VertexID]int{}
	g.NeighborsUndirected(1, func(u VertexID, w float64) { seen[u]++ })
	if seen[0] != 2 || seen[2] != 1 {
		t.Fatalf("NeighborsUndirected = %v", seen)
	}
}
