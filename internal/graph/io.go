package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes the graph as "u v w" lines, one per edge, in
// canonical (source-major, then destination) order. Tombstoned vertices that
// lie below Cap() are preserved implicitly: a header line "# vertices N"
// records the ID space so a round trip restores identical IDs.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.Cap()); err != nil {
		return err
	}
	for u := range g.out {
		if !g.alive[u] {
			if _, err := fmt.Fprintf(bw, "# dead %d\n", u); err != nil {
				return err
			}
			continue
		}
		for _, e := range g.out[u] {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, e.To, e.W); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. It also accepts
// plain "u v" (weight defaults to 1) and "u v w" edge lists without a header,
// in which case the vertex count is 1 + the maximum ID seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	type rawEdge struct {
		u, v VertexID
		w    float64
	}
	var pending []rawEdge
	var dead []VertexID
	maxID := VertexID(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			switch {
			case len(fields) == 3 && fields[1] == "vertices":
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("line %d: bad vertex count: %v", lineNo, err)
				}
				g = New(n)
			case len(fields) == 3 && fields[1] == "dead":
				id, err := strconv.ParseUint(fields[2], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad dead id: %v", lineNo, err)
				}
				dead = append(dead, VertexID(id))
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad source: %v", lineNo, err)
		}
		v64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad destination: %v", lineNo, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad weight: %v", lineNo, err)
			}
		}
		e := rawEdge{VertexID(u64), VertexID(v64), w}
		if e.u > maxID {
			maxID = e.u
		}
		if e.v > maxID {
			maxID = e.v
		}
		pending = append(pending, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		n := 0
		if len(pending) > 0 {
			n = int(maxID) + 1
		}
		g = New(n)
	}
	for _, e := range pending {
		if int(e.u) >= g.Cap() || int(e.v) >= g.Cap() {
			return nil, fmt.Errorf("edge (%d,%d) exceeds declared vertex count %d", e.u, e.v, g.Cap())
		}
		g.AddEdge(e.u, e.v, e.w)
	}
	for _, d := range dead {
		if int(d) >= g.Cap() {
			return nil, fmt.Errorf("dead vertex %d exceeds declared vertex count %d", d, g.Cap())
		}
		g.DeleteVertex(d)
	}
	return g, nil
}
