package graph

import "testing"

func csrTestGraph() *Graph {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	g.AddEdge(3, 0, 5)
	g.AddEdge(4, 5, 6)
	g.AddEdge(5, 4, 7)
	return g
}

func TestCSRBuildMatchesLiveRows(t *testing.T) {
	g := csrTestGraph()
	g.EnsureCSR()
	st := g.CSRStats()
	if !st.Built || st.BaseEdges != g.NumEdges() || st.OverlayEdges != 0 || st.DirtyRows != 0 {
		t.Fatalf("unexpected stats after build: %+v", st)
	}
	if st.Builds != 1 || st.Compactions != 0 {
		t.Fatalf("builds=%d compactions=%d", st.Builds, st.Compactions)
	}
	if err := g.CheckCSR(); err != nil {
		t.Fatal(err)
	}
}

func TestCSROverlayServesMutatedRowsLive(t *testing.T) {
	g := csrTestGraph()
	g.EnsureCSR()

	g.AddEdge(1, 3, 9)  // new edge
	g.AddEdge(0, 1, 10) // reweight
	g.DeleteEdge(2, 3)  // delete
	g.DeleteVertex(5)   // tombstone with incident edges
	nv := g.AddVertex() // beyond view cap
	g.AddEdge(nv, 0, 1) // row outside the view
	g.ReviveVertex(5)   // edge-free revival
	if err := g.CheckCSR(); err != nil {
		t.Fatal(err)
	}
	st := g.CSRStats()
	if st.OverlayEdges == 0 || st.DirtyRows == 0 {
		t.Fatalf("mutations not logged: %+v", st)
	}
	if got := g.CSROut(5); len(got) != 0 {
		t.Fatalf("tombstoned-then-revived vertex still has edges via view: %v", got)
	}
	if got := g.CSROut(nv); len(got) != 1 || got[0].To != 0 {
		t.Fatalf("fresh vertex row not served live: %v", got)
	}
}

func TestCSRCompactionTrigger(t *testing.T) {
	g := csrTestGraph()
	g.SetCSRCompactFraction(0.01)
	g.EnsureCSR()

	// Below the floor: EnsureCSR must not rebuild.
	g.AddEdge(1, 4, 1)
	g.EnsureCSR()
	if st := g.CSRStats(); st.Builds != 1 {
		t.Fatalf("compacted below floor: %+v", st)
	}

	// Push the overlay past floor+fraction and check the rebuild clears it.
	for i := 0; i < 2*csrCompactFloor; i++ {
		g.AddEdge(VertexID(i%4), VertexID((i+1)%4), float64(i))
	}
	g.EnsureCSR()
	st := g.CSRStats()
	if st.Compactions != 1 || st.OverlayEdges != 0 || st.DirtyRows != 0 {
		t.Fatalf("compaction did not reset overlay: %+v", st)
	}
	if err := g.CheckCSR(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRCloneDropsView(t *testing.T) {
	g := csrTestGraph()
	g.SetCSRCompactFraction(0.5)
	g.EnsureCSR()
	c := g.Clone()
	if st := c.CSRStats(); st.Built {
		t.Fatalf("clone inherited csr view: %+v", st)
	}
	if c.csrFrac != 0.5 {
		t.Fatalf("clone lost compact-fraction knob: %v", c.csrFrac)
	}
	// Mutating the clone must not disturb the original's view.
	c.AddEdge(0, 3, 1)
	if err := g.CheckCSR(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRSortAdjacencyInvalidates(t *testing.T) {
	g := csrTestGraph()
	g.EnsureCSR()
	g.SortAdjacency()
	if st := g.CSRStats(); st.Built {
		t.Fatal("SortAdjacency left a stale view in place")
	}
	g.EnsureCSR()
	if err := g.CheckCSR(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRReadersWithoutEnsure(t *testing.T) {
	g := csrTestGraph()
	if err := g.CheckCSR(); err != nil { // no view at all: live fallback
		t.Fatal(err)
	}
	if got := g.CSROut(0); len(got) != 2 {
		t.Fatalf("fallback out-row: %v", got)
	}
	if got := g.CSRIn(2); len(got) != 2 {
		t.Fatalf("fallback in-row: %v", got)
	}
}
