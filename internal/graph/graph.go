// Package graph provides the directed, weighted, mutable graph substrate
// shared by every engine in this repository.
//
// The representation is adjacency-list based (both out- and in-lists are
// maintained) because incremental processing needs cheap edge insertion and
// deletion as well as reverse traversal for entry-vertex detection and
// dependency tracking. Vertex identifiers are dense uint32 indices; deleted
// vertices are tombstoned via a liveness bitmap so that identifiers held by
// memoized engine state remain stable across updates.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense indices into the graph's
// internal slices and remain stable for the lifetime of the graph, including
// across vertex deletion (deleted IDs are tombstoned, not recycled).
type VertexID = uint32

// Edge is one directed out-edge (or, in an in-list, the mirrored in-edge).
type Edge struct {
	To VertexID // destination (or source, in an in-list)
	W  float64  // raw edge weight from the input graph
}

// Graph is a directed weighted multigraph-free graph: at most one edge per
// ordered vertex pair. Parallel-edge inserts overwrite the weight, matching
// the paper's model where a weight change is a delete followed by an add.
//
// Graph is not safe for concurrent mutation; engines snapshot or coordinate
// externally. Concurrent reads are safe.
type Graph struct {
	out   [][]Edge
	in    [][]Edge
	alive []bool
	numV  int // live vertices
	numE  int // live edges

	// Compact adjacency view (see csr.go). Lazily built by EnsureCSR and
	// kept coherent by the mutators via a row-granular dirty overlay.
	csr            *csrView
	csrFrac        float64
	csrBuilds      int64
	csrCompactions int64
}

// New returns an empty graph with n live vertices (IDs 0..n-1) and no edges.
func New(n int) *Graph {
	g := &Graph{
		out:   make([][]Edge, n),
		in:    make([][]Edge, n),
		alive: make([]bool, n),
		numV:  n,
	}
	for i := range g.alive {
		g.alive[i] = true
	}
	return g
}

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.numV }

// NumEdges returns the number of live edges.
func (g *Graph) NumEdges() int { return g.numE }

// Cap returns the size of the ID space: every valid VertexID is < Cap().
// Cap never shrinks; deleted vertices keep their slot.
func (g *Graph) Cap() int { return len(g.out) }

// Alive reports whether v is a live vertex.
func (g *Graph) Alive(v VertexID) bool {
	return int(v) < len(g.alive) && g.alive[v]
}

// Out returns the out-edge list of u. The returned slice is owned by the
// graph and must not be mutated or retained across mutations.
func (g *Graph) Out(u VertexID) []Edge { return g.out[u] }

// In returns the in-edge list of v (each Edge.To is the *source* vertex).
// Same ownership rules as Out.
func (g *Graph) In(v VertexID) []Edge { return g.in[v] }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u VertexID) int { return len(g.out[u]) }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.in[v]) }

// OutWeightSum returns the sum of raw weights over u's out-edges.
func (g *Graph) OutWeightSum(u VertexID) float64 {
	var s float64
	for _, e := range g.out[u] {
		s += e.W
	}
	return s
}

// HasEdge reports whether the edge (u,v) exists, and its weight if so.
func (g *Graph) HasEdge(u, v VertexID) (float64, bool) {
	if int(u) >= len(g.out) {
		return 0, false
	}
	for _, e := range g.out[u] {
		if e.To == v {
			return e.W, true
		}
	}
	return 0, false
}

// AddVertex appends a fresh live vertex and returns its ID.
func (g *Graph) AddVertex() VertexID {
	id := VertexID(len(g.out))
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.alive = append(g.alive, true)
	g.numV++
	return id
}

// ReviveVertex marks a tombstoned vertex live again (used when an update
// stream re-adds a previously deleted vertex ID). Reviving a live vertex is a
// no-op.
func (g *Graph) ReviveVertex(v VertexID) {
	if int(v) >= len(g.alive) {
		panic(fmt.Sprintf("graph: revive of out-of-range vertex %d (cap %d)", v, len(g.alive)))
	}
	if !g.alive[v] {
		g.alive[v] = true
		g.numV++
	}
}

// DeleteVertex tombstones v and removes all its incident edges. It returns
// the edges that were removed (out-edges first, then in-edges, excluding a
// self-loop counted once) so callers can deduce revision messages or undo.
func (g *Graph) DeleteVertex(v VertexID) (removed []DeletedEdge) {
	if !g.Alive(v) {
		return nil
	}
	for _, e := range g.out[v] {
		removed = append(removed, DeletedEdge{From: v, To: e.To, W: e.W})
		g.removeIn(e.To, v)
		g.csrLogEdge(v, e.To)
		g.numE--
	}
	g.out[v] = nil
	for _, e := range g.in[v] {
		if e.To == v { // self loop already removed via out pass
			continue
		}
		removed = append(removed, DeletedEdge{From: e.To, To: v, W: e.W})
		g.removeOut(e.To, v)
		g.csrLogEdge(e.To, v)
		g.numE--
	}
	g.in[v] = nil
	g.alive[v] = false
	g.numV--
	return removed
}

// DeletedEdge records one edge removed by DeleteVertex or DeleteEdge.
type DeletedEdge struct {
	From, To VertexID
	W        float64
}

// AddEdge inserts the directed edge (u,v) with weight w. If the edge already
// exists its weight is overwritten and the previous weight is returned with
// replaced=true. Both endpoints must be live.
func (g *Graph) AddEdge(u, v VertexID, w float64) (prev float64, replaced bool) {
	if !g.Alive(u) || !g.Alive(v) {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) with dead endpoint", u, v))
	}
	for i := range g.out[u] {
		if g.out[u][i].To == v {
			prev = g.out[u][i].W
			g.out[u][i].W = w
			for j := range g.in[v] {
				if g.in[v][j].To == u {
					g.in[v][j].W = w
					break
				}
			}
			g.csrLogEdge(u, v)
			return prev, true
		}
	}
	g.out[u] = append(g.out[u], Edge{To: v, W: w})
	g.in[v] = append(g.in[v], Edge{To: u, W: w})
	g.csrLogEdge(u, v)
	g.numE++
	return 0, false
}

// DeleteEdge removes the directed edge (u,v). It returns the removed weight
// and whether the edge existed.
func (g *Graph) DeleteEdge(u, v VertexID) (w float64, ok bool) {
	if int(u) >= len(g.out) {
		return 0, false
	}
	for i := range g.out[u] {
		if g.out[u][i].To == v {
			w = g.out[u][i].W
			g.out[u] = append(g.out[u][:i], g.out[u][i+1:]...)
			g.removeIn(v, u)
			g.csrLogEdge(u, v)
			g.numE--
			return w, true
		}
	}
	return 0, false
}

func (g *Graph) removeIn(v, from VertexID) {
	l := g.in[v]
	for i := range l {
		if l[i].To == from {
			g.in[v] = append(l[:i], l[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("graph: in-list of %d missing mirror of edge from %d", v, from))
}

func (g *Graph) removeOut(u, to VertexID) {
	l := g.out[u]
	for i := range l {
		if l[i].To == to {
			g.out[u] = append(l[:i], l[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("graph: out-list of %d missing edge to %d", u, to))
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		out:   make([][]Edge, len(g.out)),
		in:    make([][]Edge, len(g.in)),
		alive: append([]bool(nil), g.alive...),
		numV:  g.numV,
		numE:  g.numE,
		// The compact view is not cloned (it is a cache); the tuning knob is.
		csrFrac: g.csrFrac,
	}
	for i := range g.out {
		if g.out[i] != nil {
			c.out[i] = append([]Edge(nil), g.out[i]...)
		}
		if g.in[i] != nil {
			c.in[i] = append([]Edge(nil), g.in[i]...)
		}
	}
	return c
}

// Vertices calls f for every live vertex in ascending ID order.
func (g *Graph) Vertices(f func(v VertexID)) {
	for i, a := range g.alive {
		if a {
			f(VertexID(i))
		}
	}
}

// Edges calls f for every live edge, grouped by source in ascending order.
func (g *Graph) Edges(f func(u, v VertexID, w float64)) {
	for u := range g.out {
		if !g.alive[u] {
			continue
		}
		for _, e := range g.out[u] {
			f(VertexID(u), e.To, e.W)
		}
	}
}

// SortAdjacency sorts every adjacency list by destination ID. Generators and
// tests use it to make iteration order canonical; engines do not rely on it.
func (g *Graph) SortAdjacency() {
	g.csr = nil // reordering rows in place would desync the compact view
	for i := range g.out {
		sort.Slice(g.out[i], func(a, b int) bool { return g.out[i][a].To < g.out[i][b].To })
		sort.Slice(g.in[i], func(a, b int) bool { return g.in[i][a].To < g.in[i][b].To })
	}
}

// CheckConsistency validates internal invariants (mirrored in/out lists, live
// counts, no dead endpoints). It is used by tests and returns the first
// violation found.
func (g *Graph) CheckConsistency() error {
	liveV, liveE := 0, 0
	for u := range g.out {
		if g.alive[u] {
			liveV++
		}
		for _, e := range g.out[u] {
			liveE++
			if !g.alive[u] || !g.alive[e.To] {
				return fmt.Errorf("edge (%d,%d) has dead endpoint", u, e.To)
			}
			found := false
			for _, r := range g.in[e.To] {
				if r.To == VertexID(u) && r.W == e.W {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("edge (%d,%d,w=%v) missing from in-list", u, e.To, e.W)
			}
		}
	}
	for v := range g.in {
		for _, r := range g.in[v] {
			if _, ok := g.HasEdge(r.To, VertexID(v)); !ok {
				return fmt.Errorf("in-list of %d references nonexistent edge from %d", v, r.To)
			}
		}
	}
	if liveV != g.numV {
		return fmt.Errorf("live vertex count %d != recorded %d", liveV, g.numV)
	}
	if liveE != g.numE {
		return fmt.Errorf("live edge count %d != recorded %d", liveE, g.numE)
	}
	return nil
}
