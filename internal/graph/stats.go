package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes the structural properties the evaluation reports (Table I
// style rows) and the ones the layered-graph builder cares about.
type Stats struct {
	Vertices     int
	Edges        int
	MaxOutDegree int
	MaxInDegree  int
	AvgDegree    float64
	// DegreeP99 is the 99th-percentile out-degree; web graphs have heavy
	// tails which drive the vertex-replication optimization.
	DegreeP99 int
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	degs := make([]int, 0, g.NumVertices())
	g.Vertices(func(v VertexID) {
		od, id := g.OutDegree(v), g.InDegree(v)
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
		degs = append(degs, od)
	})
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
		sort.Ints(degs)
		s.DegreeP99 = degs[(len(degs)*99)/100]
	}
	return s
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avg-deg=%.2f max-out=%d max-in=%d p99-out=%d",
		s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.DegreeP99)
}

// UndirectedDegree returns the degree of v counting both directions, with
// reciprocal edges counted twice. Community detection works on this view.
func (g *Graph) UndirectedDegree(v VertexID) int {
	return g.OutDegree(v) + g.InDegree(v)
}

// UndirectedWeight returns the total incident weight of v in the undirected
// view (out plus in).
func (g *Graph) UndirectedWeight(v VertexID) float64 {
	var s float64
	for _, e := range g.out[v] {
		s += e.W
	}
	for _, e := range g.in[v] {
		s += e.W
	}
	return s
}

// NeighborsUndirected calls f once per incident edge in either direction
// (u appearing both as in- and out-neighbor triggers two calls).
func (g *Graph) NeighborsUndirected(v VertexID, f func(u VertexID, w float64)) {
	for _, e := range g.out[v] {
		f(e.To, e.W)
	}
	for _, e := range g.in[v] {
		f(e.To, e.W)
	}
}
