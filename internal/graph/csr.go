package graph

// CSR view: a compact, cache-friendly projection of the adjacency lists.
//
// The mutable [][]Edge rows stay the source of truth — incremental engines
// need O(1) edge insertion/deletion — but scans over many vertices (frame
// builds, batch restarts, offline construction) are bandwidth-bound, and
// per-row slice headers scatter the edges across the heap. The CSR view
// packs all out-edges (and, mirrored, all in-edges) into one contiguous
// []Edge array indexed by []int32 offsets, in the style of GraphBolt's flat
// dependency arrays and RisGraph's index-addressed state.
//
// Coherence under streaming updates uses a row-granular edge log overlay:
// every mutation is appended (logically) to the view's overlay — the
// mutated rows are marked dirty and the logged-event count grows. Reads
// through CSROut/CSRIn serve clean rows from the flat arrays and dirty rows
// from the live slices, so the view is always exact without rebuilding.
// EnsureCSR compacts (rebuilds the flat arrays, emptying the overlay) only
// when the log exceeds CompactFraction of the base edge count plus a small
// floor, keeping steady small batches cheap and bounding the fraction of
// reads that fall back to pointer-chasing rows.

// defaultCSRCompactFraction is the overlay-to-base ratio that triggers
// compaction on the next EnsureCSR.
const defaultCSRCompactFraction = 0.25

// csrCompactFloor keeps tiny graphs from compacting on every mutation.
const csrCompactFloor = 64

// csrView holds the flat adjacency arrays plus the overlay bookkeeping.
type csrView struct {
	outOff  []int32
	outEdge []Edge
	inOff   []int32
	inEdge  []Edge
	// cap is the vertex-ID space covered by the flat arrays; rows at or
	// beyond it (vertices added after the build) are always served live.
	cap int
	// baseEdges is the directed edge count at build time; overlay counts
	// edge-log events (adds, deletes, reweights) since then.
	baseEdges int
	overlay   int
	dirtyOut  []bool
	dirtyIn   []bool
	dirtyRows int
}

// CSRStats describes the state of the graph's CSR view.
type CSRStats struct {
	// Built reports whether a flat view exists at all.
	Built bool
	// BaseEdges is the directed edge count captured by the last build;
	// OverlayEdges the edge-log events accumulated since.
	BaseEdges    int
	OverlayEdges int
	// DirtyRows counts adjacency rows currently served from the live
	// slices instead of the flat arrays.
	DirtyRows int
	// Builds counts flat-array (re)builds; Compactions the subset that
	// replaced an existing view because its overlay grew past the
	// threshold.
	Builds      int64
	Compactions int64
}

// CSRStats returns the current view bookkeeping (zero value if EnsureCSR
// was never called).
func (g *Graph) CSRStats() CSRStats {
	s := CSRStats{Builds: g.csrBuilds, Compactions: g.csrCompactions}
	if g.csr == nil {
		return s
	}
	s.Built = true
	s.BaseEdges = g.csr.baseEdges
	s.OverlayEdges = g.csr.overlay
	s.DirtyRows = g.csr.dirtyRows
	return s
}

// SetCSRCompactFraction overrides the overlay-to-base ratio that triggers
// compaction (0 restores the default). Tests use tiny fractions to force
// compaction churn mid-stream.
func (g *Graph) SetCSRCompactFraction(f float64) { g.csrFrac = f }

func (g *Graph) csrCompactThreshold(base int) int {
	f := g.csrFrac
	if f <= 0 {
		f = defaultCSRCompactFraction
	}
	return int(f*float64(base)) + csrCompactFloor
}

// EnsureCSR makes the compact view current: it builds the flat arrays on
// first use and compacts them when the overlay edge log has outgrown the
// threshold. Between compactions the view stays exact — dirty rows are
// served live — so calling EnsureCSR is an optimization, not a correctness
// requirement, for the CSROut/CSRIn readers.
//
// EnsureCSR counts as a mutation for the concurrency contract: callers
// must not run it concurrently with other access to the graph.
func (g *Graph) EnsureCSR() {
	if c := g.csr; c != nil && c.overlay <= g.csrCompactThreshold(c.baseEdges) {
		return
	}
	if g.csr != nil {
		g.csrCompactions++
	}
	g.csrBuilds++
	g.csr = g.buildCSR()
}

func (g *Graph) buildCSR() *csrView {
	n := len(g.out)
	c := &csrView{
		outOff:   make([]int32, n+1),
		inOff:    make([]int32, n+1),
		cap:      n,
		dirtyOut: make([]bool, n),
		dirtyIn:  make([]bool, n),
	}
	outTotal, inTotal := 0, 0
	for v := 0; v < n; v++ {
		outTotal += len(g.out[v])
		inTotal += len(g.in[v])
	}
	c.outEdge = make([]Edge, 0, outTotal)
	c.inEdge = make([]Edge, 0, inTotal)
	for v := 0; v < n; v++ {
		c.outOff[v] = int32(len(c.outEdge))
		c.outEdge = append(c.outEdge, g.out[v]...)
		c.inOff[v] = int32(len(c.inEdge))
		c.inEdge = append(c.inEdge, g.in[v]...)
	}
	c.outOff[n] = int32(len(c.outEdge))
	c.inOff[n] = int32(len(c.inEdge))
	c.baseEdges = outTotal
	return c
}

// CSROut returns u's out-edges through the compact view: the contiguous
// flat segment when the row is clean, the live slice when it is dirty or
// newer than the view. Same ownership rules as Out. Safe without a prior
// EnsureCSR (it falls back to the live rows).
func (g *Graph) CSROut(u VertexID) []Edge {
	if c := g.csr; c != nil && int(u) < c.cap && !c.dirtyOut[u] {
		return c.outEdge[c.outOff[u]:c.outOff[u+1]]
	}
	return g.out[u]
}

// CSRIn returns v's in-edges through the compact view (each Edge.To is the
// source vertex). Same rules as CSROut.
func (g *Graph) CSRIn(v VertexID) []Edge {
	if c := g.csr; c != nil && int(v) < c.cap && !c.dirtyIn[v] {
		return c.inEdge[c.inOff[v]:c.inOff[v+1]]
	}
	return g.in[v]
}

// csrLogEdge records one edge-log event (add, delete or reweight) touching
// u's out-row and v's in-row.
func (g *Graph) csrLogEdge(u, v VertexID) {
	c := g.csr
	if c == nil {
		return
	}
	c.overlay++
	if int(u) < c.cap && !c.dirtyOut[u] {
		c.dirtyOut[u] = true
		c.dirtyRows++
	}
	if int(v) < c.cap && !c.dirtyIn[v] {
		c.dirtyIn[v] = true
		c.dirtyRows++
	}
}

// CheckCSR validates that the compact view agrees edge-for-edge with the
// live adjacency rows for every vertex. Tests and the differential fuzzer
// use it to pin overlay coherence across compactions.
func (g *Graph) CheckCSR() error {
	for v := range g.out {
		if err := edgeListsEqual("out", VertexID(v), g.CSROut(VertexID(v)), g.out[v]); err != nil {
			return err
		}
		if err := edgeListsEqual("in", VertexID(v), g.CSRIn(VertexID(v)), g.in[v]); err != nil {
			return err
		}
	}
	return nil
}

func edgeListsEqual(kind string, v VertexID, got, want []Edge) error {
	if len(got) != len(want) {
		return &csrMismatchError{kind: kind, v: v, got: len(got), want: len(want)}
	}
	for i := range got {
		if got[i] != want[i] {
			return &csrMismatchError{kind: kind, v: v, at: i, got: -1, want: -1}
		}
	}
	return nil
}

type csrMismatchError struct {
	kind      string
	v         VertexID
	at        int
	got, want int
}

func (e *csrMismatchError) Error() string {
	if e.got >= 0 {
		return "graph: csr " + e.kind + "-row length mismatch at vertex " + itoa(int(e.v)) +
			" (view " + itoa(e.got) + ", live " + itoa(e.want) + ")"
	}
	return "graph: csr " + e.kind + "-row of vertex " + itoa(int(e.v)) +
		" differs from live row at index " + itoa(e.at)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
