// Package inc provides the shared machinery of incremental graph
// computation (Section II-B of the paper): memoized state, dependency
// trees for idempotent (min-like) algorithms, and revision-message
// deduction — cancellation messages that retract the effects of invalid
// messages and compensation messages that replay missing ones.
//
// Two incrementalization schemes exist, keyed on the semiring:
//
//   - Idempotent (tropical; SSSP/BFS): min has no inverse, so edge deletions
//     are handled with a dependency tree: every vertex remembers the
//     in-neighbor that determined its state; deleting a dependency edge
//     invalidates the whole downstream subtree, which is reset to 0̄ (the
//     paper's ⊥ cancellation) and recomputed from offers made by its intact
//     in-neighbors. This is the scheme of KickStarter, RisGraph and
//     Ingress's memoization-path engine.
//
//   - Non-idempotent (real; PageRank/PHP): sum has an inverse, so an edge
//     change (u,v): w0→w1 is compensated exactly by the delta message
//     x_old(u)·(w1−w0); no per-edge memoization beyond the converged states
//     is needed. This is Ingress's memoization-free engine.
package inc

import (
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
)

// Stats describes one incremental update run. Activations include the F
// applications spent deducing revision messages, not just those of the
// subsequent iterative propagation, mirroring how the paper counts them.
type Stats struct {
	// Activations is the number of F applications (edge activations).
	Activations int64
	// Rounds is the number of engine propagation rounds.
	Rounds int
	// Resets is the number of vertices invalidated by ⊥ cancellations
	// (idempotent scheme only).
	Resets int
	// Duration is the wall-clock time of the update.
	Duration time.Duration
	// SubgraphsParallel counts the lower-layer pool tasks dispatched to
	// the engine's shared worker pool during the update (upload fixpoints,
	// shortcut maintenance and assignment replays; Layph only). Touched
	// subgraphs are fused into edge-weight-balanced chunks before
	// dispatch, so this counts chunks, not individual subgraphs. It
	// measures the parallelism the batch exposed, independent of how many
	// threads actually ran the tasks.
	SubgraphsParallel int64
	// PoolUtilization is the fraction of worker-pool capacity kept busy
	// over the update's wall-clock time (0..1; 0 for engines without a
	// pool).
	PoolUtilization float64
	// ReplayedBatches counts Update calls that re-applied write-ahead-log
	// tail batches during crash recovery rather than live traffic. In an
	// aggregated record it separates recovery work from serving work.
	ReplayedBatches int64
	// ShardRounds counts the global boundary-exchange rounds of the
	// sharded execution mode (internal/shard only; 0 elsewhere).
	ShardRounds int64
	// BoundaryPins counts cross-shard boundary values exchanged between
	// shard engines (internal/shard only; 0 elsewhere).
	BoundaryPins int64

	// The layering-quality signal (Layph only; the drift controller in
	// internal/stream reads these to decide when the two-layer structure
	// has decayed enough to warrant a background full re-layer).

	// TouchedSubgraphRatio is the fraction of dense subgraphs whose lower
	// layers this update had to enter (0..1). The paper's whole advantage
	// is confinement — a rising ratio means community drift is defeating
	// the layering.
	TouchedSubgraphRatio float64
	// SkeletonFraction is the fraction of live vertices on the upper
	// layer (entries, exits, outliers) after this update (0..1). A fat
	// skeleton means the global iteration phase dominates.
	SkeletonFraction float64
	// ShortcutHitRate is the fraction of shortcut applications during
	// assignment that improved the target state (0..1; idempotent scheme —
	// the non-idempotent scheme applies every above-tolerance delta, so it
	// reports ~1 and the gauge is diagnostic only there).
	ShortcutHitRate float64
	// MembershipMoves counts vertices migrated between communities by the
	// incremental adjustment phase (Options.AdaptiveCommunities only).
	MembershipMoves int64
}

// Add accumulates another update's record into s: counters and durations
// sum, so a zero Stats is the identity. Streaming pipelines use it to
// aggregate per-micro-batch records over a stream's lifetime.
// PoolUtilization, a ratio rather than a counter, combines as the
// duration-weighted mean of the two records.
func (s *Stats) Add(o Stats) {
	if s.Duration+o.Duration > 0 {
		w := func(a, b float64) float64 {
			return (a*float64(s.Duration) + b*float64(o.Duration)) / float64(s.Duration+o.Duration)
		}
		s.PoolUtilization = w(s.PoolUtilization, o.PoolUtilization)
		s.TouchedSubgraphRatio = w(s.TouchedSubgraphRatio, o.TouchedSubgraphRatio)
		s.SkeletonFraction = w(s.SkeletonFraction, o.SkeletonFraction)
		s.ShortcutHitRate = w(s.ShortcutHitRate, o.ShortcutHitRate)
	}
	s.MembershipMoves += o.MembershipMoves
	s.Activations += o.Activations
	s.Rounds += o.Rounds
	s.Resets += o.Resets
	s.SubgraphsParallel += o.SubgraphsParallel
	s.ReplayedBatches += o.ReplayedBatches
	s.ShardRounds += o.ShardRounds
	s.BoundaryPins += o.BoundaryPins
	s.Duration += o.Duration
}

// System is the interface every incremental engine in this repository
// implements (the five baselines and Layph). The lifecycle is: construct on
// a graph (which runs the batch computation once), then repeatedly mutate
// the graph via delta.Apply and pass the Applied record to Update.
type System interface {
	// Name identifies the engine ("ingress", "kickstarter", ...).
	Name() string
	// States returns the current converged states (live view; do not mutate).
	States() []float64
	// Update incrementally adjusts the states to the already-applied batch.
	Update(applied *delta.Applied) Stats
}

// TouchedSources returns the vertices whose out-edge semiring weights may
// have changed: sources of added/removed edges (PageRank-style weights
// depend on the source's degree, so any out-list change invalidates all of
// that source's weights) plus removed vertices.
func TouchedSources(applied *delta.Applied) map[graph.VertexID]struct{} {
	s := make(map[graph.VertexID]struct{})
	for _, e := range applied.AddedEdges {
		s[e.From] = struct{}{}
	}
	for _, e := range applied.RemovedEdges {
		s[e.From] = struct{}{}
	}
	for _, v := range applied.RemovedVertices {
		s[v] = struct{}{}
	}
	return s
}

// GrowVectors extends state/message vectors (and optional parent vectors) to
// n entries, filling new slots with fill (resp. NoParent).
func GrowVectors(x []float64, n int, fill float64) []float64 {
	for len(x) < n {
		x = append(x, fill)
	}
	return x
}

// GrowParents extends a parent vector to n entries filled with NoParent.
func GrowParents(p []graph.VertexID, n int) []graph.VertexID {
	for len(p) < n {
		p = append(p, engine.NoParent)
	}
	return p
}

// RefreshFrame rebuilds the out-lists of the touched source vertices against
// the current graph and returns the previous lists (needed by the
// non-idempotent scheme to cancel old contributions). It also grows the
// frame if the graph gained vertices.
func RefreshFrame(f *engine.Frame, g *graph.Graph, a algo.Algorithm, touched map[graph.VertexID]struct{}) map[graph.VertexID][]engine.WEdge {
	f.Thaw() // flat frames can't swap rows in place
	for len(f.Out) < g.Cap() {
		f.Out = append(f.Out, nil)
	}
	old := make(map[graph.VertexID][]engine.WEdge, len(touched))
	for u := range touched {
		old[u] = f.Out[u]
		if !g.Alive(u) {
			f.Out[u] = nil
			continue
		}
		es := g.Out(u)
		if len(es) == 0 {
			f.Out[u] = nil
			continue
		}
		l := make([]engine.WEdge, len(es))
		for i, e := range es {
			l[i] = engine.WEdge{To: e.To, W: a.EdgeWeight(g, u, e)}
		}
		f.Out[u] = l
	}
	return old
}

// SumDeduction computes the revision messages of the non-idempotent scheme:
// for every touched source u, cancel x_old(u)·w over the old out-list and
// compensate x_old(u)·w over the new out-list; root-message corrections
// cover added vertices. The returned activation count is the number of
// non-zero messages produced.
func SumDeduction(xOld []float64, oldLists map[graph.VertexID][]engine.WEdge,
	f *engine.Frame, a algo.Algorithm, applied *delta.Applied) (pending []float64, activations int64) {
	pending = make([]float64, len(f.Out))
	for u, old := range oldLists {
		xu := 0.0
		if int(u) < len(xOld) {
			xu = xOld[u]
		}
		if xu != 0 {
			for _, e := range old {
				if m := xu * e.W; m != 0 {
					pending[e.To] -= m
					activations++
				}
			}
			for _, e := range f.Out[u] {
				if m := xu * e.W; m != 0 {
					pending[e.To] += m
					activations++
				}
			}
		}
	}
	for _, v := range applied.AddedVertices {
		pending[v] += a.InitMessage(v)
	}
	// A removed vertex's root message was already delivered into the old
	// states via its (now cancelled) out-edges; the residue parked on the
	// vertex itself is cleared by the caller after the run.
	return pending, activations
}

// MinDeduction implements the idempotent scheme's cancellation/compensation:
// it tags the dependency subtrees hanging off deleted/reweighted dependency
// edges and deleted vertices, resets them to 0̄, and computes fresh offers
// for every reset vertex from its intact in-neighbors plus the root message.
//
// x and parent are mutated in place (they are the engine's memoized state).
// The returned pending vector and active list seed engine.Run; activations
// counts the offer computations (F applications during deduction).
type MinDeduction struct {
	Pending []float64
	Active  []graph.VertexID
	// ResetList holds the vertices whose states were invalidated; callers
	// need it to repair dependency parents after the propagation run.
	ResetList   []graph.VertexID
	Activations int64
}

// DeduceMin prepares an incremental min-semiring run. g must already
// reflect the post-batch graph.
func DeduceMin(x []float64, parent []graph.VertexID, g *graph.Graph,
	a algo.Algorithm, applied *delta.Applied) *MinDeduction {
	sr := a.Semiring()
	zero := sr.Zero()
	n := g.Cap()

	// Seed tags: dependency edges that disappeared or changed weight, and
	// removed vertices (their whole dependency subtree is invalid).
	tagged := make([]bool, n)
	var queue []graph.VertexID
	tag := func(v graph.VertexID) {
		if int(v) < n && !tagged[v] {
			tagged[v] = true
			queue = append(queue, v)
		}
	}
	for _, e := range applied.RemovedEdges {
		if int(e.To) < len(parent) && parent[e.To] == e.From {
			tag(e.To)
		}
	}
	for _, v := range applied.RemovedVertices {
		tag(v)
	}

	// Propagate tags down the dependency tree. children is built lazily only
	// when there is something to tag.
	var resets []graph.VertexID
	if len(queue) > 0 {
		children := make(map[graph.VertexID][]graph.VertexID, len(parent))
		for v, p := range parent {
			if p != engine.NoParent {
				children[p] = append(children[p], graph.VertexID(v))
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			resets = append(resets, v)
			for _, c := range children[v] {
				tag(c)
			}
		}
	}

	d := &MinDeduction{Pending: make([]float64, n)}
	for i := range d.Pending {
		d.Pending[i] = zero
	}
	for _, v := range resets {
		x[v] = zero
		parent[v] = engine.NoParent
	}
	d.ResetList = resets

	inActive := make([]bool, n)
	activate := func(v graph.VertexID) {
		if !inActive[v] {
			inActive[v] = true
			d.Active = append(d.Active, v)
		}
	}

	// Fresh offers for reset vertices: intact in-neighbors propose
	// x(u) ⊗ w(u,v); the root message (m0) re-seeds sources.
	for _, v := range resets {
		if !g.Alive(v) {
			continue
		}
		if m0 := a.InitMessage(v); m0 != zero {
			d.Pending[v] = sr.Plus(d.Pending[v], m0)
		}
		for _, ie := range g.In(v) {
			u := ie.To
			if tagged[u] || x[u] == zero {
				continue
			}
			offer := sr.Times(x[u], a.EdgeWeight(g, u, graph.Edge{To: v, W: ie.W}))
			d.Activations++
			if offer != zero {
				d.Pending[v] = sr.Plus(d.Pending[v], offer)
			}
		}
		if d.Pending[v] != zero {
			activate(v)
		}
	}

	// Compensation for added/reweighted edges whose target survived: offer
	// the new candidate directly.
	for _, e := range applied.AddedEdges {
		u, v := e.From, e.To
		if !g.Alive(u) || !g.Alive(v) || tagged[v] {
			continue // reset targets already collected offers above
		}
		if x[u] == zero {
			continue
		}
		offer := sr.Times(x[u], a.EdgeWeight(g, u, graph.Edge{To: v, W: e.W}))
		d.Activations++
		if sr.Plus(x[v], offer) != x[v] {
			d.Pending[v] = sr.Plus(d.Pending[v], offer)
			activate(v)
		}
	}

	// Added vertices start from their algorithm-defined initial state.
	for _, v := range applied.AddedVertices {
		x[v] = a.InitState(v)
		if m0 := a.InitMessage(v); m0 != zero {
			d.Pending[v] = sr.Plus(d.Pending[v], m0)
			activate(v)
		}
	}
	return d
}

// RepairParents recomputes dependency parents for every vertex whose state
// differs between pre and post (plus explicitly listed vertices), by scanning
// in-edges for a witness u with x(u) ⊗ w(u,v) == x(v). It returns the number
// of repaired entries.
func RepairParents(x, pre []float64, extra []graph.VertexID, parent []graph.VertexID,
	g *graph.Graph, a algo.Algorithm) int {
	sr := a.Semiring()
	zero := sr.Zero()
	repair := func(v graph.VertexID) {
		if !g.Alive(v) || x[v] == zero {
			parent[v] = engine.NoParent
			return
		}
		parent[v] = engine.NoParent
		for _, ie := range g.In(v) {
			u := ie.To
			if x[u] == zero {
				continue
			}
			if sr.Times(x[u], a.EdgeWeight(g, u, graph.Edge{To: v, W: ie.W})) == x[v] {
				parent[v] = u
				return
			}
		}
	}
	count := 0
	done := make(map[graph.VertexID]struct{})
	for v := range x {
		if v < len(pre) && x[v] == pre[v] {
			continue
		}
		repair(graph.VertexID(v))
		done[graph.VertexID(v)] = struct{}{}
		count++
	}
	for _, v := range extra {
		if _, ok := done[v]; ok {
			continue
		}
		repair(v)
		count++
	}
	return count
}
