package inc

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
)

func buildDiamond() *graph.Graph {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 1)
	return g
}

func TestTouchedSources(t *testing.T) {
	a := &delta.Applied{
		AddedEdges:      []graph.DeletedEdge{{From: 1, To: 2}},
		RemovedEdges:    []graph.DeletedEdge{{From: 3, To: 4}},
		RemovedVertices: []graph.VertexID{7},
	}
	s := TouchedSources(a)
	for _, v := range []graph.VertexID{1, 3, 7} {
		if _, ok := s[v]; !ok {
			t.Fatalf("missing %d in %v", v, s)
		}
	}
	if _, ok := s[2]; ok {
		t.Fatal("edge targets must not be touched sources")
	}
}

func TestGrowVectors(t *testing.T) {
	x := GrowVectors([]float64{1}, 3, 9)
	if len(x) != 3 || x[1] != 9 || x[2] != 9 || x[0] != 1 {
		t.Fatalf("grow: %v", x)
	}
	p := GrowParents(nil, 2)
	if len(p) != 2 || p[0] != engine.NoParent {
		t.Fatalf("parents: %v", p)
	}
}

func TestRefreshFrame(t *testing.T) {
	g := buildDiamond()
	a := algo.NewSSSP(0)
	f := engine.BuildFrame(g, a)
	g.DeleteEdge(1, 3)
	g.AddEdge(1, 4, 7)
	old := RefreshFrame(f, g, a, map[graph.VertexID]struct{}{1: {}})
	if len(old[1]) != 1 || old[1][0].To != 3 {
		t.Fatalf("old list: %v", old[1])
	}
	if len(f.Out[1]) != 1 || f.Out[1][0].To != 4 || f.Out[1][0].W != 7 {
		t.Fatalf("new list: %v", f.Out[1])
	}
	// Dead vertex loses its list.
	g.DeleteVertex(2)
	RefreshFrame(f, g, a, map[graph.VertexID]struct{}{2: {}})
	if len(f.Out[2]) != 0 {
		t.Fatal("dead vertex keeps frame edges")
	}
}

func TestSumDeduction(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	a := algo.NewPageRank(0.85, 1e-9)
	f := engine.BuildFrame(g, a)
	xOld := []float64{2, 0, 0} // pretend state
	// Delete (0,2): out-degree 2 -> 1, so weight of (0,1) changes too.
	oldLists := map[graph.VertexID][]engine.WEdge{0: f.Row(0)}
	g.DeleteEdge(0, 2)
	RefreshFrame(f, g, a, map[graph.VertexID]struct{}{0: {}})
	applied := &delta.Applied{RemovedEdges: []graph.DeletedEdge{{From: 0, To: 2, W: 1}}}
	pending, acts := SumDeduction(xOld, oldLists, f, a, applied)
	if acts == 0 {
		t.Fatal("no activations counted")
	}
	// Vertex 2 loses x0*0.425; vertex 1 gains x0*(0.85-0.425).
	if math.Abs(pending[2]-(-2*0.425)) > 1e-12 {
		t.Fatalf("pending[2] = %v", pending[2])
	}
	if math.Abs(pending[1]-2*0.425) > 1e-12 {
		t.Fatalf("pending[1] = %v", pending[1])
	}
}

func TestDeduceMinTagsSubtree(t *testing.T) {
	g := buildDiamond()
	a := algo.NewSSSP(0)
	res := engine.RunBatch(g, a, engine.Options{TrackParents: true})
	x, parent := res.X, res.Parent
	// Delete the dependency edge (1,3): 3 and its child 4 must reset.
	g.DeleteEdge(1, 3)
	applied := &delta.Applied{RemovedEdges: []graph.DeletedEdge{{From: 1, To: 3, W: 1}}}
	d := DeduceMin(x, parent, g, a, applied)
	if len(d.ResetList) != 2 {
		t.Fatalf("resets: %v", d.ResetList)
	}
	if !math.IsInf(x[3], 1) || !math.IsInf(x[4], 1) {
		t.Fatalf("states not reset: %v", x)
	}
	// Offer for 3 via the surviving path through 2 (cost 6).
	if d.Pending[3] != 6 {
		t.Fatalf("offer for 3: %v", d.Pending[3])
	}
	if d.Activations == 0 {
		t.Fatal("offer scans not counted")
	}
}

func TestDeduceMinAddedEdgeCandidate(t *testing.T) {
	g := buildDiamond()
	a := algo.NewSSSP(0)
	res := engine.RunBatch(g, a, engine.Options{TrackParents: true})
	x, parent := res.X, res.Parent
	g.AddEdge(0, 4, 1)
	applied := &delta.Applied{AddedEdges: []graph.DeletedEdge{{From: 0, To: 4, W: 1}}}
	d := DeduceMin(x, parent, g, a, applied)
	if d.Pending[4] != 1 {
		t.Fatalf("candidate for 4: %v", d.Pending[4])
	}
	if len(d.Active) != 1 || d.Active[0] != 4 {
		t.Fatalf("active: %v", d.Active)
	}
}

func TestDeduceMinAddedVertex(t *testing.T) {
	g := buildDiamond()
	a := algo.NewSSSP(0)
	res := engine.RunBatch(g, a, engine.Options{TrackParents: true})
	x, parent := res.X, res.Parent
	id := g.AddVertex()
	x = GrowVectors(x, g.Cap(), math.Inf(1))
	parent = GrowParents(parent, g.Cap())
	applied := &delta.Applied{AddedVertices: []graph.VertexID{id}}
	d := DeduceMin(x, parent, g, a, applied)
	if !math.IsInf(x[id], 1) {
		t.Fatalf("new vertex state: %v", x[id])
	}
	if len(d.Active) != 0 {
		t.Fatal("isolated non-source vertex should not activate")
	}
}

func TestRepairParents(t *testing.T) {
	g := buildDiamond()
	a := algo.NewSSSP(0)
	res := engine.RunBatch(g, a, engine.Options{TrackParents: true})
	pre := append([]float64(nil), res.X...)
	// Corrupt parents, change one state, then repair.
	parent := GrowParents(nil, g.Cap())
	x := res.X
	n := RepairParents(x, pre, []graph.VertexID{0, 1, 2, 3, 4}, parent, g, a)
	if n == 0 {
		t.Fatal("nothing repaired")
	}
	if parent[3] != 1 {
		t.Fatalf("parent[3] = %v, want 1", parent[3])
	}
	if parent[0] != engine.NoParent {
		t.Fatalf("source parent = %v", parent[0])
	}
}
