package pool

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestAllTasksRun(t *testing.T) {
	p := New(4)
	var n atomic.Int64
	g := p.Group()
	for i := 0; i < 100; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if st := p.Stats(); st.Tasks != 100 {
		t.Fatalf("Stats.Tasks = %d, want 100", st.Tasks)
	}
}

func TestSizeOneIsSequential(t *testing.T) {
	p := New(1)
	if p.Size() != 1 {
		t.Fatalf("size %d", p.Size())
	}
	// With a size-1 pool every task runs inline in submission order, so a
	// non-atomic slice append is safe and must preserve order.
	var order []int
	g := p.Group()
	for i := 0; i < 50; i++ {
		i := i
		g.Go(func() { order = append(order, i) })
	}
	g.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; size-1 pool not sequential", i, v)
		}
	}
	if st := p.Stats(); st.Inline != 50 {
		t.Fatalf("Stats.Inline = %d, want 50 (all inline)", st.Inline)
	}
}

func TestConcurrencyBound(t *testing.T) {
	const size = 3
	p := New(size)
	var cur, peak atomic.Int64
	g := p.Group()
	for i := 0; i < 64; i++ {
		g.Go(func() {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
		})
	}
	g.Wait()
	if pk := peak.Load(); pk > size {
		t.Fatalf("observed %d concurrent tasks, bound is %d", pk, size)
	}
}

func TestNestedGroupsDoNotDeadlock(t *testing.T) {
	p := New(2)
	var n atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		outer := p.Group()
		for i := 0; i < 8; i++ {
			outer.Go(func() {
				inner := p.Group()
				for j := 0; j < 8; j++ {
					inner.Go(func() { n.Add(1) })
				}
				inner.Wait()
			})
		}
		outer.Wait()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested groups deadlocked")
	}
	if n.Load() != 64 {
		t.Fatalf("ran %d inner tasks, want 64", n.Load())
	}
}

func TestForEachAndChunks(t *testing.T) {
	p := New(4)
	hit := make([]int32, 1000)
	p.ForEach(len(hit), func(i int) { atomic.AddInt32(&hit[i], 1) })
	p.ForEachChunk(len(hit), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i, h := range hit {
		if h != 2 {
			t.Fatalf("index %d visited %d times, want 2", i, h)
		}
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization(Stats{}, Stats{Busy: time.Second}, time.Second, 2); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := Utilization(Stats{}, Stats{Busy: 10 * time.Second}, time.Second, 2); u != 1 {
		t.Fatalf("utilization not clamped: %v", u)
	}
	if u := Utilization(Stats{}, Stats{}, 0, 2); u != 0 {
		t.Fatalf("zero wall: %v", u)
	}
}
