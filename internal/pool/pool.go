// Package pool provides the shared bounded worker pool behind Layph's
// two-level parallelism: one pool per engine instance, sized by
// Config.Threads, shared by every parallel phase (subgraph-local upload
// fixpoints, shortcut deduction fan-outs, assignment replay, parent
// repair). The lower-layer subgraphs touched by an update batch are
// independent by construction — disjoint member sets, disjoint state
// writes — so each subgraph-local refinement is an isolated task.
//
// A Pool of size k allows at most k tasks to execute concurrently: up to
// k-1 on pool-owned goroutines plus the submitting goroutine itself,
// which runs a task inline whenever the pool is saturated. Running in
// the caller when no slot is free makes nested fan-outs (a subgraph
// rebuild task fanning out per-entry deduction tasks) deadlock-free by
// construction, and makes a size-1 pool strictly sequential — tasks run
// inline in submission order, which is the determinism baseline the
// differential tests compare against.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a shared bounded concurrency limiter with execution counters.
// All methods are safe for concurrent use.
type Pool struct {
	size int
	sem  chan struct{}

	tasks  atomic.Int64
	inline atomic.Int64
	busyNS atomic.Int64
}

// New returns a pool of the given size (0 or negative = GOMAXPROCS).
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size, sem: make(chan struct{}, size-1)}
}

// Size returns the pool's concurrency bound.
func (p *Pool) Size() int { return p.size }

// Stats is a monotone snapshot of pool counters; differences between two
// snapshots describe the work executed in between.
type Stats struct {
	// Tasks counts executed tasks (pool goroutines and inline runs).
	Tasks int64
	// Inline is the subset of Tasks that ran in the submitting goroutine
	// because the pool was saturated.
	Inline int64
	// Busy is the cumulative task execution time across all workers. Each
	// task's span covers its whole body, so a task that itself submits to
	// a nested Group and blocks in Wait would have its children's time
	// counted twice; for Busy (and Utilization) to be exact, keep
	// fan-outs single-level — nested Groups remain safe and
	// deadlock-free, they only blur this accounting.
	Busy time.Duration
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Tasks:  p.tasks.Load(),
		Inline: p.inline.Load(),
		Busy:   time.Duration(p.busyNS.Load()),
	}
}

// Utilization reports the fraction of pool capacity kept busy between
// two snapshots taken wall apart: busy-time delta over wall * size,
// clamped to [0, 1].
func Utilization(before, after Stats, wall time.Duration, size int) float64 {
	if wall <= 0 || size <= 0 {
		return 0
	}
	u := float64(after.Busy-before.Busy) / (float64(wall) * float64(size))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func (p *Pool) run(fn func()) {
	start := time.Now()
	fn()
	p.busyNS.Add(int64(time.Since(start)))
	p.tasks.Add(1)
}

// Group is a fork-join scope over the pool: Go submits tasks, Wait
// blocks until every submitted task has finished. A Group must not be
// reused after Wait returns while Go calls are still possible from other
// goroutines; the intended pattern is submit-all-then-wait from one
// goroutine (tasks themselves may open nested Groups).
type Group struct {
	p  *Pool
	wg sync.WaitGroup
}

// Group returns a new fork-join scope.
func (p *Pool) Group() *Group { return &Group{p: p} }

// Go runs fn on a pool worker when a slot is free, otherwise inline in
// the calling goroutine (bounding total concurrency at the pool size and
// making saturated and size-1 pools sequential).
func (g *Group) Go(fn func()) {
	select {
	case g.p.sem <- struct{}{}:
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			defer func() { <-g.p.sem }()
			g.p.run(fn)
		}()
	default:
		g.p.inline.Add(1)
		g.p.run(fn)
	}
}

// Wait blocks until all tasks submitted via Go have completed.
func (g *Group) Wait() { g.wg.Wait() }

// ForEach runs fn(i) for every i in [0, n) with pool-bounded parallelism
// and returns once all calls have completed. Iteration order across
// workers is unspecified; callers must make iterations independent.
func (p *Pool) ForEach(n int, fn func(i int)) {
	g := p.Group()
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() { fn(i) })
	}
	g.Wait()
}

// ForEachChunk splits [0, n) into contiguous chunks of at most chunk
// elements and runs fn(lo, hi) per chunk with pool-bounded parallelism —
// the right shape for cheap per-element work like dependency-parent
// repair, where per-element tasks would drown in scheduling overhead.
func (p *Pool) ForEachChunk(n, chunk int, fn func(lo, hi int)) {
	if chunk <= 0 {
		chunk = 1
	}
	g := p.Group()
	for lo := 0; lo < n; lo += chunk {
		lo := lo
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		g.Go(func() { fn(lo, hi) })
	}
	g.Wait()
}
