package gen

import (
	"testing"

	"layph/internal/graph"
)

func TestCommunityGraphDeterministic(t *testing.T) {
	cfg := CommunityConfig{Vertices: 500, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.3, Seed: 42, Weighted: true}
	g1, c1 := CommunityGraph(cfg)
	g2, c2 := CommunityGraph(cfg)
	if g1.NumEdges() != g2.NumEdges() || g1.NumVertices() != g2.NumVertices() {
		t.Fatalf("nondeterministic sizes: %d/%d vs %d/%d", g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	}
	g1.Edges(func(u, v graph.VertexID, w float64) {
		if got, ok := g2.HasEdge(u, v); !ok || got != w {
			t.Fatalf("edge (%d,%d,%v) differs across runs", u, v, w)
		}
	})
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("community assignment differs at %d", i)
		}
	}
}

func TestCommunityGraphStructure(t *testing.T) {
	g, comm := CommunityGraph(CommunityConfig{Vertices: 1000, MeanCommunity: 30, IntraDegree: 8, InterDegree: 0.2, Seed: 7})
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	intra, inter := 0, 0
	g.Edges(func(u, v graph.VertexID, w float64) {
		if comm[u] == comm[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra == 0 || inter == 0 {
		t.Fatalf("degenerate mix: intra=%d inter=%d", intra, inter)
	}
	if intra < 5*inter {
		t.Fatalf("communities not dense: intra=%d inter=%d", intra, inter)
	}
	// Every planted community is weakly connected via the generator's ring.
	for i := 1; i < len(comm); i++ {
		if comm[i] < comm[i-1] {
			t.Fatal("community ids not contiguous-ascending")
		}
	}
}

func TestCommunityGraphUnweighted(t *testing.T) {
	g, _ := CommunityGraph(CommunityConfig{Vertices: 200, MeanCommunity: 20, IntraDegree: 4, InterDegree: 0.2, Seed: 3})
	g.Edges(func(u, v graph.VertexID, w float64) {
		if w != 1 {
			t.Fatalf("unweighted graph has weight %v", w)
		}
	})
}

func TestRMAT(t *testing.T) {
	g := RMAT(RMATConfig{Scale: 10, EdgeFac: 8, Seed: 1})
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() < 1024 { // duplicates and self-loops discarded, but most survive
		t.Fatalf("E = %d, too few", g.NumEdges())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.MaxOutDegree < 20 {
		t.Fatalf("RMAT should be heavy-tailed, max out-degree %d", s.MaxOutDegree)
	}
}

func TestPresets(t *testing.T) {
	for _, p := range AllPresets {
		g := Build(p, 0.02)
		if g.NumVertices() < 64 {
			t.Fatalf("%s: too small (%d)", p, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", p)
		}
		if err := g.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestPresetScaleFloor(t *testing.T) {
	g := Build(PresetUK, 0.00001)
	if g.NumVertices() < 64 {
		t.Fatalf("scale floor not applied: %d", g.NumVertices())
	}
}

func TestUnknownPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PresetConfig(Preset("nope"), 1)
}
