// Package gen provides deterministic synthetic graph generators used as
// stand-ins for the paper's datasets (UK-2005, IT-2004, SK-2005, Sinaweibo).
//
// The generators are seeded and reproducible: the same parameters and seed
// always produce the identical graph, which makes the benchmark harness and
// the EXPERIMENTS.md numbers repeatable.
//
// The structural property that matters for Layph is the community structure:
// web graphs consist of many small dense subgraphs (sites) with sparse
// cross-links, while social networks have fewer, much larger and less clearly
// separated communities. CommunityGraph models both regimes directly; RMAT is
// provided as a community-free adversarial workload.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"layph/internal/graph"
)

// CommunityConfig parameterizes CommunityGraph.
type CommunityConfig struct {
	Vertices int // total vertex count
	// MeanCommunity is the expected community size; sizes are drawn from a
	// truncated power law so a few communities are much larger than the mean.
	MeanCommunity int
	// MaxCommunity caps community size (0 = 4 * MeanCommunity).
	MaxCommunity int
	// IntraDegree is the expected number of intra-community out-edges per
	// vertex; InterDegree the expected cross-community out-edges.
	IntraDegree float64
	InterDegree float64
	// HubFraction of vertices get an extra power-law fan-out across the whole
	// graph, modelling web hubs / social celebrities.
	HubFraction float64
	// HubDegree is the mean extra degree of a hub.
	HubDegree float64
	// Weighted assigns uniform random weights in [1,10); otherwise all
	// weights are 1.
	Weighted bool
	Seed     int64
}

// CommunityGraph generates a directed graph with planted dense communities.
// It also returns the planted community assignment (vertex -> community id),
// which tests use as ground truth for the community-detection substrate.
func CommunityGraph(cfg CommunityConfig) (*graph.Graph, []int) {
	if cfg.Vertices <= 0 {
		panic("gen: Vertices must be positive")
	}
	if cfg.MeanCommunity <= 1 {
		cfg.MeanCommunity = 16
	}
	if cfg.MaxCommunity == 0 {
		cfg.MaxCommunity = 4 * cfg.MeanCommunity
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(cfg.Vertices)
	comm := make([]int, cfg.Vertices)

	// Carve the vertex range into contiguous communities with power-law sizes.
	type span struct{ lo, hi int } // [lo,hi)
	var spans []span
	for at, id := 0, 0; at < cfg.Vertices; id++ {
		size := powerLawSize(rng, cfg.MeanCommunity, cfg.MaxCommunity)
		if at+size > cfg.Vertices {
			size = cfg.Vertices - at
		}
		for i := at; i < at+size; i++ {
			comm[i] = id
		}
		spans = append(spans, span{at, at + size})
		at += size
	}

	weight := func() float64 {
		if cfg.Weighted {
			return 1 + 9*rng.Float64()
		}
		return 1
	}
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		if _, exists := g.HasEdge(graph.VertexID(u), graph.VertexID(v)); exists {
			return
		}
		g.AddEdge(graph.VertexID(u), graph.VertexID(v), weight())
	}

	for _, sp := range spans {
		size := sp.hi - sp.lo
		if size == 1 {
			continue
		}
		// A ring guarantees weak connectivity inside the community, then
		// random chords densify it up to the target intra degree.
		for i := sp.lo; i < sp.hi; i++ {
			addEdge(i, sp.lo+(i-sp.lo+1)%size)
		}
		extra := int(cfg.IntraDegree*float64(size)) - size
		for e := 0; e < extra; e++ {
			addEdge(sp.lo+rng.Intn(size), sp.lo+rng.Intn(size))
		}
	}

	// Sparse cross-community edges.
	inter := int(cfg.InterDegree * float64(cfg.Vertices))
	for e := 0; e < inter; e++ {
		u := rng.Intn(cfg.Vertices)
		v := rng.Intn(cfg.Vertices)
		if comm[u] == comm[v] {
			continue
		}
		addEdge(u, v)
	}

	// Hubs: high-degree vertices spraying edges across many communities; these
	// are the vertices the replication optimization targets.
	hubs := int(cfg.HubFraction * float64(cfg.Vertices))
	for h := 0; h < hubs; h++ {
		u := rng.Intn(cfg.Vertices)
		fan := 1 + int(rng.ExpFloat64()*cfg.HubDegree)
		for k := 0; k < fan; k++ {
			v := rng.Intn(cfg.Vertices)
			if rng.Intn(2) == 0 {
				addEdge(u, v)
			} else {
				addEdge(v, u)
			}
		}
	}
	g.SortAdjacency()
	return g, comm
}

func powerLawSize(rng *rand.Rand, mean, max int) int {
	// Pareto with alpha tuned so the mean is roughly `mean`; truncated at max.
	alpha := 2.5
	xm := float64(mean) * (alpha - 2) / (alpha - 1) * 2
	if xm < 2 {
		xm = 2
	}
	s := xm / math.Pow(rng.Float64(), 1/alpha)
	if s > float64(max) {
		s = float64(max)
	}
	if s < 2 {
		s = 2
	}
	return int(s)
}

// RMATConfig parameterizes RMAT.
type RMATConfig struct {
	Scale    int // 2^Scale vertices
	EdgeFac  int // edges = EdgeFac * vertices
	A, B, C  float64
	Weighted bool
	Seed     int64
}

// RMAT generates a recursive-matrix power-law graph (Chakrabarti et al.).
// It has heavy-tailed degrees but no planted community structure, making it
// the adversarial case for skeleton extraction.
func RMAT(cfg RMATConfig) *graph.Graph {
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	n := 1 << cfg.Scale
	m := cfg.EdgeFac * n
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(n)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < cfg.A:
			case r < cfg.A+cfg.B:
				v |= bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		if u == v {
			continue
		}
		w := 1.0
		if cfg.Weighted {
			w = 1 + 9*rng.Float64()
		}
		g.AddEdge(graph.VertexID(u), graph.VertexID(v), w)
	}
	g.SortAdjacency()
	return g
}

// Preset names one of the scaled dataset stand-ins from Table I.
type Preset string

// Presets mirror Table I of the paper at laptop scale. UK/IT/SK are web-graph
// regimes (many small dense communities — Layph's best case); WB is the
// social-network regime with much larger communities (the paper's noted
// weakest case for Layph).
const (
	PresetUK Preset = "UK" // UK-2005 stand-in
	PresetIT Preset = "IT" // IT-2004 stand-in
	PresetSK Preset = "SK" // SK-2005 stand-in
	PresetWB Preset = "WB" // Sinaweibo stand-in
)

// AllPresets lists the presets in the paper's Table I order.
var AllPresets = []Preset{PresetUK, PresetIT, PresetSK, PresetWB}

// PresetConfig returns the generator configuration backing a preset at the
// given scale factor (1.0 = the default bench scale; tests use smaller).
func PresetConfig(p Preset, scale float64) CommunityConfig {
	base := func(v, mean int, intra, inter, hubFrac, hubDeg float64, seed int64) CommunityConfig {
		n := int(float64(v) * scale)
		if n < 64 {
			n = 64
		}
		return CommunityConfig{
			Vertices:      n,
			MeanCommunity: mean,
			IntraDegree:   intra,
			InterDegree:   inter,
			HubFraction:   hubFrac,
			HubDegree:     hubDeg,
			Weighted:      true,
			Seed:          seed,
		}
	}
	switch p {
	case PresetUK:
		return base(60000, 40, 10, 0.25, 0.004, 30, 2005)
	case PresetIT:
		return base(64000, 48, 11, 0.25, 0.004, 32, 2004)
	case PresetSK:
		return base(72000, 56, 14, 0.22, 0.005, 36, 1005)
	case PresetWB:
		// Social network: far larger, looser communities, more hubs, lower
		// intra density relative to boundary size.
		c := base(48000, 800, 4.0, 0.9, 0.02, 60, 58)
		c.MaxCommunity = 4000
		return c
	default:
		panic(fmt.Sprintf("gen: unknown preset %q", p))
	}
}

// Build generates the preset graph.
func Build(p Preset, scale float64) *graph.Graph {
	g, _ := CommunityGraph(PresetConfig(p, scale))
	return g
}
