package bench

// Drift scenario: a long community-migration churn stream (every batch
// rewires a vertex cluster into a different community neighborhood) replayed
// through three configurations of the same Layph engine — frozen layering,
// incremental adaptive migration, and adaptive + the stream relayer (the
// background full re-layer drift controller). The per-window trends show
// the layering-drift bug and its fix: under a frozen layering the skeleton
// fraction climbs monotonically toward 1.0 (every migrated vertex is
// evicted to the skeleton and never re-absorbed) until the engine
// degenerates into a flat unlayered one, while the relayer-backed pipeline
// holds latency flat and repeatedly restores the skeleton to its fresh
// compression at each atomic swap.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/stream"
)

// DriftJSONPath is where DriftExperiment drops its machine-readable record
// (relative to the working directory).
const DriftJSONPath = "BENCH_drift.json"

// DriftWindow aggregates one measurement window of consecutive batches.
type DriftWindow struct {
	Window          int     `json:"window"`
	Batches         int     `json:"batches"`
	MeanUpdateMs    float64 `json:"mean_update_ms"`
	MeanTouchedRate float64 `json:"mean_touched_ratio"`
	// SkeletonFraction is the raw gauge at the window's last batch.
	SkeletonFraction float64 `json:"skeleton_fraction"`
	// FullRelayers is cumulative at the window's last batch (relayer mode).
	FullRelayers int64 `json:"full_relayers,omitempty"`
}

// DriftMode is one configuration's trend over the full churn stream.
type DriftMode struct {
	Mode               string        `json:"mode"`
	TotalUpdateSeconds float64       `json:"total_update_seconds"`
	MembershipMoves    int64         `json:"membership_moves,omitempty"`
	FullRelayers       int64         `json:"full_relayers,omitempty"`
	Windows            []DriftWindow `json:"windows"`
}

// DriftReport is the BENCH_drift.json payload. Capped is set when the
// requested thread count oversubscribes the cores (the capture then
// measures time-sharing, not parallel latency) — same honesty convention
// as ParallelReport/ShardReport.
type DriftReport struct {
	Graph           string      `json:"graph"`
	Algo            string      `json:"algo"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	Threads         int         `json:"threads"`
	Vertices        int         `json:"vertices"`
	TotalBatches    int         `json:"total_batches"`
	MigrationSize   int         `json:"migration_size"`
	MigrationRewire int         `json:"migration_rewire"`
	EdgeChurn       int         `json:"edge_churn"`
	Capped          bool        `json:"capped,omitempty"`
	Note            string      `json:"note,omitempty"`
	Modes           []DriftMode `json:"modes"`
}

// driftBatches pre-generates the churn stream once: each batch rewires a
// vertex cluster into a different community plus background edge churn,
// generated against an evolving driver clone so every mode replays the
// identical logical stream.
func driftBatches(base *graph.Graph, total, migSize, migRewire, edgeChurn int, seed int64) []delta.Batch {
	driver := base.Clone()
	genr := delta.NewGenerator(seed)
	out := make([]delta.Batch, 0, total)
	for i := 0; i < total; i++ {
		b := genr.MigrationBatch(driver, migSize, migRewire, true)
		b = append(b, genr.EdgeBatch(driver, edgeChurn, true)...)
		delta.Apply(driver, b)
		out = append(out, b)
	}
	return out
}

// RunDrift measures the three configurations over the same churn stream.
func RunDrift(o Options) DriftReport {
	o = o.normalize()
	vertices := int(16000 * o.Scale)
	if vertices < 500 {
		vertices = 500
	}
	totalBatches := 48 * o.Batches
	windows := 8
	if totalBatches < windows {
		windows = totalBatches
	}
	const (
		migSize   = 15
		migRewire = 10
		edgeChurn = 20
	)

	mkGraph := func() *graph.Graph {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices:      vertices,
			// Tight communities under the MaxSize=64 floor with a thin
			// boundary: the skeleton compresses to ~25% of vertices, so
			// layering drift (boundary eviction pushing that toward 100%)
			// is measurable rather than lost in boundary noise.
			MeanCommunity: 40,
			IntraDegree:   10,
			InterDegree:   0.05,
			HubFraction:   0.002,
			HubDegree:     12,
			Weighted:      true,
			Seed:          o.Seed,
		})
		return g
	}
	batches := driftBatches(mkGraph(), totalBatches, migSize, migRewire, edgeChurn, o.Seed+1)

	rep := DriftReport{
		Graph:           fmt.Sprintf("community-%d", vertices),
		Algo:            "SSSP",
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Threads:         o.Threads,
		Vertices:        vertices,
		TotalBatches:    totalBatches,
		MigrationSize:   migSize,
		MigrationRewire: migRewire,
		EdgeChurn:       edgeChurn,
	}
	rep.Note = "frozen mean_update_ms DECLINES as drift degenerates the engine into a flat unlayered one (cheap per update, but skeleton_fraction -> 1.0 means the layered machinery is dead weight); relayer windows containing a swap absorb the amortized full-rebuild cost, which dominates at this vertex count — the claim under test is that the relayer trend is flat and its skeleton_fraction recovers at each swap, not that it wins raw ms on a small graph"
	if o.Threads > rep.GOMAXPROCS {
		rep.Capped = true
		rep.Note = fmt.Sprintf("capped: threads=%d > GOMAXPROCS=%d; workers time-share the cores, so latencies measure scheduling overhead on top of the drift trend; ", o.Threads, rep.GOMAXPROCS) + rep.Note
	}

	winOf := func(b int) int { return b * windows / totalBatches }

	// Direct-drive modes: frozen layering and incremental adaptive
	// migration, per-batch stats straight from Update.
	direct := func(mode string, adaptive bool) DriftMode {
		g := mkGraph()
		l := core.New(g, algo.NewSSSP(0), core.Options{Workers: o.Threads, AdaptiveCommunities: adaptive})
		res := DriftMode{Mode: mode, Windows: make([]DriftWindow, windows)}
		for i, b := range batches {
			st := l.Update(delta.Apply(g, b))
			w := &res.Windows[winOf(i)]
			w.Batches++
			w.MeanUpdateMs += st.Duration.Seconds() * 1e3
			w.MeanTouchedRate += st.TouchedSubgraphRatio
			w.SkeletonFraction = st.SkeletonFraction
			res.TotalUpdateSeconds += st.Duration.Seconds()
			res.MembershipMoves += st.MembershipMoves
		}
		finishDriftWindows(&res)
		return res
	}

	// Stream-drive mode: adaptive engine behind the micro-batching pipeline
	// with the relayer; per-batch wall time includes replay and the
	// deterministic swap boundary, which is what a serving deployment pays.
	relayer := func() DriftMode {
		g := mkGraph()
		build := func(g2 *graph.Graph) inc.System {
			return core.New(g2, algo.NewSSSP(0), core.Options{Workers: o.Threads, AdaptiveCommunities: true})
		}
		st := stream.New(g, build(g), stream.Config{
			MaxBatch: 1 << 20, MaxDelay: -1,
			// Thresholds sit above the workload's steady-state noise
			// (touched EWMA idles near 0.45) so triggers come from the
			// skeleton-growth signal — the actual drift — rather than
			// firing on every MinBatches cooldown expiry.
			Relayer: &stream.RelayerConfig{
				Build:                 build,
				TouchedRatioThreshold: 0.65,
				SkeletonGrowthFactor:  1.3,
				MinBatches:            16,
				SwapLagBatches:        4,
			},
		})
		res := DriftMode{Mode: "adaptive+relayer", Windows: make([]DriftWindow, windows)}
		for i, b := range batches {
			t0 := time.Now()
			for _, u := range b {
				if err := st.Push(u); err != nil {
					panic(fmt.Sprintf("bench: drift push: %v", err))
				}
			}
			if err := st.Drain(); err != nil {
				panic(fmt.Sprintf("bench: drift drain: %v", err))
			}
			el := time.Since(t0)
			m := st.Metrics().Relayer
			w := &res.Windows[winOf(i)]
			w.Batches++
			w.MeanUpdateMs += el.Seconds() * 1e3
			w.MeanTouchedRate += m.TouchedRatioEWMA
			w.SkeletonFraction = m.SkeletonFraction
			w.FullRelayers = m.FullRelayers
			res.TotalUpdateSeconds += el.Seconds()
		}
		m := st.Metrics().Relayer
		res.MembershipMoves = m.MembershipMoves
		res.FullRelayers = m.FullRelayers
		st.Close()
		finishDriftWindows(&res)
		return res
	}

	rep.Modes = append(rep.Modes, direct("frozen", false), direct("adaptive", true), relayer())
	return rep
}

// finishDriftWindows turns the per-window sums into means.
func finishDriftWindows(m *DriftMode) {
	for i := range m.Windows {
		w := &m.Windows[i]
		w.Window = i
		if w.Batches > 0 {
			w.MeanUpdateMs /= float64(w.Batches)
			w.MeanTouchedRate /= float64(w.Batches)
		}
	}
}

// WriteDriftJSON writes the report to path (pretty-printed, trailing
// newline) for regression tracking across PRs.
func WriteDriftJSON(path string, rep DriftReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DriftExperiment prints the drift trend table and drops BENCH_drift.json
// next to the invocation.
func DriftExperiment(w io.Writer, o Options) {
	rep := RunDrift(o)
	fmt.Fprintf(w, "Drift (SSSP on %s, %d migration batches of %d vertices x %d rewires + %d edge churn, threads=%d, GOMAXPROCS=%d, capped=%v)\n",
		rep.Graph, rep.TotalBatches, rep.MigrationSize, rep.MigrationRewire, rep.EdgeChurn, rep.Threads, rep.GOMAXPROCS, rep.Capped)
	for _, m := range rep.Modes {
		fmt.Fprintf(w, "%s: total=%.3fs moves=%d relayers=%d\n", m.Mode, m.TotalUpdateSeconds, m.MembershipMoves, m.FullRelayers)
	}
	t := NewTable("window", "frozen-ms", "frozen-skel", "frozen-touched", "adaptive-ms", "relayer-ms", "relayer-skel", "relayer-touched", "relayer-swaps")
	frozen, adaptive, rl := rep.Modes[0], rep.Modes[1], rep.Modes[2]
	for i := range frozen.Windows {
		t.Row(i, frozen.Windows[i].MeanUpdateMs, frozen.Windows[i].SkeletonFraction,
			frozen.Windows[i].MeanTouchedRate,
			adaptive.Windows[i].MeanUpdateMs, rl.Windows[i].MeanUpdateMs,
			rl.Windows[i].SkeletonFraction, rl.Windows[i].MeanTouchedRate,
			rl.Windows[i].FullRelayers)
	}
	t.Print(w)
	if err := WriteDriftJSON(DriftJSONPath, rep); err != nil {
		fmt.Fprintf(w, "(could not write %s: %v)\n", DriftJSONPath, err)
	} else {
		fmt.Fprintf(w, "(wrote %s)\n", DriftJSONPath)
	}
}
