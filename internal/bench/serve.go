package bench

// Serving scenario: the HTTP daemon (internal/server) fronting a live
// stream, measured as a real service — N concurrent readers issue
// /query requests over loopback HTTP while one paced writer sustains a
// fixed /push update rate. Each point records read QPS and p50/p99
// read latency, plus the write throughput actually absorbed during the
// window, so snapshot-read isolation can be regressed against: reader
// counts should scale QPS without stalling the write path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/server"
	"layph/internal/stream"
)

// ServeJSONPath is where ServeExperiment drops its machine-readable
// record (relative to the working directory).
const ServeJSONPath = "BENCH_serve.json"

// ServePoint is one reader-count measurement window.
type ServePoint struct {
	Readers      int     `json:"readers"`
	Reads        int64   `json:"reads"`
	QPS          float64 `json:"qps"`
	P50Micros    float64 `json:"read_p50_us"`
	P99Micros    float64 `json:"read_p99_us"`
	WriteApplied int64   `json:"write_applied"`
	WriteUPS     float64 `json:"write_ups"`
	Batches      int64   `json:"batches"`
}

// ServeReport is the BENCH_serve.json payload. Note flags captures taken
// on hardware where reader counts oversubscribe the cores (same caveat as
// ParallelReport.Capped: concurrency levels above GOMAXPROCS measure
// time-sharing, not scaling).
type ServeReport struct {
	Graph          string       `json:"graph"`
	Algo           string       `json:"algo"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	Vertices       int          `json:"vertices"`
	WriteTargetUPS int          `json:"write_target_ups"`
	PointSeconds   float64      `json:"point_seconds"`
	Note           string       `json:"note,omitempty"`
	Points         []ServePoint `json:"points"`
}

// serveReaderCounts are the concurrency levels measured per run.
var serveReaderCounts = []int{1, 4, 16}

// RunServe stands up the full daemon stack (community graph, Layph
// SSSP, micro-batching stream, HTTP server on a loopback listener) and
// measures read QPS/latency at each reader count while a paced writer
// streams updates at writeUPS.
func RunServe(o Options) ServeReport {
	o = o.normalize()
	vertices := int(20000 * o.Scale)
	if vertices < 500 {
		vertices = 500
	}
	const (
		writeUPS   = 2000
		writeChunk = 100
		pointSecs  = 1.5
	)

	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices:      vertices,
		MeanCommunity: 40,
		IntraDegree:   8,
		InterDegree:   0.3,
		HubFraction:   0.01,
		HubDegree:     16,
		Weighted:      true,
		Seed:          o.Seed,
	})
	// Enough pre-generated updates to feed every window plus warm-up,
	// with 2x slack so the writer never runs dry mid-measurement.
	budget := int(float64(writeUPS) * (pointSecs*float64(len(serveReaderCounts)) + 2) * 2)
	seq := delta.NewGenerator(o.Seed+1).UnitSequence(g, budget, true)

	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: o.Threads})
	st := stream.New(g, sys, stream.Config{MaxBatch: 256, MaxDelay: 5 * time.Millisecond})
	defer st.Close()
	srv := server.New(st, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Paced writer: writeChunk-update text batches at writeUPS.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		tick := time.NewTicker(time.Duration(writeChunk) * time.Second / writeUPS)
		defer tick.Stop()
		client := ts.Client()
		for i := 0; i+writeChunk <= len(seq); i += writeChunk {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			var buf bytes.Buffer
			if err := delta.WriteUpdates(&buf, delta.Batch(seq[i:i+writeChunk])); err != nil {
				panic(fmt.Sprintf("bench: serve writer: %v", err))
			}
			resp, err := client.Post(ts.URL+"/push", "text/plain", &buf)
			if err != nil {
				panic(fmt.Sprintf("bench: serve writer: %v", err))
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				panic(fmt.Sprintf("bench: serve writer: /push status %d", resp.StatusCode))
			}
		}
	}()
	// Let the write stream settle before the first window.
	time.Sleep(300 * time.Millisecond)

	rep := ServeReport{
		Graph:          fmt.Sprintf("community-%d", vertices),
		Algo:           "SSSP",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Vertices:       vertices,
		WriteTargetUPS: writeUPS,
		PointSeconds:   pointSecs,
	}
	if max := serveReaderCounts[len(serveReaderCounts)-1]; rep.GOMAXPROCS < max {
		rep.Note = fmt.Sprintf("capped: GOMAXPROCS=%d < %d readers; reader-scaling points oversubscribe the cores and are not valid scaling data",
			rep.GOMAXPROCS, max)
	}
	queryURL := ts.URL + fmt.Sprintf("/query?v=0,1,%d&topk=8", vertices-1)
	for _, readers := range serveReaderCounts {
		m0 := st.Metrics()
		start := time.Now()
		deadline := start.Add(time.Duration(pointSecs * float64(time.Second)))

		var mu sync.Mutex
		var lats []float64 // microseconds
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := ts.Client()
				local := make([]float64, 0, 4096)
				for time.Now().Before(deadline) {
					t0 := time.Now()
					resp, err := client.Get(queryURL)
					if err != nil {
						panic(fmt.Sprintf("bench: serve reader: %v", err))
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						panic(fmt.Sprintf("bench: serve reader: /query status %d", resp.StatusCode))
					}
					local = append(local, float64(time.Since(t0))/float64(time.Microsecond))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		m1 := st.Metrics()

		sort.Float64s(lats)
		applied := m1.Applied - m0.Applied
		rep.Points = append(rep.Points, ServePoint{
			Readers:      readers,
			Reads:        int64(len(lats)),
			QPS:          float64(len(lats)) / elapsed,
			P50Micros:    percentile(lats, 0.50),
			P99Micros:    percentile(lats, 0.99),
			WriteApplied: applied,
			WriteUPS:     float64(applied) / elapsed,
			Batches:      m1.Batches - m0.Batches,
		})
	}
	close(stop)
	<-writerDone
	return rep
}

// percentile reads the p-quantile from an ascending-sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// WriteServeJSON writes the report to path (pretty-printed, trailing
// newline) for regression tracking across PRs.
func WriteServeJSON(path string, rep ServeReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ServeExperiment prints the read-scaling table and drops
// BENCH_serve.json next to the invocation.
func ServeExperiment(w io.Writer, o Options) {
	rep := RunServe(o)
	fmt.Fprintf(w, "Serve (SSSP on %s, %d-reader HTTP /query vs live /push at %d updates/s, %.1fs windows, GOMAXPROCS=%d)\n",
		rep.Graph, serveReaderCounts[len(serveReaderCounts)-1], rep.WriteTargetUPS, rep.PointSeconds, rep.GOMAXPROCS)
	t := NewTable("readers", "reads", "qps", "p50-us", "p99-us", "write-ups", "batches")
	for _, p := range rep.Points {
		t.Row(p.Readers, p.Reads, p.QPS, p.P50Micros, p.P99Micros, p.WriteUPS, p.Batches)
	}
	t.Print(w)
	if err := WriteServeJSON(ServeJSONPath, rep); err != nil {
		fmt.Fprintf(w, "(could not write %s: %v)\n", ServeJSONPath, err)
	} else {
		fmt.Fprintf(w, "(wrote %s)\n", ServeJSONPath)
	}
}
