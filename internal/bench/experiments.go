package bench

import (
	"fmt"
	"io"
	"runtime"

	"layph/internal/gen"
	"layph/internal/graph"
)

// Options tunes an experiment run.
type Options struct {
	// Scale multiplies the preset sizes (1.0 = full bench scale; the quick
	// default keeps every experiment in seconds on a laptop).
	Scale float64
	// Threads is the worker count (the paper runs 16).
	Threads int
	// Batches is how many update batches are averaged per measurement.
	Batches int
	// BatchSize is |ΔG| per batch (the paper's default is 5,000).
	BatchSize int
	Seed      int64
}

// DefaultOptions returns the quick-run configuration.
func DefaultOptions() Options {
	threads := runtime.GOMAXPROCS(0)
	if threads > 16 {
		threads = 16
	}
	return Options{Scale: 0.25, Threads: threads, Batches: 2, BatchSize: 5000, Seed: 42}
}

func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Scale == 0 {
		o.Scale = d.Scale
	}
	if o.Threads == 0 {
		o.Threads = d.Threads
	}
	if o.Batches == 0 {
		o.Batches = d.Batches
	}
	if o.BatchSize == 0 {
		o.BatchSize = d.BatchSize
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Experiment is a named runner for one table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig 1: edge activations and runtime, SSSP & PR on UK, 5000 edge updates", Fig1},
		{"table1", "Table I: datasets (scaled synthetic stand-ins)", Table1},
		{"fig5", "Fig 5: normalized response time, 4 algorithms x 4 graphs", Fig5},
		{"fig5e", "Fig 5e: PR vertex updates, Ingress vs Layph", Fig5e},
		{"fig6", "Fig 6: normalized edge activations, 4 algorithms x 4 graphs", Fig6},
		{"fig7", "Fig 7: Layph runtime breakdown on UK", Fig7},
		{"fig8", "Fig 8: effect of vertex replication (sizes and runtime)", Fig8},
		{"fig9", "Fig 9: scaling threads 1..32, SSSP & PR on UK", Fig9},
		{"fig10", "Fig 10: speedup over competitors vs batch size, SSSP & PR on UK", Fig10},
		{"fig11a", "Fig 11a: additional space cost of shortcuts", Fig11a},
		{"fig11b", "Fig 11b: offline preprocessing amortization, SSSP on UK", Fig11b},
		{"stream", "Streaming: sustained micro-batched ingestion throughput, SSSP on UK", StreamingExperiment},
		{"parallel", "Parallel: Layph incremental-update speedup vs threads, SSSP on the community graph", ParallelExperiment},
		{"serve", "Serve: HTTP read QPS and latency under a live write stream", ServeExperiment},
		{"shard", "Shard: update throughput and query latency vs community-aware shard count, SSSP on the community graph", ShardExperiment},
		{"recovery", "Recovery: WAL write-path overhead per fsync policy, crash-recovery time vs checkpoint interval, SSSP on UK", RecoveryExperiment},
		{"drift", "Drift: update latency and touched-subgraph-ratio trend under community-migration churn, frozen vs adaptive vs relayer, SSSP on the community graph", DriftExperiment},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Fig1 reproduces Figure 1: absolute edge activations and runtime for SSSP
// and PageRank on UK with 5000 random edge updates across all systems.
func Fig1(w io.Writer, o Options) {
	o = o.normalize()
	algos := Algorithms()
	for _, name := range []string{"SSSP", "PR"} {
		wl := NewWorkload(gen.PresetUK, o.Scale, o.Batches, o.BatchSize, o.Seed)
		fmt.Fprintf(w, "Figure 1 (%s on UK, |dG|=%d x %d batches)\n", name, o.BatchSize, o.Batches)
		t := NewTable("system", "activations", "runtime-s")
		for _, r := range Compare(wl, SystemsFor(name), algos[name], o.Threads) {
			t.Row(string(r.System), r.Activations, r.UpdateSeconds)
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
}

// Table1 reproduces Table I with the scaled stand-in datasets.
func Table1(w io.Writer, o Options) {
	o = o.normalize()
	fmt.Fprintf(w, "Table I (scaled stand-ins, scale=%.2f)\n", o.Scale)
	t := NewTable("graph", "vertices", "edges", "avg-degree", "max-out-degree")
	for _, p := range gen.AllPresets {
		g := gen.Build(p, o.Scale)
		s := graph.ComputeStats(g)
		t.Row(string(p), s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDegree)
	}
	t.Print(w)
}

// fig56 runs the full comparison matrix once; fig5 prints times, fig6
// activations, both normalized to Layph = 1 as in the paper.
func fig56(w io.Writer, o Options, metric string) {
	o = o.normalize()
	algos := Algorithms()
	for _, name := range []string{"SSSP", "BFS", "PR", "PHP"} {
		fmt.Fprintf(w, "%s (normalized to Layph = 1)\n", name)
		kinds := SystemsFor(name)
		header := []string{"graph"}
		for _, k := range kinds {
			if k != Restart {
				header = append(header, string(k))
			}
		}
		t := NewTable(header...)
		for _, p := range gen.AllPresets {
			wl := NewWorkload(p, o.Scale, o.Batches, o.BatchSize, o.Seed)
			rs := Compare(wl, kinds, algos[name], o.Threads)
			var base float64
			for _, r := range rs {
				if r.System == Layph {
					if metric == "time" {
						base = r.UpdateSeconds
					} else {
						base = float64(r.Activations)
					}
				}
			}
			row := []interface{}{string(p)}
			for _, r := range rs {
				if r.System == Restart {
					continue
				}
				v := r.UpdateSeconds
				if metric != "time" {
					v = float64(r.Activations)
				}
				if base > 0 {
					row = append(row, v/base)
				} else {
					row = append(row, 0.0)
				}
			}
			t.Row(row...)
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
}

// Fig5 reproduces Figure 5a-d: normalized response time.
func Fig5(w io.Writer, o Options) { fig56(w, o, "time") }

// Fig6 reproduces Figure 6a-d: normalized edge activations.
func Fig6(w io.Writer, o Options) { fig56(w, o, "activations") }

// Fig5e reproduces Figure 5e: PageRank under vertex updates (500 added +
// 500 deleted per batch), Ingress vs Layph.
func Fig5e(w io.Writer, o Options) {
	o = o.normalize()
	mk := Algorithms()["PR"]
	fmt.Fprintln(w, "Figure 5e (PR, 1000 vertex updates per batch, normalized to Layph = 1)")
	t := NewTable("graph", "ingress", "layph")
	for _, p := range gen.AllPresets {
		wl := NewVertexWorkload(p, o.Scale, o.Batches, 1000, o.Seed)
		rs := Compare(wl, []SystemKind{Ingress, Layph}, mk, o.Threads)
		var ing, lay float64
		for _, r := range rs {
			if r.System == Ingress {
				ing = r.UpdateSeconds
			} else {
				lay = r.UpdateSeconds
			}
		}
		if lay > 0 {
			t.Row(string(p), ing/lay, 1.0)
		}
	}
	t.Print(w)
}

// Fig7 reproduces Figure 7: the share of Layph's four online phases on UK.
func Fig7(w io.Writer, o Options) {
	o = o.normalize()
	fmt.Fprintln(w, "Figure 7 (Layph runtime breakdown on UK, fraction of update time)")
	phases := []string{"layered-update", "upload", "lup-iteration", "assignment"}
	t := NewTable(append([]string{"algorithm"}, phases...)...)
	for _, name := range []string{"SSSP", "BFS", "PR", "PHP"} {
		wl := NewWorkload(gen.PresetUK, o.Scale, o.Batches, o.BatchSize, o.Seed)
		r := RunSystem(wl, Layph, Algorithms()[name], o.Threads)
		fr := r.Layered.LastPhases.Fractions()
		row := []interface{}{name}
		for _, ph := range phases {
			row = append(row, fr[ph])
		}
		t.Row(row...)
	}
	t.Print(w)
}

// Fig8 reproduces Figure 8: skeleton sizes with/without replication and the
// SSSP / PR runtimes of Ingress vs Layph w/o replication vs Layph.
func Fig8(w io.Writer, o Options) {
	o = o.normalize()
	fmt.Fprintln(w, "Figure 8a (graph sizes, edges normalized to original graph = 1)")
	ts := NewTable("graph", "original", "Lup(no-replication)", "reshaped-Lup")
	for _, p := range gen.AllPresets {
		g := gen.Build(p, o.Scale)
		mk := Algorithms()["SSSP"]
		_, with := buildSystem(Layph, g.Clone(), mk, o.Threads)
		_, without := buildSystem(LayphNoRepl, g.Clone(), mk, o.Threads)
		_, withE := with.UpperLayerSize()
		_, withoutE := without.UpperLayerSize()
		total := float64(g.NumEdges())
		ts.Row(string(p), 1.0, float64(withoutE)/total, float64(withE)/total)
	}
	ts.Print(w)
	fmt.Fprintln(w)
	for _, name := range []string{"SSSP", "PR"} {
		fmt.Fprintf(w, "Figure 8b/c (%s runtime, normalized to Layph = 1)\n", name)
		t := NewTable("graph", "ingress", "layph-norepl", "layph")
		for _, p := range gen.AllPresets {
			wl := NewWorkload(p, o.Scale, o.Batches, o.BatchSize, o.Seed)
			rs := Compare(wl, []SystemKind{Ingress, LayphNoRepl, Layph}, Algorithms()[name], o.Threads)
			var base float64
			for _, r := range rs {
				if r.System == Layph {
					base = r.UpdateSeconds
				}
			}
			row := []interface{}{string(p)}
			for _, r := range rs {
				row = append(row, r.UpdateSeconds/base)
			}
			t.Row(row...)
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
}

// Fig9 reproduces Figure 9: runtime while scaling threads 1..32.
func Fig9(w io.Writer, o Options) {
	o = o.normalize()
	threads := []int{1, 2, 4, 8, 16, 32}
	for _, name := range []string{"SSSP", "PR"} {
		fmt.Fprintf(w, "Figure 9 (%s on UK, runtime seconds vs threads)\n", name)
		kinds := SystemsFor(name)[1:] // drop restart, as in the paper
		header := []string{"threads"}
		for _, k := range kinds {
			header = append(header, string(k))
		}
		t := NewTable(header...)
		wl := NewWorkload(gen.PresetUK, o.Scale, o.Batches, o.BatchSize, o.Seed)
		for _, th := range threads {
			row := []interface{}{th}
			for _, k := range kinds {
				r := RunSystem(wl, k, Algorithms()[name], th)
				row = append(row, r.UpdateSeconds)
			}
			t.Row(row...)
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
}

// Fig10 reproduces Figure 10: Layph's speedup over each competitor while
// varying the batch size (capped at 10% of |E| at small scales).
func Fig10(w io.Writer, o Options) {
	o = o.normalize()
	for _, name := range []string{"SSSP", "PR"} {
		fmt.Fprintf(w, "Figure 10 (%s on UK, Layph speedup over competitors vs batch size)\n", name)
		kinds := SystemsFor(name)
		header := []string{"batch-size"}
		for _, k := range kinds {
			if k != Restart && k != Layph {
				header = append(header, string(k))
			}
		}
		t := NewTable(header...)
		g := gen.Build(gen.PresetUK, o.Scale)
		maxBatch := g.NumEdges() / 10
		for _, bs := range []int{10, 100, 1000, 10000, 100000, 1000000} {
			if bs > maxBatch {
				break
			}
			wl := NewWorkload(gen.PresetUK, o.Scale, 1, bs, o.Seed)
			rs := Compare(wl, kinds, Algorithms()[name], o.Threads)
			var lay float64
			for _, r := range rs {
				if r.System == Layph {
					lay = r.UpdateSeconds
				}
			}
			row := []interface{}{bs}
			for _, r := range rs {
				if r.System == Restart || r.System == Layph {
					continue
				}
				row = append(row, r.UpdateSeconds/lay)
			}
			t.Row(row...)
		}
		t.Print(w)
		fmt.Fprintln(w)
	}
}

// Fig11a reproduces Figure 11a: shortcut count relative to original edges.
func Fig11a(w io.Writer, o Options) {
	o = o.normalize()
	fmt.Fprintln(w, "Figure 11a (additional space: shortcuts / original edges)")
	t := NewTable("graph", "edges", "shortcuts", "overhead-%")
	for _, p := range gen.AllPresets {
		g := gen.Build(p, o.Scale)
		_, l := buildSystem(Layph, g.Clone(), Algorithms()["SSSP"], o.Threads)
		sc := l.ShortcutCount()
		t.Row(string(p), g.NumEdges(), sc, 100*float64(sc)/float64(g.NumEdges()))
	}
	t.Print(w)
}

// Fig11b reproduces Figure 11b: cumulative runtime over successive
// incremental runs — Layph's offline cost plus its accumulated update time
// crosses below Ingress's accumulated update time after a few runs.
func Fig11b(w io.Writer, o Options) {
	o = o.normalize()
	const runs = 15
	wl := NewWorkload(gen.PresetUK, o.Scale, runs, o.BatchSize, o.Seed)
	mk := Algorithms()["SSSP"]
	lay := RunSystem(wl, Layph, mk, o.Threads)
	ing := RunSystem(wl, Ingress, mk, o.Threads)
	offline := lay.Layered.OfflineStats.BuildSeconds
	fmt.Fprintf(w, "Figure 11b (SSSP on UK, cumulative seconds; Layph offline = %.3fs)\n", offline)
	t := NewTable("run", "layph-offline+acc", "ingress-acc")
	cl, ci := offline, 0.0
	for i := 0; i < runs; i++ {
		cl += lay.PerBatchSeconds[i]
		ci += ing.PerBatchSeconds[i]
		t.Row(i+1, cl, ci)
	}
	t.Print(w)
}

// SpeedupSummary prints the headline comparison of the abstract: Layph's
// speedup range over each competitor across the full Fig 5 matrix.
func SpeedupSummary(w io.Writer, o Options) {
	o = o.normalize()
	mins := make(map[SystemKind]float64)
	maxs := make(map[SystemKind]float64)
	algos := Algorithms()
	for _, name := range []string{"SSSP", "BFS", "PR", "PHP"} {
		for _, p := range gen.AllPresets {
			wl := NewWorkload(p, o.Scale, o.Batches, o.BatchSize, o.Seed)
			rs := Compare(wl, SystemsFor(name), algos[name], o.Threads)
			var lay float64
			for _, r := range rs {
				if r.System == Layph {
					lay = r.UpdateSeconds
				}
			}
			for _, r := range rs {
				if r.System == Layph || r.System == Restart || lay == 0 {
					continue
				}
				sp := r.UpdateSeconds / lay
				if cur, ok := mins[r.System]; !ok || sp < cur {
					mins[r.System] = sp
				}
				if cur, ok := maxs[r.System]; !ok || sp > cur {
					maxs[r.System] = sp
				}
			}
		}
	}
	t := NewTable("competitor", "min-speedup", "max-speedup")
	for _, k := range []SystemKind{KickStarter, RisGraph, GraphBolt, DZiG, Ingress} {
		t.Row(string(k), mins[k], maxs[k])
	}
	t.Print(w)
}
