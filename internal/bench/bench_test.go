package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
)

// tiny returns options small enough for unit tests.
func tiny() Options {
	return Options{Scale: 0.02, Threads: 2, Batches: 1, BatchSize: 100, Seed: 7}
}

func TestWorkloadDeterministic(t *testing.T) {
	w1 := NewWorkload(gen.PresetUK, 0.02, 2, 50, 9)
	w2 := NewWorkload(gen.PresetUK, 0.02, 2, 50, 9)
	if len(w1.Batches) != 2 || len(w2.Batches) != 2 {
		t.Fatal("batch count")
	}
	for i := range w1.Batches {
		if len(w1.Batches[i]) != len(w2.Batches[i]) {
			t.Fatalf("batch %d length differs", i)
		}
		for j := range w1.Batches[i] {
			if w1.Batches[i][j] != w2.Batches[i][j] {
				t.Fatalf("batch %d item %d differs", i, j)
			}
		}
	}
}

func TestRunSystemAllKinds(t *testing.T) {
	wl := NewWorkload(gen.PresetUK, 0.02, 1, 60, 3)
	for _, k := range MinSystems {
		r := RunSystem(wl, k, Algorithms()["SSSP"], 2)
		if r.UpdateSeconds <= 0 {
			t.Fatalf("%s: no update time", k)
		}
	}
	for _, k := range SumSystems {
		r := RunSystem(wl, k, Algorithms()["PR"], 2)
		if r.UpdateSeconds <= 0 {
			t.Fatalf("%s: no update time", k)
		}
	}
	r := RunSystem(wl, LayphNoRepl, Algorithms()["PR"], 2)
	if r.Layered == nil {
		t.Fatal("layph-norepl should expose the layered handle")
	}
}

func TestSystemsAgreeOnStates(t *testing.T) {
	// All systems replay identical batches, so their final states must
	// agree with the restart baseline on the final graph's live vertices.
	wl := NewWorkload(gen.PresetWB, 0.02, 2, 80, 5)
	mk := Algorithms()["PR"]
	// Materialize the final graph to know which vertices are live.
	final := wl.Graph.Clone()
	for _, b := range wl.Batches {
		delta.Apply(final, b)
	}
	base := RunSystem(wl, Restart, mk, 2)
	baseSys, _ := buildSystem(Restart, final.Clone(), mk, 2)
	_ = base
	want := baseSys.States()
	for _, k := range []SystemKind{GraphBolt, DZiG, Ingress, Layph} {
		r := RunSystem(wl, k, mk, 2)
		sys := r
		got := stateOf(wl, k, mk)
		ok := true
		final.Vertices(func(v graph.VertexID) {
			if ok && mathAbs(got[v]-want[v]) > 1e-4 {
				ok = false
				t.Logf("%s: vertex %d got %v want %v", k, v, got[v], want[v])
			}
		})
		if !ok {
			t.Fatalf("%s diverges from restart (last stats %+v)", k, sys.LastStats)
		}
	}
}

func stateOf(w *Workload, k SystemKind, mk AlgoMaker) []float64 {
	g := w.Graph.Clone()
	sys, _ := buildSystem(k, g, mk, 2)
	for _, b := range w.Batches {
		applied := delta.Apply(g, b)
		sys.Update(applied)
	}
	return sys.States()
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBuildSystemUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	buildSystem(SystemKind("nope"), nil, Algorithms()["PR"], 1)
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("a", "bee")
	tbl.Row("x", 1.23456)
	tbl.Row("longer", 2)
	var buf bytes.Buffer
	tbl.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "1.235") {
		t.Fatalf("table output: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("want 4 lines, got %q", out)
	}
}

func TestExperimentsRunQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short")
	}
	t.Chdir(t.TempDir()) // the parallel experiment writes BENCH_parallel.json
	o := tiny()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			e.Run(&buf, o)
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestParallelReportJSON(t *testing.T) {
	rep := RunParallel(tiny())
	if len(rep.Points) == 0 {
		t.Fatal("no measurement points")
	}
	if rep.Points[0].Threads != 1 {
		t.Fatalf("first point threads=%d, want 1 (baseline)", rep.Points[0].Threads)
	}
	if rep.Points[0].SpeedupVsT1 != 1 {
		t.Fatalf("baseline speedup = %v, want 1", rep.Points[0].SpeedupVsT1)
	}
	for _, p := range rep.Points {
		if p.UpdateSeconds <= 0 || p.SpeedupVsT1 <= 0 {
			t.Fatalf("point %+v not measured", p)
		}
		if p.SubgraphsParallel == 0 {
			t.Fatalf("threads=%d reported no subgraph tasks", p.Threads)
		}
		if p.PoolUtilization < 0 || p.PoolUtilization > 1 {
			t.Fatalf("threads=%d pool utilization out of range: %v", p.Threads, p.PoolUtilization)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	if err := WriteParallelJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ParallelReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Algo != "SSSP" || len(back.Points) != len(rep.Points) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig7"); !ok {
		t.Fatal("fig7 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestVertexWorkload(t *testing.T) {
	w := NewVertexWorkload(gen.PresetUK, 0.02, 2, 20, 3)
	if len(w.Batches) != 2 {
		t.Fatal("batches")
	}
	r := RunSystem(w, Layph, Algorithms()["PR"], 2)
	if r.UpdateSeconds <= 0 {
		t.Fatal("no time")
	}
}

func TestSortedSystems(t *testing.T) {
	rs := []SystemResult{{System: Layph}, {System: Restart}, {System: Ingress}}
	out := SortedSystems(rs, []SystemKind{Restart, Ingress, Layph})
	if out[0].System != Restart || out[2].System != Layph {
		t.Fatalf("order: %v", out)
	}
}

func TestRecoveryReportJSON(t *testing.T) {
	rep, err := RunRecovery(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.WritePath) != 4 || rep.WritePath[0].Mode != "no-wal" {
		t.Fatalf("write-path points: %+v", rep.WritePath)
	}
	if rep.WritePath[0].Overhead != 1 {
		t.Fatalf("baseline overhead = %v, want 1", rep.WritePath[0].Overhead)
	}
	for _, p := range rep.WritePath {
		if p.UPS <= 0 || p.Batches <= 0 {
			t.Fatalf("point %+v not measured", p)
		}
		if p.Mode != "no-wal" && p.WALBytes <= 0 {
			t.Fatalf("mode %s logged no bytes", p.Mode)
		}
	}
	if rep.WritePath[3].Mode != "fsync-batch" || rep.WritePath[3].Fsyncs != rep.WritePath[3].Batches {
		t.Fatalf("fsync-batch point %+v: want one fsync per batch", rep.WritePath[3])
	}
	if len(rep.Recovery) != len(recoveryCheckpointIntervals) {
		t.Fatalf("recovery points: %+v", rep.Recovery)
	}
	for _, p := range rep.Recovery {
		// The micro-batch sizing guarantees a non-empty replayable tail
		// at every measured cadence.
		if p.TailBatches <= 0 || p.ReplayedUpdates <= 0 {
			t.Fatalf("cadence %d left no tail: %+v", p.CheckpointEvery, p)
		}
		if p.RecoverMillis <= 0 || p.RecoverMillis < p.ReplayMillis {
			t.Fatalf("cadence %d timing inconsistent: %+v", p.CheckpointEvery, p)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_recovery.json")
	if err := WriteRecoveryJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RecoveryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Algo != "SSSP" || len(back.Recovery) != len(rep.Recovery) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
