// Package bench is the experiment harness: one runner per table/figure of
// the paper's evaluation section (Section VI). Each runner generates the
// scaled dataset stand-in, replays identical update batches through the
// requested systems, and prints rows shaped like the paper's plots.
//
// Absolute numbers differ from the paper (different hardware, Go instead of
// C++, scaled datasets); the claims under test are the shapes: which system
// wins, by roughly what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/graphbolt"
	"layph/internal/inc"
	"layph/internal/ingress"
	"layph/internal/kickstarter"
	"layph/internal/risgraph"
)

// SystemKind names one of the systems under comparison.
type SystemKind string

// The systems of the paper's evaluation.
const (
	Restart     SystemKind = "restart"
	KickStarter SystemKind = "kickstarter"
	RisGraph    SystemKind = "risgraph"
	GraphBolt   SystemKind = "graphbolt"
	DZiG        SystemKind = "dzig"
	Ingress     SystemKind = "ingress"
	Layph       SystemKind = "layph"
	// LayphNoRepl is Layph with vertex replication disabled (Figure 8).
	LayphNoRepl SystemKind = "layph-norepl"
)

// MinSystems and SumSystems mirror the paper's per-algorithm comparisons
// (KickStarter/RisGraph lack PageRank/PHP; GraphBolt/DZiG lack SSSP/BFS).
var (
	MinSystems = []SystemKind{Restart, KickStarter, RisGraph, Ingress, Layph}
	SumSystems = []SystemKind{Restart, GraphBolt, DZiG, Ingress, Layph}
)

// AlgoMaker builds a fresh algorithm instance (systems must not share).
type AlgoMaker func() algo.Algorithm

// Algorithms returns the four workloads keyed by the paper's names.
func Algorithms() map[string]AlgoMaker {
	return map[string]AlgoMaker{
		"SSSP": func() algo.Algorithm { return algo.NewSSSP(0) },
		"BFS":  func() algo.Algorithm { return algo.NewBFS(0) },
		"PR":   func() algo.Algorithm { return algo.NewPageRank(0.85, 1e-6) },
		"PHP":  func() algo.Algorithm { return algo.NewPHP(0, 0.80, 1e-6) },
	}
}

// SystemsFor returns the comparison set for an algorithm name.
func SystemsFor(algoName string) []SystemKind {
	if algoName == "SSSP" || algoName == "BFS" {
		return MinSystems
	}
	return SumSystems
}

// Workload is a dataset plus a pre-generated batch sequence, replayable
// identically across systems.
type Workload struct {
	Name    string
	Graph   *graph.Graph
	Batches []delta.Batch
}

// NewWorkload builds the preset at the given scale and pre-generates
// nBatches random edge batches of batchSize updates each.
func NewWorkload(p gen.Preset, scale float64, nBatches, batchSize int, seed int64) *Workload {
	g := gen.Build(p, scale)
	w := &Workload{Name: string(p), Graph: g}
	w.Batches = makeBatches(g, nBatches, batchSize, false, seed)
	return w
}

// NewVertexWorkload builds the preset with vertex-update batches (the
// paper's 1,000 changed vertices: half added, half deleted, Figure 5e).
func NewVertexWorkload(p gen.Preset, scale float64, nBatches, perBatch int, seed int64) *Workload {
	g := gen.Build(p, scale)
	w := &Workload{Name: string(p) + "-vertex", Graph: g}
	clone := g.Clone()
	genr := delta.NewGenerator(seed)
	for i := 0; i < nBatches; i++ {
		b := genr.VertexBatch(clone, perBatch/2, perBatch/2, 4, true)
		w.Batches = append(w.Batches, b)
		delta.Apply(clone, b)
	}
	return w
}

func makeBatches(g *graph.Graph, n, size int, weighted bool, seed int64) []delta.Batch {
	clone := g.Clone()
	genr := delta.NewGenerator(seed)
	out := make([]delta.Batch, 0, n)
	for i := 0; i < n; i++ {
		b := genr.EdgeBatch(clone, size, true)
		out = append(out, b)
		delta.Apply(clone, b)
	}
	return out
}

// SystemResult aggregates one system's performance over a workload.
type SystemResult struct {
	System SystemKind
	// InitSeconds is construction + initial batch run (Layph: offline phase
	// included).
	InitSeconds float64
	// UpdateSeconds and Activations are totals over all batches.
	UpdateSeconds float64
	Activations   int64
	// PerBatchSeconds lists individual batch times (Fig 11b accumulation).
	PerBatchSeconds []float64
	// Layered carries Layph-only detail (nil otherwise).
	Layered *core.Layph
	// LastStats is the stats record of the final batch.
	LastStats inc.Stats
	// Stats aggregates every batch's record (durations and counters sum;
	// PoolUtilization is the duration-weighted mean).
	Stats inc.Stats
}

// restartSystem wraps batch recomputation behind the System interface.
type restartSystem struct {
	g       *graph.Graph
	mk      AlgoMaker
	threads int
	x       []float64
}

func (r *restartSystem) Name() string      { return string(Restart) }
func (r *restartSystem) States() []float64 { return r.x }
func (r *restartSystem) Update(*delta.Applied) inc.Stats {
	start := time.Now()
	res := engine.RunBatch(r.g, r.mk(), engine.Options{Workers: r.threads})
	r.x = res.X
	return inc.Stats{Activations: res.Activations, Rounds: res.Rounds, Duration: time.Since(start)}
}

// buildSystem constructs the engine over g (running its initial batch
// computation) and returns it with the Layph handle when applicable.
func buildSystem(kind SystemKind, g *graph.Graph, mk AlgoMaker, threads int) (inc.System, *core.Layph) {
	switch kind {
	case Restart:
		r := &restartSystem{g: g, mk: mk, threads: threads}
		res := engine.RunBatch(g, mk(), engine.Options{Workers: threads})
		r.x = res.X
		return r, nil
	case KickStarter:
		return kickstarter.New(g, mk(), engine.Options{Workers: threads}), nil
	case RisGraph:
		return risgraph.New(g, mk(), engine.Options{Workers: threads}), nil
	case GraphBolt:
		return graphbolt.New(g, mk(), graphbolt.ModePull), nil
	case DZiG:
		return graphbolt.New(g, mk(), graphbolt.ModeSparseAware), nil
	case Ingress:
		return ingress.New(g, mk(), engine.Options{Workers: threads}), nil
	case Layph:
		l := core.New(g, mk(), core.Options{Workers: threads})
		return l, l
	case LayphNoRepl:
		l := core.New(g, mk(), core.Options{Workers: threads, DisableReplication: true})
		return l, l
	default:
		panic(fmt.Sprintf("bench: unknown system %q", kind))
	}
}

// RunSystem replays the workload through one system.
func RunSystem(w *Workload, kind SystemKind, mk AlgoMaker, threads int) SystemResult {
	g := w.Graph.Clone()
	start := time.Now()
	sys, layered := buildSystem(kind, g, mk, threads)
	res := SystemResult{System: kind, InitSeconds: time.Since(start).Seconds(), Layered: layered}
	for _, b := range w.Batches {
		applied := delta.Apply(g, b)
		st := sys.Update(applied)
		res.UpdateSeconds += st.Duration.Seconds()
		res.PerBatchSeconds = append(res.PerBatchSeconds, st.Duration.Seconds())
		res.Activations += st.Activations
		res.LastStats = st
		res.Stats.Add(st)
	}
	return res
}

// Compare replays the workload through every listed system.
func Compare(w *Workload, kinds []SystemKind, mk AlgoMaker, threads int) []SystemResult {
	out := make([]SystemResult, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, RunSystem(w, k, mk, threads))
	}
	return out
}

// --- formatting helpers -----------------------------------------------

// Table accumulates aligned rows for printing.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row (values are formatted with %v).
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
}

// SortedSystems orders results in the paper's legend order.
func SortedSystems(rs []SystemResult, order []SystemKind) []SystemResult {
	rank := make(map[SystemKind]int, len(order))
	for i, k := range order {
		rank[k] = i
	}
	out := append([]SystemResult(nil), rs...)
	sort.SliceStable(out, func(a, b int) bool { return rank[out[a].System] < rank[out[b].System] })
	return out
}

// Build constructs the named system over g (running the initial batch
// computation); the second return is non-nil for the Layph kinds.
func Build(kind SystemKind, g *graph.Graph, mk AlgoMaker, threads int) (inc.System, *core.Layph) {
	return buildSystem(kind, g, mk, threads)
}
