package bench

// Streaming scenario: instead of replaying pre-sized batches with one
// Update call each, the same update sequence is pushed as unit updates
// through the internal/stream micro-batching pipeline, measuring
// sustained ingestion throughput and per-micro-batch latency per system.

import (
	"fmt"
	"io"
	"time"

	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/stream"
)

// StreamingResult is one system's measurement from the streaming scenario.
type StreamingResult struct {
	System SystemKind
	// Updates streamed, micro-batches flushed.
	Updates, Batches int64
	// WallSeconds is total ingestion wall-clock (push to drain).
	WallSeconds float64
	// Throughput is Updates/WallSeconds.
	Throughput float64
	// MeanBatchMs is the mean apply+update latency per micro-batch.
	MeanBatchMs float64
	// Activations aggregates the engines' F applications.
	Activations int64
}

// RunStreaming pushes n unit updates through each system behind the
// micro-batching pipeline and measures sustained throughput.
func RunStreaming(p gen.Preset, scale float64, n, microBatch, threads int, seed int64, kinds []SystemKind, mk AlgoMaker) []StreamingResult {
	base := gen.Build(p, scale)
	// One shared pre-generated sequence keeps the workload identical
	// across systems.
	seq := delta.NewGenerator(seed).UnitSequence(base, n, true)

	out := make([]StreamingResult, 0, len(kinds))
	for _, kind := range kinds {
		g := base.Clone()
		sys, _ := buildSystem(kind, g, mk, threads)
		s := stream.New(g, sys, stream.Config{MaxBatch: microBatch, MaxDelay: -1})
		start := time.Now()
		for _, u := range seq {
			if err := s.Push(u); err != nil {
				panic(fmt.Sprintf("bench: streaming push on %s: %v", kind, err))
			}
		}
		s.Close()
		wall := time.Since(start).Seconds()
		m := s.Metrics()
		out = append(out, StreamingResult{
			System: kind, Updates: m.Applied, Batches: m.Batches,
			WallSeconds: wall, Throughput: float64(m.Applied) / wall,
			MeanBatchMs: float64(m.MeanBatchLatency) / float64(time.Millisecond),
			Activations: m.Engine.Activations,
		})
	}
	return out
}

// StreamingExperiment prints the streaming scenario for SSSP on UK: every
// min-scheme system ingesting the same unit-update stream.
func StreamingExperiment(w io.Writer, o Options) {
	o = o.normalize()
	n := o.Batches * o.BatchSize
	micro := o.BatchSize / 5
	if micro < 1 {
		micro = 1
	}
	fmt.Fprintf(w, "Streaming (SSSP on UK, %d unit updates, micro-batch=%d)\n", n, micro)
	t := NewTable("system", "updates/s", "batches", "mean-batch-ms", "activations")
	for _, r := range RunStreaming(gen.PresetUK, o.Scale, n, micro, o.Threads, o.Seed, MinSystems, Algorithms()["SSSP"]) {
		t.Row(string(r.System), r.Throughput, r.Batches, r.MeanBatchMs, r.Activations)
	}
	t.Print(w)
}
