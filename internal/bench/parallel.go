package bench

// Parallel scaling scenario: the same incremental workload replayed
// through Layph at increasing thread counts, measuring the wall-clock
// win of the shared-worker-pool lower layer (plus the Lup iteration's
// workers). Results are emitted both as a table and as a
// BENCH_parallel.json speedup-vs-threads record, so later PRs have a
// perf trajectory to regress against.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"layph/internal/gen"
)

// ParallelJSONPath is where ParallelExperiment drops its machine-readable
// record (relative to the working directory).
const ParallelJSONPath = "BENCH_parallel.json"

// ParallelPoint is one thread-count measurement. Capped marks points where
// the requested thread count exceeds GOMAXPROCS: the workers time-share the
// available cores, so the point measures scheduling overhead, not scaling,
// and must not be read as scaling data.
type ParallelPoint struct {
	Threads           int     `json:"threads"`
	UpdateSeconds     float64 `json:"update_seconds"`
	SpeedupVsT1       float64 `json:"speedup_vs_t1"`
	SubgraphsParallel int64   `json:"subgraphs_parallel"`
	PoolUtilization   float64 `json:"pool_utilization"`
	Activations       int64   `json:"activations"`
	Capped            bool    `json:"capped,omitempty"`
}

// ParallelReport is the BENCH_parallel.json payload. Capped is set when any
// point oversubscribed the cores (see ParallelPoint.Capped); such captures
// are not valid scaling data and should be re-taken on >= 4 cores.
type ParallelReport struct {
	Graph      string          `json:"graph"`
	Algo       string          `json:"algo"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Vertices   int             `json:"vertices"`
	Batches    int             `json:"batches"`
	BatchSize  int             `json:"batch_size"`
	Capped     bool            `json:"capped,omitempty"`
	Points     []ParallelPoint `json:"points"`
}

// CommunityWorkload builds the synthetic community graph (the structure
// Layph's lower layer exploits) with pre-generated edge batches.
func CommunityWorkload(vertices, nBatches, batchSize int, seed int64) *Workload {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices:      vertices,
		MeanCommunity: 40,
		IntraDegree:   8,
		InterDegree:   0.3,
		HubFraction:   0.01,
		HubDegree:     16,
		Weighted:      true,
		Seed:          seed,
	})
	w := &Workload{Name: fmt.Sprintf("community-%d", vertices), Graph: g}
	w.Batches = makeBatches(g, nBatches, batchSize, true, seed)
	return w
}

// parallelThreadCounts returns the measured thread counts: 1, 2, 4, 8
// plus GOMAXPROCS, deduplicated and ascending, so the Threads=1 baseline
// and the hardware's own width are always covered.
func parallelThreadCounts() []int {
	set := map[int]struct{}{1: {}, 2: {}, 4: {}, 8: {}, runtime.GOMAXPROCS(0): {}}
	out := make([]int, 0, len(set))
	for th := range set {
		out = append(out, th)
	}
	sort.Ints(out)
	return out
}

// RunParallel measures Layph's incremental-update time on the community
// workload (SSSP) across thread counts. Scale sizes the graph: the
// default 0.25 gives the 10k-vertex community graph of the acceptance
// run.
func RunParallel(o Options) ParallelReport {
	o = o.normalize()
	vertices := int(40000 * o.Scale)
	if vertices < 200 {
		vertices = 200
	}
	wl := CommunityWorkload(vertices, o.Batches, o.BatchSize, o.Seed)
	rep := ParallelReport{
		Graph:      wl.Name,
		Algo:       "SSSP",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Vertices:   vertices,
		Batches:    o.Batches,
		BatchSize:  o.BatchSize,
	}
	mk := Algorithms()["SSSP"]
	var t1 float64
	for _, th := range parallelThreadCounts() {
		r := RunSystem(wl, Layph, mk, th)
		p := ParallelPoint{
			Threads:           th,
			UpdateSeconds:     r.UpdateSeconds,
			SubgraphsParallel: r.Stats.SubgraphsParallel,
			PoolUtilization:   r.Stats.PoolUtilization,
			Activations:       r.Activations,
			Capped:            th > rep.GOMAXPROCS,
		}
		if p.Capped {
			rep.Capped = true
		}
		if th == 1 {
			t1 = r.UpdateSeconds
		}
		if t1 > 0 && r.UpdateSeconds > 0 {
			p.SpeedupVsT1 = t1 / r.UpdateSeconds
		}
		rep.Points = append(rep.Points, p)
	}
	return rep
}

// PerfSmoke is the CI guard against the task-granularity regression: it
// replays the parallel workload through Layph at Threads=1 and Threads=4
// (best of two runs each, to damp shared-runner noise) and returns a
// nonzero exit code when parallel execution loses to sequential. On
// runners with fewer than 4 cores the t=4 measurement would be capped
// (oversubscription, not scaling), so the check self-skips and passes.
func PerfSmoke(w io.Writer, o Options) int {
	if np := runtime.GOMAXPROCS(0); np < 4 {
		fmt.Fprintf(w, "perf smoke: SKIP — GOMAXPROCS=%d < 4, the t=4 point would be capped (measures oversubscription, not scaling)\n", np)
		return 0
	}
	o = o.normalize()
	vertices := int(40000 * o.Scale)
	if vertices < 200 {
		vertices = 200
	}
	wl := CommunityWorkload(vertices, o.Batches, o.BatchSize, o.Seed)
	mk := Algorithms()["SSSP"]
	best := func(threads int) SystemResult {
		r := RunSystem(wl, Layph, mk, threads)
		if r2 := RunSystem(wl, Layph, mk, threads); r2.UpdateSeconds < r.UpdateSeconds {
			r = r2
		}
		return r
	}
	r1, r4 := best(1), best(4)
	speedup := 0.0
	if r4.UpdateSeconds > 0 {
		speedup = r1.UpdateSeconds / r4.UpdateSeconds
	}
	fmt.Fprintf(w, "perf smoke: SSSP on %s, %d batches x %d updates: t=1 %.4fs, t=4 %.4fs, speedup %.2fx, pool-util %.0f%%\n",
		wl.Name, o.Batches, o.BatchSize, r1.UpdateSeconds, r4.UpdateSeconds, speedup, 100*r4.Stats.PoolUtilization)
	if speedup < 1.0 {
		fmt.Fprintf(w, "perf smoke: FAIL — parallel lower layer loses to sequential (speedup %.2fx < 1.0); task granularity or hot-path layout regressed\n", speedup)
		return 1
	}
	fmt.Fprintln(w, "perf smoke: PASS")
	return 0
}

// WriteParallelJSON writes the report to path (pretty-printed, trailing
// newline) for regression tracking across PRs.
func WriteParallelJSON(path string, rep ParallelReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParallelExperiment prints the speedup-vs-threads table and drops
// BENCH_parallel.json next to the invocation.
func ParallelExperiment(w io.Writer, o Options) {
	rep := RunParallel(o)
	fmt.Fprintf(w, "Parallel lower layer (SSSP on %s, %d batches x %d updates, GOMAXPROCS=%d)\n",
		rep.Graph, rep.Batches, rep.BatchSize, rep.GOMAXPROCS)
	t := NewTable("threads", "update-s", "speedup-vs-t1", "subgraph-tasks", "pool-util", "capped")
	for _, p := range rep.Points {
		t.Row(p.Threads, p.UpdateSeconds, p.SpeedupVsT1, p.SubgraphsParallel, p.PoolUtilization, p.Capped)
	}
	t.Print(w)
	if err := WriteParallelJSON(ParallelJSONPath, rep); err != nil {
		fmt.Fprintf(w, "(could not write %s: %v)\n", ParallelJSONPath, err)
	} else {
		fmt.Fprintf(w, "(wrote %s)\n", ParallelJSONPath)
	}
	if rep.Capped {
		fmt.Fprintf(w, `
*** WARNING ********************************************************
*** GOMAXPROCS=%d is below the measured thread counts. Capped     ***
*** points time-share the cores: they measure oversubscription   ***
*** overhead, NOT scaling. This capture is marked "capped": true ***
*** in %s — re-run on >= 4 cores for scaling data.
********************************************************************
`, rep.GOMAXPROCS, ParallelJSONPath)
	}
}
