package bench

// Sharded-execution scenario: the same live daemon stack as the serve
// experiment, but with the community-aware multi-shard engine
// (internal/shard) behind the stream. Each point runs one shard count
// over an identical graph and update sequence, saturating the write path
// while concurrent HTTP readers sample /query latency — so update
// throughput and read tail latency can be compared across shard counts.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/server"
	"layph/internal/shard"
	"layph/internal/stream"
)

// ShardJSONPath is where ShardExperiment drops its machine-readable
// record (relative to the working directory).
const ShardJSONPath = "BENCH_shard.json"

// ShardPoint is one shard-count measurement window.
type ShardPoint struct {
	Shards         int     `json:"shards"`
	Applied        int64   `json:"applied"`
	UpdateUPS      float64 `json:"update_ups"`
	Batches        int64   `json:"batches"`
	ExchangeRounds int64   `json:"exchange_rounds"`
	BoundaryPins   int64   `json:"boundary_pins"`
	Reads          int64   `json:"reads"`
	QPS            float64 `json:"qps"`
	P50Micros      float64 `json:"read_p50_us"`
	P99Micros      float64 `json:"read_p99_us"`
}

// ShardReport is the BENCH_shard.json payload. Capped is set when
// GOMAXPROCS is below the largest shard count: the shard engines then
// time-share cores instead of running in parallel, so the points measure
// coordination overhead, not scaling.
type ShardReport struct {
	Graph        string       `json:"graph"`
	Algo         string       `json:"algo"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Vertices     int          `json:"vertices"`
	PointSeconds float64      `json:"point_seconds"`
	Capped       bool         `json:"capped"`
	Note         string       `json:"note,omitempty"`
	Points       []ShardPoint `json:"points"`
}

// shardCounts are the shard counts measured per run.
var shardCounts = []int{1, 2, 4}

// RunShard measures the sharded daemon at each shard count: a saturating
// writer streams the same pre-generated update sequence into the
// micro-batching pipeline while two HTTP readers sample /query latency.
func RunShard(o Options) ShardReport {
	o = o.normalize()
	vertices := int(20000 * o.Scale)
	if vertices < 500 {
		vertices = 500
	}
	const (
		pointSecs = 1.5
		readers   = 2
	)

	mkGraph := func() *graph.Graph {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices:      vertices,
			MeanCommunity: 40,
			IntraDegree:   8,
			InterDegree:   0.3,
			HubFraction:   0.01,
			HubDegree:     16,
			Weighted:      true,
			Seed:          o.Seed,
		})
		return g
	}
	// One shared update sequence, generated once against the initial graph
	// shape so every shard count absorbs identical work.
	seq := delta.NewGenerator(o.Seed + 1).UnitSequence(mkGraph(), 200_000, true)

	rep := ShardReport{
		Graph:        fmt.Sprintf("community-%d", vertices),
		Algo:         "SSSP",
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Vertices:     vertices,
		PointSeconds: pointSecs,
	}
	if max := shardCounts[len(shardCounts)-1]; rep.GOMAXPROCS < max {
		rep.Capped = true
		rep.Note = fmt.Sprintf("capped: GOMAXPROCS=%d < %d shards; shard engines time-share the cores, so these points measure exchange overhead, not parallel scaling",
			rep.GOMAXPROCS, max)
	}

	for _, k := range shardCounts {
		g := mkGraph()
		sys := shard.New(g, algo.NewSSSP(0), shard.Options{Shards: k, Threads: 1})
		st := stream.New(g, sys, stream.Config{MaxBatch: 256, MaxDelay: 5 * time.Millisecond})
		srv := server.New(st, server.Config{})
		srv.AttachShards(sys)
		ts := httptest.NewServer(srv.Handler())

		m0 := st.Metrics()
		start := time.Now()
		deadline := start.Add(time.Duration(pointSecs * float64(time.Second)))

		// Saturating writer: direct Push until the window closes (cycling
		// the sequence if it drains early; stale deletes net to nothing).
		writerDone := make(chan struct{})
		go func() {
			defer close(writerDone)
			for i := 0; time.Now().Before(deadline); i = (i + 1) % len(seq) {
				if st.Push(seq[i]) != nil {
					return
				}
			}
		}()

		queryURL := ts.URL + fmt.Sprintf("/query?v=0,1,%d&topk=8", vertices-1)
		var mu sync.Mutex
		var lats []float64 // microseconds
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := ts.Client()
				local := make([]float64, 0, 4096)
				for time.Now().Before(deadline) {
					t0 := time.Now()
					resp, err := client.Get(queryURL)
					if err != nil {
						panic(fmt.Sprintf("bench: shard reader: %v", err))
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						panic(fmt.Sprintf("bench: shard reader: /query status %d", resp.StatusCode))
					}
					local = append(local, float64(time.Since(t0))/float64(time.Microsecond))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		<-writerDone
		if err := st.Drain(); err != nil {
			panic(fmt.Sprintf("bench: shard drain: %v", err))
		}
		elapsed := time.Since(start).Seconds()
		m1 := st.Metrics()

		sort.Float64s(lats)
		applied := m1.Applied - m0.Applied
		rep.Points = append(rep.Points, ShardPoint{
			Shards:         k,
			Applied:        applied,
			UpdateUPS:      float64(applied) / elapsed,
			Batches:        m1.Batches - m0.Batches,
			ExchangeRounds: m1.Engine.ShardRounds - m0.Engine.ShardRounds,
			BoundaryPins:   m1.Engine.BoundaryPins - m0.Engine.BoundaryPins,
			Reads:          int64(len(lats)),
			QPS:            float64(len(lats)) / elapsed,
			P50Micros:      percentile(lats, 0.50),
			P99Micros:      percentile(lats, 0.99),
		})
		ts.Close()
		st.Close()
	}
	return rep
}

// WriteShardJSON writes the report to path (pretty-printed, trailing
// newline) for regression tracking across PRs.
func WriteShardJSON(path string, rep ShardReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ShardExperiment prints the shard-scaling table and drops
// BENCH_shard.json next to the invocation.
func ShardExperiment(w io.Writer, o Options) {
	rep := RunShard(o)
	fmt.Fprintf(w, "Shard (SSSP on %s, saturated /push + 2-reader HTTP /query, %.1fs windows, GOMAXPROCS=%d, capped=%v)\n",
		rep.Graph, rep.PointSeconds, rep.GOMAXPROCS, rep.Capped)
	t := NewTable("shards", "applied", "update-ups", "batches", "xch-rounds", "pins", "qps", "p50-us", "p99-us")
	for _, p := range rep.Points {
		t.Row(p.Shards, p.Applied, p.UpdateUPS, p.Batches, p.ExchangeRounds, p.BoundaryPins, p.QPS, p.P50Micros, p.P99Micros)
	}
	t.Print(w)
	if err := WriteShardJSON(ShardJSONPath, rep); err != nil {
		fmt.Fprintf(w, "(could not write %s: %v)\n", ShardJSONPath, err)
	} else {
		fmt.Fprintf(w, "(wrote %s)\n", ShardJSONPath)
	}
}
