package bench

// Recovery scenario: the durability layer measured from both sides.
// Write path — the same unit-update stream ingested with no WAL, then
// with the log at each fsync policy, so the steady-state logging
// overhead is a ratio against the no-WAL baseline. Recovery path — a
// crash image is left behind at each checkpoint cadence (the stream is
// stopped without its final checkpoint, exactly what kill -9 leaves)
// and the recovery sequence the layph.OpenStream facade runs —
// checkpoint load, engine rebuild, tail replay, re-checkpoint, stream
// restart — is timed end to end.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/stream"
	"layph/internal/wal"
)

// RecoveryJSONPath is where RecoveryExperiment drops its machine-readable
// record (relative to the working directory).
const RecoveryJSONPath = "BENCH_recovery.json"

// RecoveryWritePoint is one fsync-policy measurement of the ingestion
// path. Overhead is the no-WAL throughput divided by this mode's (1.0
// for the baseline itself; higher = slower).
type RecoveryWritePoint struct {
	Mode     string  `json:"mode"`
	UPS      float64 `json:"ups"`
	Batches  int64   `json:"batches"`
	Fsyncs   int64   `json:"fsyncs"`
	WALBytes int64   `json:"wal_bytes"`
	Overhead float64 `json:"overhead_vs_no_wal"`
}

// RecoveryPoint is one checkpoint-cadence crash-recovery measurement.
// RecoverMillis is the full back-to-serving wall time (checkpoint load +
// engine rebuild + tail replay + re-checkpoint + stream restart);
// LoadMillis and ReplayMillis break out the I/O and replay shares.
type RecoveryPoint struct {
	CheckpointEvery int     `json:"checkpoint_every"`
	TailBatches     int64   `json:"tail_batches"`
	ReplayedUpdates int64   `json:"replayed_updates"`
	RecoverMillis   float64 `json:"recover_ms"`
	LoadMillis      float64 `json:"load_ms"`
	ReplayMillis    float64 `json:"replay_ms"`
	ReplayUPS       float64 `json:"replay_ups"`
}

// RecoveryReport is the BENCH_recovery.json payload.
type RecoveryReport struct {
	Graph      string               `json:"graph"`
	Algo       string               `json:"algo"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Vertices   int                  `json:"vertices"`
	Updates    int                  `json:"updates"`
	MicroBatch int                  `json:"micro_batch"`
	Note       string               `json:"note,omitempty"`
	WritePath  []RecoveryWritePoint `json:"write_path"`
	Recovery   []RecoveryPoint      `json:"recovery"`
}

// recoveryCheckpointIntervals are the cadences measured per run.
var recoveryCheckpointIntervals = []int{4, 16, 64}

// runDurable ingests seq through a WAL-backed stream in dir, returning
// the push-to-drain ingestion wall clock (setup — directory, initial
// checkpoint, engine — is excluded, matching the no-WAL baseline's
// timer) and leaving the stream and log open for the caller to stop.
func runDurable(dir string, g *graph.Graph, sys inc.System, cfg wal.Config, micro int, seq []delta.Update) (*stream.Stream, *wal.Log, float64, error) {
	l, rec, err := wal.Open(dir, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if rec != nil {
		l.Close()
		return nil, nil, 0, fmt.Errorf("bench: recovery: dir %s not fresh", dir)
	}
	if err := l.Start(0, 0, g, sys.States()); err != nil {
		l.Close()
		return nil, nil, 0, err
	}
	s := stream.New(g, sys, stream.Config{MaxBatch: micro, MaxDelay: -1, Durability: l})
	start := time.Now()
	for _, u := range seq {
		if err := s.Push(u); err != nil {
			s.Close()
			l.Close()
			return nil, nil, 0, err
		}
	}
	if err := s.Drain(); err != nil {
		s.Close()
		l.Close()
		return nil, nil, 0, err
	}
	return s, l, time.Since(start).Seconds(), nil
}

// RunRecovery measures WAL write-path overhead per fsync policy and
// crash-recovery time per checkpoint interval, SSSP/Layph on UK.
func RunRecovery(o Options) (RecoveryReport, error) {
	o = o.normalize()
	base := gen.Build(gen.PresetUK, o.Scale)
	n := o.Batches * o.BatchSize
	// Size micro-batches so the batch count is not a multiple of 4 (hence
	// of no measured cadence — they are all powers of two ≥ 4): every
	// crash image then carries a non-empty replayable tail.
	micro := o.BatchSize / 20
	if micro < 1 {
		micro = 1
	}
	for (n+micro-1)/micro%4 == 0 {
		micro++
	}
	seq := delta.NewGenerator(o.Seed).UnitSequence(base, n, true)
	mk := Algorithms()["SSSP"]
	build := func(g *graph.Graph) inc.System {
		sys, _ := buildSystem(Layph, g, mk, o.Threads)
		return sys
	}

	rep := RecoveryReport{
		Graph:      "UK",
		Algo:       "SSSP",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Vertices:   base.Cap(),
		Updates:    n,
		MicroBatch: micro,
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = "single-core capture: ingestion and replay run sequentially, run-to-run variance can exceed the fsync-policy spread, and fsync costs depend on the backing filesystem"
	}

	// Write path: the same stream with no WAL, then per fsync policy.
	// Checkpoints are disabled (CheckpointEvery < 0) so the points
	// isolate the per-batch logging cost.
	modes := []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"no-wal", 0},
		{"fsync-off", wal.SyncOff},
		{"fsync-interval-100ms", wal.SyncInterval},
		{"fsync-batch", wal.SyncEveryBatch},
	}
	for _, m := range modes {
		g := base.Clone()
		sys := build(g)
		var p RecoveryWritePoint
		p.Mode = m.name
		if m.name == "no-wal" {
			s := stream.New(g, sys, stream.Config{MaxBatch: micro, MaxDelay: -1})
			start := time.Now()
			for _, u := range seq {
				if err := s.Push(u); err != nil {
					return rep, fmt.Errorf("bench: recovery write path (%s): %w", m.name, err)
				}
			}
			if err := s.Drain(); err != nil {
				return rep, fmt.Errorf("bench: recovery write path (%s): %w", m.name, err)
			}
			p.UPS = float64(n) / time.Since(start).Seconds()
			p.Batches = s.Metrics().Batches
			s.Close()
		} else {
			dir, err := os.MkdirTemp("", "layph-recovery-")
			if err != nil {
				return rep, err
			}
			defer os.RemoveAll(dir)
			s, l, wall, err := runDurable(dir, g, sys,
				wal.Config{Sync: m.sync, CheckpointEvery: -1, Meta: "bench=recovery"}, micro, seq)
			if err != nil {
				return rep, fmt.Errorf("bench: recovery write path (%s): %w", m.name, err)
			}
			p.UPS = float64(n) / wall
			st := l.Stats()
			p.Batches, p.Fsyncs, p.WALBytes = st.Batches, st.Fsyncs, st.Bytes
			s.Close()
			l.Close()
		}
		if len(rep.WritePath) > 0 && p.UPS > 0 {
			p.Overhead = rep.WritePath[0].UPS / p.UPS
		} else {
			p.Overhead = 1
		}
		rep.WritePath = append(rep.WritePath, p)
	}

	// Recovery path: run the stream at each checkpoint cadence, stop it
	// WITHOUT the final checkpoint (the image a crash leaves), and time
	// the full recovery sequence back to a serving stream.
	for _, every := range recoveryCheckpointIntervals {
		dir, err := os.MkdirTemp("", "layph-recovery-")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
		cfg := wal.Config{Sync: wal.SyncOff, CheckpointEvery: every, Meta: "bench=recovery"}
		sg := base.Clone()
		s, l, _, err := runDurable(dir, sg, build(sg), cfg, micro, seq)
		if err != nil {
			return rep, fmt.Errorf("bench: recovery seed (every=%d): %w", every, err)
		}
		// Crash-style stop: close the stream and the log file, but cut no
		// final checkpoint — the WAL tail past the last periodic
		// checkpoint stays replayable. The engine graph mutated during
		// ingestion, which is why every phase builds on its own clone.
		if err := s.Close(); err != nil {
			return rep, err
		}
		if err := l.Close(); err != nil {
			return rep, err
		}

		start := time.Now()
		l2, rec, err := wal.Open(dir, cfg)
		if err != nil {
			return rep, fmt.Errorf("bench: recover (every=%d): %w", every, err)
		}
		if rec == nil {
			return rep, fmt.Errorf("bench: recover (every=%d): nothing to recover", every)
		}
		g := rec.Graph
		sys := build(g)
		rseq, updates := rec.CheckpointSeq, rec.CheckpointUpdates
		replayStart := time.Now()
		var replayed int64
		for _, r := range rec.Tail {
			applied := delta.Apply(g, r.Batch)
			if !applied.Empty() {
				sys.Update(applied)
			}
			rseq = r.Seq
			updates += uint64(len(r.Batch))
			replayed += int64(len(r.Batch))
		}
		replayMs := float64(time.Since(replayStart)) / float64(time.Millisecond)
		if err := l2.Start(rseq, updates, g, sys.States()); err != nil {
			return rep, fmt.Errorf("bench: recover (every=%d): %w", every, err)
		}
		s2 := stream.New(g, sys, stream.Config{
			MaxBatch: micro, MaxDelay: -1, Durability: l2,
			StartSeq: rseq, StartUpdates: updates,
		})
		total := float64(time.Since(start)) / float64(time.Millisecond)

		p := RecoveryPoint{
			CheckpointEvery: every,
			TailBatches:     int64(len(rec.Tail)),
			ReplayedUpdates: replayed,
			RecoverMillis:   total,
			LoadMillis:      float64(rec.LoadDuration) / float64(time.Millisecond),
			ReplayMillis:    replayMs,
		}
		if replayMs > 0 {
			p.ReplayUPS = float64(replayed) / (replayMs / 1000)
		}
		rep.Recovery = append(rep.Recovery, p)
		s2.Close()
		if err := l2.Close(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// WriteRecoveryJSON writes the report to path (pretty-printed, trailing
// newline) for regression tracking across PRs.
func WriteRecoveryJSON(path string, rep RecoveryReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RecoveryExperiment prints both tables and drops BENCH_recovery.json
// next to the invocation.
func RecoveryExperiment(w io.Writer, o Options) {
	rep, err := RunRecovery(o)
	if err != nil {
		fmt.Fprintf(w, "recovery experiment failed: %v\n", err)
		return
	}
	fmt.Fprintf(w, "Recovery (SSSP/Layph on UK, %d unit updates, micro-batch=%d, GOMAXPROCS=%d)\n",
		rep.Updates, rep.MicroBatch, rep.GOMAXPROCS)
	t := NewTable("mode", "updates/s", "batches", "fsyncs", "wal-bytes", "overhead")
	for _, p := range rep.WritePath {
		t.Row(p.Mode, p.UPS, p.Batches, p.Fsyncs, p.WALBytes, p.Overhead)
	}
	t.Print(w)
	fmt.Fprintln(w)
	t = NewTable("ckpt-every", "tail-batches", "replayed", "recover-ms", "load-ms", "replay-ms", "replay-ups")
	for _, p := range rep.Recovery {
		t.Row(p.CheckpointEvery, p.TailBatches, p.ReplayedUpdates, p.RecoverMillis, p.LoadMillis, p.ReplayMillis, p.ReplayUPS)
	}
	t.Print(w)
	if err := WriteRecoveryJSON(RecoveryJSONPath, rep); err != nil {
		fmt.Fprintf(w, "(could not write %s: %v)\n", RecoveryJSONPath, err)
	} else {
		fmt.Fprintf(w, "(wrote %s)\n", RecoveryJSONPath)
	}
}
