package kickstarter

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

func factory(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, engine.Options{Workers: 2})
}

func TestEquivalenceMinAlgorithms(t *testing.T) {
	for name, mk := range enginetest.MinAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "kickstarter/"+name, factory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceWithVertexUpdates(t *testing.T) {
	cfg := enginetest.DefaultConfig()
	cfg.VertexUpdates = true
	for name, mk := range enginetest.MinAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "kickstarter/"+name, factory, mk, cfg)
		})
	}
}

func TestRejectsNonMonotonic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for PageRank")
		}
	}()
	New(graph.New(1), algo.NewPageRank(0.85, 1e-6), engine.Options{})
}

func TestDeletionTrimsAndRecovers(t *testing.T) {
	// Diamond: 0->1->3 (short), 0->2->3 (long). Delete (1,3): 3 must be
	// trimmed and re-converge through 2.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 3)
	e := New(g, algo.NewSSSP(0), engine.Options{})
	if e.States()[3] != 2 {
		t.Fatalf("initial x3 = %v", e.States()[3])
	}
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 1, V: 3}})
	st := e.Update(applied)
	if st.Resets == 0 {
		t.Fatal("expected a trim")
	}
	if e.States()[3] != 6 {
		t.Fatalf("x3 = %v, want 6", e.States()[3])
	}
}

func TestDisconnection(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	e := New(g, algo.NewBFS(0), engine.Options{})
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: 1}})
	e.Update(applied)
	if !math.IsInf(e.States()[1], 1) || !math.IsInf(e.States()[2], 1) {
		t.Fatalf("stale states: %v", e.States())
	}
	// Reconnect with a different weight path.
	applied = delta.Apply(g, delta.Batch{{Kind: delta.AddEdge, U: 0, V: 2, W: 1}})
	e.Update(applied)
	if e.States()[2] != 1 {
		t.Fatalf("x2 = %v after reconnect", e.States()[2])
	}
}

func TestPullCountsActivations(t *testing.T) {
	// Diamond as in TestDeletionTrimsAndRecovers: the trimmed vertex still
	// has a valid in-edge, so the correction loop must pull (and count) it.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 3)
	e := New(g, algo.NewSSSP(0), engine.Options{})
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 1, V: 3}})
	st := e.Update(applied)
	if st.Activations == 0 {
		t.Fatal("pull correction should count activations")
	}
	if e.Name() != "kickstarter" {
		t.Fatal("name")
	}
}
