// Package kickstarter reimplements the algorithmic strategy of KickStarter
// (Vora et al., ASPLOS 2017): incremental computation for monotonic
// (min-semiring) algorithms via trimmed approximations. A dependency tree
// memoizes, for every vertex, the in-neighbor that determined its converged
// value. On edge deletions the invalidated dependency subtrees are trimmed
// (reset), and a synchronous pull-based correction loop recomputes trimmed
// vertices from all their in-neighbors until values settle.
//
// The defining difference from Ingress's memoization-path engine is the
// pull-based correction: every re-evaluated vertex aggregates over its whole
// in-edge list (one F application per in-edge), which is simpler and matches
// the published system's iterative value-correction, but performs measurably
// more edge activations than push-based revision messages — the gap the
// paper's Figures 1 and 6 report.
//
// Like the original system, this engine only supports algorithms with the
// single-dependency property (SSSP, BFS — not PageRank or PHP).
package kickstarter

import (
	"fmt"
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Engine is a KickStarter instance bound to one graph and one algorithm.
type Engine struct {
	g      *graph.Graph
	a      algo.Algorithm
	opt    engine.Options
	x      []float64
	parent []graph.VertexID
	// InitialStats records the cost of the initial batch run.
	InitialStats inc.Stats
}

// New builds the engine and runs the batch computation, memoizing the value
// dependency tree. It panics for non-idempotent algorithms, which violate
// the single-dependency requirement.
func New(g *graph.Graph, a algo.Algorithm, opt engine.Options) *Engine {
	if !a.Semiring().Idempotent() {
		panic(fmt.Sprintf("kickstarter: %s is not a single-dependency (idempotent) algorithm", a.Name()))
	}
	e := &Engine{g: g, a: a, opt: opt}
	start := time.Now()
	f := engine.BuildFrame(g, a)
	x0, m0 := engine.InitVectors(g, a)
	runOpt := opt
	runOpt.TrackParents = true
	res := engine.Run(f, a.Semiring(), x0, m0, runOpt)
	e.x = res.X
	e.parent = res.Parent
	e.InitialStats = inc.Stats{Activations: res.Activations, Rounds: res.Rounds, Duration: time.Since(start)}
	return e
}

// Name returns "kickstarter".
func (e *Engine) Name() string { return "kickstarter" }

// States returns the converged states (live view; do not mutate).
func (e *Engine) States() []float64 { return e.x }

// Update trims the dependency subtrees invalidated by the batch and runs the
// pull-based correction loop.
func (e *Engine) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	sr := e.a.Semiring()
	zero := sr.Zero()
	n := e.g.Cap()
	e.x = inc.GrowVectors(e.x, n, zero)
	e.parent = inc.GrowParents(e.parent, n)

	var st inc.Stats

	// Trim phase: tag and reset invalidated dependency subtrees (shared with
	// the other min-path engines). The deduced offers seed the worklist but
	// KickStarter re-derives values by pulling, so only the activation cost
	// of the deduction's offer scan is kept.
	d := inc.DeduceMin(e.x, e.parent, e.g, e.a, applied)
	st.Resets = len(d.ResetList)
	st.Activations += d.Activations

	inWork := make([]bool, n)
	var work []graph.VertexID
	push := func(v graph.VertexID) {
		if int(v) < n && !inWork[v] && e.g.Alive(v) {
			inWork[v] = true
			work = append(work, v)
		}
	}
	for _, v := range d.ResetList {
		push(v)
	}
	for _, v := range d.Active {
		push(v)
	}
	for _, ed := range applied.AddedEdges {
		push(ed.To)
	}
	for _, v := range applied.AddedVertices {
		e.x[v] = e.a.InitState(v)
		e.parent[v] = engine.NoParent
		push(v)
	}

	// Correction phase: synchronous pull-based re-evaluation. Each worklist
	// vertex recomputes its value over its full in-edge list; improvements
	// schedule the out-neighbors.
	for len(work) > 0 {
		st.Rounds++
		next := work[:0:0]
		for _, v := range work {
			inWork[v] = false
		}
		for _, v := range work {
			best := e.a.InitMessage(v)
			bestFrom := engine.NoParent
			for _, ie := range e.g.In(v) {
				u := ie.To
				if e.x[u] == zero {
					continue
				}
				offer := sr.Times(e.x[u], e.a.EdgeWeight(e.g, u, graph.Edge{To: v, W: ie.W}))
				st.Activations++
				if sr.Plus(best, offer) != best {
					best = offer
					bestFrom = u
				}
			}
			if best != e.x[v] {
				e.x[v] = best
				e.parent[v] = bestFrom
				for _, oe := range e.g.Out(v) {
					if !inWork[oe.To] {
						inWork[oe.To] = true
						next = append(next, oe.To)
					}
				}
			} else if e.parent[v] == engine.NoParent && best != zero && bestFrom != engine.NoParent {
				e.parent[v] = bestFrom
			}
		}
		work = next
	}
	st.Duration = time.Since(start)
	return st
}
