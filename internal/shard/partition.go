// Community-aware shard assignment: whole Layph communities are packed
// into K shards so almost all iteration stays shard-local and only
// skeleton-level boundary state crosses shards.
package shard

import (
	"sort"

	"layph/internal/community"
	"layph/internal/delta"
	"layph/internal/graph"
)

// unowned marks a vertex id no shard owns yet (never seen alive).
const unowned = int32(-1)

// buildOwners partitions g's live vertices into k shards: Louvain
// communities (the paper's dense-subgraph units) are packed whole, largest
// first, onto the currently lightest shard (greedy LPT), balancing by the
// weight of the edges each shard will host. An edge is charged to its
// target's community because shards store in-edges of the vertices they
// own. Dead ids stay unowned until they are first revived.
func buildOwners(g *graph.Graph, k int, ccfg community.Config) []int32 {
	owner := make([]int32, g.Cap())
	for i := range owner {
		owner[i] = unowned
	}
	p := community.Detect(g, ccfg)
	load := make([]float64, p.NumComms)
	g.Vertices(func(v graph.VertexID) {
		if c := p.Comm[v]; c >= 0 {
			load[c]++ // vertex charge spreads edgeless communities too
		}
	})
	g.Edges(func(u, v graph.VertexID, w float64) {
		if c := p.Comm[v]; c >= 0 {
			load[c] += w
		}
	})

	order := make([]int32, p.NumComms)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if load[a] != load[b] {
			return load[a] > load[b]
		}
		return a < b
	})

	shardLoad := make([]float64, k)
	assign := make([]int32, p.NumComms)
	for _, c := range order {
		best := 0
		for s := 1; s < k; s++ {
			if shardLoad[s] < shardLoad[best] {
				best = s
			}
		}
		assign[c] = int32(best)
		shardLoad[best] += load[c]
	}
	for v, c := range p.Comm {
		if c >= 0 {
			owner[v] = assign[c]
		}
	}
	return owner
}

// assignOwner picks a shard for a vertex first seen alive in this batch:
// the majority owner among its batch neighbors with known owners (ties to
// the lowest shard id), falling back to v mod K. New vertices are
// processed in ascending id order, so the choice is deterministic and
// earlier assignments of the same batch are visible to later ones.
func assignOwner(v graph.VertexID, k int, owner []int32, applied *delta.Applied) int32 {
	votes := make([]int, k)
	saw := false
	vote := func(u graph.VertexID) {
		if int(u) < len(owner) && owner[u] >= 0 {
			votes[owner[u]]++
			saw = true
		}
	}
	for _, e := range applied.AddedEdges {
		if e.From == v {
			vote(e.To)
		}
		if e.To == v {
			vote(e.From)
		}
	}
	if !saw {
		return int32(int(v) % k)
	}
	best := 0
	for s := 1; s < k; s++ {
		if votes[s] > votes[best] {
			best = s
		}
	}
	return int32(best)
}

// sortedVertices returns an ascending copy of vs.
func sortedVertices(vs []graph.VertexID) []graph.VertexID {
	out := append([]graph.VertexID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedEdges returns a copy of es ordered by (From, To).
func sortedEdges(es []graph.DeletedEdge) []graph.DeletedEdge {
	out := append([]graph.DeletedEdge(nil), es...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
