// Package shard implements community-aware multi-shard execution: the
// graph is partitioned into K balanced shards along Layph's community
// structure, one independent incremental engine runs per shard in its own
// goroutine, and cross-shard edges are routed through boundary/mirror
// vertices whose states are exchanged at skeleton level in
// iterate-until-global-fixpoint rounds.
//
// # Architecture
//
// Every shard graph spans the full global id space (vertex liveness is
// broadcast so capacities stay aligned) but stores exactly the in-edges
// of the vertices it owns. A cross-shard edge u→v therefore lives in
// owner(v)'s shard with u as a MIRROR: a pinned vertex whose state is the
// value owner(u) last published. Because a shard sees every in-edge of
// its owned vertices, its local fixpoint is an exact block relaxation of
// the global equations over its block, with the mirrors as boundary
// conditions — so iterating "run all shards, exchange changed boundary
// values, repeat" converges to the same fixpoint as a single engine
// (exactly for min-semiring workloads, within the algorithm's tolerance
// for sum-semiring ones).
//
// # Determinism
//
// Shard engines run concurrently but independently; their results meet
// only at the merge barrier, which collects boundary changes in shard
// order and sorted vertex order. With the per-shard worker count fixed,
// the same input stream therefore reproduces the same states — the same
// contract as layph.Config.Threads.
//
// # Deletions under the min scheme
//
// A deleted dependency edge must invalidate its downstream dependency
// subtree even where that subtree crosses shards, and recomputation must
// not resurrect values through stale mirror pins that were themselves
// derived from the invalidated region (the classic ghost-cycle problem of
// distributed KickStarter). The router therefore runs a tag-closure phase
// before round 0: local invalidation seeds are cascaded through every
// shard's dependency forest, crossing shards at mirrored boundary
// vertices, until closed; tagged mirrors get their pins zeroed for the
// recompute and owners republish their post-recompute values
// unconditionally.
package shard

import (
	"fmt"
	"sync"
	"time"

	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Options tunes a sharded execution group.
type Options struct {
	// Shards is K, the number of partitioned engines (0 or 1 = one shard,
	// which is the plain single-engine path plus the routing layer).
	Shards int
	// Threads is the worker count of EACH shard engine (0 = GOMAXPROCS).
	// Shards themselves always run in their own goroutines.
	Threads int
	// Community tunes the Louvain detection used to pack shards.
	Community community.Config
	// MaxRounds caps the boundary-exchange rounds per batch (0 = 1000).
	// Exceeding it panics: it means the exchange failed to reach a global
	// fixpoint, which would otherwise serve silently wrong states.
	MaxRounds int
}

func (o Options) shards() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 1000
}

// Info is a point-in-time summary of one shard, exposed via /metrics.
type Info struct {
	Shard         int   `json:"shard"`
	OwnedVertices int   `json:"owned_vertices"`
	Edges         int   `json:"edges"`
	Mirrors       int   `json:"mirrors"`
	Activations   int64 `json:"activations"`
	Rounds        int   `json:"rounds"`
}

// Group is a set of partitioned engines behind the inc.System interface:
// the stream applies batches to the global graph as usual and calls
// Update, which routes each batch's slice to its shard, drives the
// exchange rounds to the global fixpoint, and maintains the merged state
// vector that States and snapshots serve.
type Group struct {
	global  *graph.Graph
	base    algo.Algorithm
	sr      algo.Semiring
	zero    float64
	opt     Options
	k       int
	workers int
	idem    bool

	owner     []int32
	engines   []*unit
	mirror    [][]bool  // [shard][vertex]: shard holds out-edges of a vertex it doesn't own
	published []float64 // last boundary value broadcast per vertex
	merged    []float64 // the States() vector, assembled at each merge barrier

	// InitialStats records the cost of construction including the initial
	// cross-shard exchange.
	InitialStats inc.Stats

	mu    sync.Mutex
	infos []Info
}

// New partitions g into opt.Shards community-aware shards, builds one
// engine per shard, and exchanges boundary values to the initial global
// fixpoint. Like every engine constructor, it runs the initial batch
// computation; mutate g only via delta.Apply + Update afterwards.
func New(g *graph.Graph, base algo.Algorithm, opt Options) *Group {
	start := time.Now()
	k := opt.shards()
	gr := &Group{
		global: g, base: base, sr: base.Semiring(), opt: opt, k: k,
		workers: opt.Threads, idem: base.Semiring().Idempotent(),
	}
	gr.zero = gr.sr.Zero()
	gr.owner = buildOwners(g, k, opt.Community)

	cap := g.Cap()
	shardGraphs := make([]*graph.Graph, k)
	for s := 0; s < k; s++ {
		gs := graph.New(cap)
		for v := 0; v < cap; v++ {
			if !g.Alive(graph.VertexID(v)) {
				gs.DeleteVertex(graph.VertexID(v))
			}
		}
		shardGraphs[s] = gs
	}
	gr.mirror = make([][]bool, k)
	for s := range gr.mirror {
		gr.mirror[s] = make([]bool, cap)
	}
	g.Edges(func(u, v graph.VertexID, w float64) {
		s := gr.owner[v]
		shardGraphs[s].AddEdge(u, v, w)
		if gr.owner[u] != s {
			gr.mirror[s][u] = true
		}
	})

	gr.engines = make([]*unit, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gr.engines[s] = newUnit(int32(s), gr, shardGraphs[s])
		}(s)
	}
	wg.Wait()

	gr.published = make([]float64, cap)
	gr.merged = make([]float64, cap)
	for i := range gr.published {
		gr.published[i] = gr.zero
	}

	// Initial exchange: publish every shard's local fixpoint boundary
	// values and iterate pin rounds until nothing changes.
	cur := make([][]pinUpdate, k)
	var boundary int64
	for s := 0; s < k; s++ {
		for v := 0; v < cap; v++ {
			vid := graph.VertexID(v)
			if gr.owner[v] != int32(s) {
				continue
			}
			nx := gr.engines[s].x[v]
			if !gr.significant(nx, gr.published[v]) {
				continue
			}
			gr.published[v] = nx
			boundary += gr.fanOut(vid, nx, cur)
		}
	}
	rounds, pins, _ := gr.exchange(nil, cur, nil, nil, false)
	gr.assembleMerged()
	gr.refreshInfos()

	var initAct int64
	var initRounds int
	for _, u := range gr.engines {
		initAct += u.activations
		initRounds += u.rounds
	}
	gr.InitialStats = inc.Stats{
		Activations:  initAct,
		Rounds:       initRounds,
		Duration:     time.Since(start),
		ShardRounds:  int64(rounds),
		BoundaryPins: boundary + pins,
	}
	return gr
}

// Name identifies the engine.
func (gr *Group) Name() string { return "sharded" }

// NumShards returns K.
func (gr *Group) NumShards() int { return gr.k }

// Owner returns the shard owning v, or -1 if v has never been alive.
func (gr *Group) Owner(v graph.VertexID) int {
	if int(v) >= len(gr.owner) {
		return -1
	}
	return int(gr.owner[v])
}

// States returns the merged global state vector (live view; do not
// mutate). It is reassembled at each Update's merge barrier, so snapshots
// cut between batches span all shards consistently — /query scatter-gather
// reads come from one exchange round by construction.
func (gr *Group) States() []float64 { return gr.merged }

// ShardInfos returns a per-shard summary (safe for concurrent use with
// Update; /metrics calls this from HTTP goroutines).
func (gr *Group) ShardInfos() []Info {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	out := make([]Info, len(gr.infos))
	copy(out, gr.infos)
	return out
}

// Update routes the applied batch to the shards and iterates boundary
// exchanges to the global fixpoint. The global graph must already reflect
// the batch (delta.Apply first), exactly as for every other engine.
func (gr *Group) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	cap := gr.global.Cap()
	gr.growTo(cap)

	added := sortedVertices(applied.AddedVertices)
	for _, v := range added {
		if gr.owner[v] < 0 {
			gr.owner[v] = assignOwner(v, gr.k, gr.owner, applied)
		}
	}

	removed := sortedVertices(applied.RemovedVertices)
	addedE := sortedEdges(applied.AddedEdges)
	removedE := sortedEdges(applied.RemovedEdges)

	subs := make([]*delta.Applied, gr.k)
	for s := range subs {
		subs[s] = &delta.Applied{AddedVertices: added, RemovedVertices: removed}
	}
	for _, e := range removedE {
		s := gr.owner[e.To]
		subs[s].RemovedEdges = append(subs[s].RemovedEdges, e)
	}
	for _, e := range addedE {
		s := gr.owner[e.To]
		subs[s].AddedEdges = append(subs[s].AddedEdges, e)
	}

	var globalTouched map[graph.VertexID]struct{}
	if !gr.idem {
		globalTouched = inc.TouchedSources(applied)
	}

	// Min scheme: close the cross-shard invalidation tags BEFORE any
	// recomputation, so no shard rebuilds a value out of mirror pins that
	// are themselves about to be invalidated (ghost cycles).
	var extraResets [][]graph.VertexID
	if gr.idem && (len(removedE) > 0 || len(removed) > 0) {
		extraResets = gr.tagClosure(subs)
	}

	// Round-0 pin syncs for newly mirrored vertices: a cross-shard edge
	// inserted toward a new shard needs the source's current published
	// value there before the first run.
	cur := make([][]pinUpdate, gr.k)
	var boundary int64
	for _, e := range addedE {
		s := gr.owner[e.To]
		u := e.From
		if gr.owner[u] == s || gr.mirror[s][u] {
			continue
		}
		gr.mirror[s][u] = true
		if x := gr.published[u]; x != gr.zero {
			cur[s] = append(cur[s], pinUpdate{v: u, x: x})
			boundary++
		}
	}

	rounds, pins, agg := gr.exchange(subs, cur, extraResets, globalTouched, true)
	gr.assembleMerged()
	gr.refreshInfos()

	agg.Duration = time.Since(start)
	agg.ShardRounds = int64(rounds)
	agg.BoundaryPins = boundary + pins
	return agg
}

// exchange drives the iterate-until-global-fixpoint loop: every shard
// engine runs one round in its own goroutine, the deterministic merge
// barrier collects boundary changes in shard-then-vertex order, and the
// changed values become the next round's pins. Round 0 carries the
// sub-batches (when hasBatch); later rounds are pin-only. extraResets is
// consumed in round 0 only.
func (gr *Group) exchange(subs []*delta.Applied, cur [][]pinUpdate,
	extraResets [][]graph.VertexID, globalTouched map[graph.VertexID]struct{},
	hasBatch bool) (rounds int, pins int64, agg inc.Stats) {
	stats := make([]inc.Stats, gr.k)
	cands := make([][]graph.VertexID, gr.k)
	targetCap := gr.global.Cap()
	for {
		if !hasBatch || rounds > 0 {
			empty := true
			for _, p := range cur {
				if len(p) > 0 {
					empty = false
					break
				}
			}
			if empty {
				break
			}
		}
		if rounds >= gr.opt.maxRounds() {
			panic(fmt.Sprintf("shard: boundary exchange did not reach a fixpoint within %d rounds", gr.opt.maxRounds()))
		}
		var wg sync.WaitGroup
		for s := 0; s < gr.k; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				u := gr.engines[s]
				var sub *delta.Applied
				var resets []graph.VertexID
				if rounds == 0 && hasBatch {
					sub = subs[s]
					u.apply(sub, targetCap)
					if extraResets != nil {
						resets = extraResets[s]
					}
				}
				stats[s], cands[s] = u.update(sub, cur[s], resets, globalTouched)
			}(s)
		}
		wg.Wait()

		next := make([][]pinUpdate, gr.k)
		for s := 0; s < gr.k; s++ {
			agg.Activations += stats[s].Activations
			agg.Rounds += stats[s].Rounds
			agg.Resets += stats[s].Resets
			for _, v := range sortedVertices(cands[s]) {
				if int(v) >= len(gr.owner) || gr.owner[v] != int32(s) {
					continue
				}
				nx := gr.engines[s].x[v]
				if !gr.significant(nx, gr.published[v]) {
					continue
				}
				gr.published[v] = nx
				if !gr.global.Alive(v) {
					continue // every shard already zeroed its local copy
				}
				pins += gr.fanOut(v, nx, next)
			}
		}
		cur = next
		rounds++
	}
	return rounds, pins, agg
}

// fanOut enqueues a boundary value to every shard mirroring v and returns
// how many pins it sent.
func (gr *Group) fanOut(v graph.VertexID, x float64, out [][]pinUpdate) int64 {
	var n int64
	for t := 0; t < gr.k; t++ {
		if int32(t) != gr.owner[v] && gr.mirror[t][v] {
			out[t] = append(out[t], pinUpdate{v: v, x: x})
			n++
		}
	}
	return n
}

// significant reports whether a boundary value moved enough to republish:
// exact inequality for the min scheme, beyond the algorithm's tolerance
// for the sum scheme (sub-tolerance drift is exactly the noise the engine
// itself drops, so the exchange terminates).
func (gr *Group) significant(nx, old float64) bool {
	if gr.idem {
		return nx != old
	}
	d := nx - old
	if d < 0 {
		d = -d
	}
	return d > gr.base.Tolerance()
}

// tagClosure computes the cross-shard invalidation closure of the min
// scheme: each shard's local seeds (removed dependency edges, removed
// vertices) cascade down its dependency forest; when a tagged vertex is
// mirrored elsewhere, the tag crosses into those shards and cascades
// there too. Owned tagged boundary vertices have their published value
// reset to zero so their post-recompute value is republished even when it
// recovers unchanged. The per-shard result lists the MIRRORS each shard
// must invalidate (its own seeds are rediscovered by DeduceMin).
func (gr *Group) tagClosure(subs []*delta.Applied) [][]graph.VertexID {
	cap := gr.global.Cap()
	// Dependency children per shard, from the pre-batch parent arrays.
	children := make([]map[graph.VertexID][]graph.VertexID, gr.k)
	for s, u := range gr.engines {
		m := make(map[graph.VertexID][]graph.VertexID)
		for v, p := range u.parent {
			if p != engine.NoParent {
				m[p] = append(m[p], graph.VertexID(v))
			}
		}
		children[s] = m
	}
	tagged := make([][]bool, gr.k)
	for s := range tagged {
		tagged[s] = make([]bool, cap)
	}
	type ev struct {
		s int
		v graph.VertexID
	}
	var queue []ev
	push := func(s int, v graph.VertexID) {
		if int(v) < cap && !tagged[s][v] {
			tagged[s][v] = true
			queue = append(queue, ev{s, v})
		}
	}
	for s, u := range gr.engines {
		for _, v := range u.localTagSeeds(subs[s]) {
			push(s, v)
		}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, c := range children[e.s][e.v] {
			push(e.s, c)
		}
		if gr.owner[e.v] == int32(e.s) {
			for t := 0; t < gr.k; t++ {
				if t != e.s && gr.mirror[t][e.v] {
					push(t, e.v)
				}
			}
			gr.published[e.v] = gr.zero
		}
	}
	out := make([][]graph.VertexID, gr.k)
	for s := 0; s < gr.k; s++ {
		for v := 0; v < cap; v++ {
			if tagged[s][v] && gr.owner[v] != int32(s) {
				out[s] = append(out[s], graph.VertexID(v))
			}
		}
	}
	return out
}

// growTo extends the owner table, mirror bitmaps and merged vectors to
// the global capacity.
func (gr *Group) growTo(cap int) {
	for len(gr.owner) < cap {
		gr.owner = append(gr.owner, unowned)
	}
	for s := range gr.mirror {
		for len(gr.mirror[s]) < cap {
			gr.mirror[s] = append(gr.mirror[s], false)
		}
	}
	gr.published = inc.GrowVectors(gr.published, cap, gr.zero)
	gr.merged = inc.GrowVectors(gr.merged, cap, gr.zero)
}

// assembleMerged rebuilds the global state vector from the owners' local
// vectors; unowned (never-alive) ids read as the semiring zero, matching
// what a single engine holds for them.
func (gr *Group) assembleMerged() {
	for v := range gr.merged {
		s := gr.owner[v]
		if s >= 0 && v < len(gr.engines[s].x) {
			gr.merged[v] = gr.engines[s].x[v]
		} else {
			gr.merged[v] = gr.zero
		}
	}
}

// refreshInfos recomputes the per-shard summaries under the mutex.
func (gr *Group) refreshInfos() {
	infos := make([]Info, gr.k)
	for s := 0; s < gr.k; s++ {
		infos[s] = Info{
			Shard:       s,
			Edges:       gr.engines[s].gs.NumEdges(),
			Activations: gr.engines[s].activations,
			Rounds:      gr.engines[s].rounds,
		}
	}
	for v, o := range gr.owner {
		if o >= 0 && gr.global.Alive(graph.VertexID(v)) {
			infos[o].OwnedVertices++
		}
	}
	for s := 0; s < gr.k; s++ {
		for _, m := range gr.mirror[s] {
			if m {
				infos[s].Mirrors++
			}
		}
	}
	gr.mu.Lock()
	gr.infos = infos
	gr.mu.Unlock()
}
