package shard

import (
	"fmt"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

// factories returns one NamedFactory per shard count; each builds an
// independent sharded group over its own graph clone.
func factories(counts ...int) []enginetest.NamedFactory {
	var out []enginetest.NamedFactory
	for _, k := range counts {
		k := k
		out = append(out, enginetest.NamedFactory{
			Name: fmt.Sprintf("sharded-%d", k),
			New: func(g *graph.Graph, a algo.Algorithm) inc.System {
				return New(g, a, Options{Shards: k, Threads: 2})
			},
		})
	}
	return out
}

// TestShardedDifferential runs every workload through the cross-engine
// differential fuzzer with Shards in {1, 2, 4}: after each random batch,
// each shard count must match a from-scratch restart on the updated graph
// (exactly for min-semiring workloads, within tolerance otherwise).
func TestShardedDifferential(t *testing.T) {
	cfg := enginetest.DefaultDifferentialConfig()
	if testing.Short() {
		cfg = enginetest.ShortDifferentialConfig()
	}
	engines := factories(1, 2, 4)
	for name, mk := range enginetest.AllAlgorithms() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			enginetest.RunDifferential(t, engines, mk, cfg)
		})
	}
}

// TestShardedChurny is the acceptance stream: ~10k seeded edge and vertex
// updates in churny batches, checked against the restart oracle after
// every batch for each shard count. Under -short the stream is trimmed so
// the race-detector job stays within budget.
func TestShardedChurny(t *testing.T) {
	cfg := enginetest.DifferentialConfig{
		Seeds:       []int64{42},
		Vertices:    500,
		Batches:     25,
		BatchSize:   400,
		AddVertices: 6,
		DelVertices: 5,
		Atol:        1e-6,
		Weighted:    true,
	}
	if testing.Short() {
		cfg.Batches = 5
		cfg.BatchSize = 100
	}
	engines := factories(1, 2, 4)
	for _, name := range []string{"sssp", "pagerank"} {
		mk := enginetest.AllAlgorithms()[name]
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			enginetest.RunDifferential(t, engines, mk, cfg)
		})
	}
}

// ring builds a weighted directed cycle 0→1→…→n-1→0 plus a chord web so
// communities are non-trivial.
func ring(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 1)
		if v%3 == 0 {
			g.AddEdge(graph.VertexID(v), graph.VertexID((v+5)%n), 2.5)
		}
	}
	return g
}

// check asserts a group's live states match a batch restart on g.
func check(t *testing.T, g *graph.Graph, gr *Group, a algo.Algorithm, msg string) {
	t.Helper()
	want := engine.RunBatch(g, a, engine.Options{Workers: 2})
	got := gr.States()
	ok := true
	g.Vertices(func(v graph.VertexID) {
		if ok && !algo.StatesClose(got[v:v+1], want.X[v:v+1], 1e-6) {
			ok = false
			t.Errorf("%s: vertex %d: got %v want %v", msg, v, got[v], want.X[v])
		}
	})
}

// TestRouterAdversarial drives one group through the batch shapes a shard
// router must not mishandle: edges landing on brand-new vertices beyond
// the current capacity, cross-shard inserts and deletes of the same edges,
// a batch that nets out to nothing, and deletion of a boundary vertex.
func TestRouterAdversarial(t *testing.T) {
	for _, mkName := range []string{"sssp", "pagerank"} {
		mk := enginetest.AllAlgorithms()[mkName]
		t.Run(mkName, func(t *testing.T) {
			g := ring(60)
			gr := New(g, mk(), Options{Shards: 3, Threads: 2})
			check(t, g, gr, mk(), "initial")

			steps := []struct {
				name  string
				batch delta.Batch
			}{
				{"unknown-vertices", delta.Batch{
					// Edge endpoints far past the current capacity: the graph
					// grows, the router must assign owners to every implied
					// intermediate vertex.
					{Kind: delta.AddVertex, U: 75},
					{Kind: delta.AddEdge, U: 10, V: 75, W: 0.5},
					{Kind: delta.AddEdge, U: 75, V: 82, W: 0.25},
				}},
				{"cross-shard-churn", func() delta.Batch {
					// Delete and re-insert edges that cross shard boundaries,
					// plus fresh cross-shard chords.
					var b delta.Batch
					for v := 0; v < 60; v += 7 {
						u, w := graph.VertexID(v), graph.VertexID((v+1)%60)
						if gr.Owner(u) != gr.Owner(w) {
							b = append(b, delta.Update{Kind: delta.DelEdge, U: u, V: w})
							b = append(b, delta.Update{Kind: delta.AddEdge, U: u, V: w, W: 3})
						}
					}
					b = append(b,
						delta.Update{Kind: delta.AddEdge, U: 2, V: 41, W: 0.1},
						delta.Update{Kind: delta.AddEdge, U: 41, V: 2, W: 0.1},
					)
					return b
				}()},
				{"net-nothing", delta.Batch{
					{Kind: delta.AddEdge, U: 5, V: 50, W: 9},
					{Kind: delta.DelEdge, U: 5, V: 50},
				}},
				{"boundary-vertex-delete", func() delta.Batch {
					// Remove a vertex that is mirrored somewhere (any vertex
					// with a cross-shard out-edge qualifies on this ring).
					for v := 1; v < 60; v++ {
						u, w := graph.VertexID(v), graph.VertexID((v+1)%60)
						if gr.Owner(u) != gr.Owner(w) {
							return delta.Batch{{Kind: delta.DelVertex, U: u}}
						}
					}
					return nil
				}()},
			}
			for _, st := range steps {
				applied := delta.Apply(g, st.batch)
				gr.Update(applied)
				check(t, g, gr, mk(), st.name)
			}
		})
	}
}

// TestEmptyShards asks for more shards than the graph has communities:
// some shards own nothing, and the group must still match the restart
// oracle through updates.
func TestEmptyShards(t *testing.T) {
	g := graph.New(8)
	for v := 0; v < 7; v++ {
		g.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	mk := enginetest.AllAlgorithms()["sssp"]
	gr := New(g, mk(), Options{Shards: 8, Threads: 1})
	check(t, g, gr, mk(), "initial")

	empty := 0
	for _, in := range gr.ShardInfos() {
		if in.OwnedVertices == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatalf("expected at least one empty shard with 8 shards over 8 vertices, infos=%+v", gr.ShardInfos())
	}

	applied := delta.Apply(g, delta.Batch{
		{Kind: delta.DelEdge, U: 3, V: 4},
		{Kind: delta.AddEdge, U: 3, V: 4, W: 7},
		{Kind: delta.AddEdge, U: 0, V: 7, W: 0.5},
	})
	gr.Update(applied)
	check(t, g, gr, mk(), "after update")
}

// TestOwnerAndInfos checks the partition invariants: every live vertex
// has exactly one owner in range, the per-shard summaries account for all
// live vertices and all edges, and Owner is total (out-of-range ids map
// to -1).
func TestOwnerAndInfos(t *testing.T) {
	g := ring(50)
	gr := New(g, algo.NewSSSP(0), Options{Shards: 4, Threads: 1})

	live, owned, edges := 0, 0, 0
	g.Vertices(func(v graph.VertexID) {
		live++
		if o := gr.Owner(v); o < 0 || o >= gr.NumShards() {
			t.Fatalf("vertex %d: owner %d out of range", v, o)
		}
	})
	for _, in := range gr.ShardInfos() {
		owned += in.OwnedVertices
		edges += in.Edges
	}
	if owned != live {
		t.Fatalf("shard infos account for %d owned vertices, want %d live", owned, live)
	}
	if edges != g.NumEdges() {
		t.Fatalf("shard infos account for %d edges, want %d", edges, g.NumEdges())
	}
	if got := gr.Owner(graph.VertexID(10_000)); got != -1 {
		t.Fatalf("Owner(out of range) = %d, want -1", got)
	}
	if gr.Name() != "sharded" {
		t.Fatalf("Name() = %q", gr.Name())
	}
}
