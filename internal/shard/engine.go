package shard

import (
	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// pinUpdate carries an owner's published state to a shard that mirrors
// the vertex.
type pinUpdate struct {
	v graph.VertexID
	x float64
}

// shardAlgo adapts the base algorithm to one shard's view: semiring
// weights are computed against the GLOBAL graph (PageRank's d/N⁺(u) and
// PHP's d·w/W⁺(u) depend on the source's global degree, which the shard
// graph does not see), owned vertices keep their real initial state and
// root message, and mirrors are pinned — their root message is the pin
// value the owner last published, their initial state the semiring zero.
// The router only mutates the global graph between engine runs, so the
// concurrent reads here are safe.
type shardAlgo struct {
	u *unit
}

func (s shardAlgo) Name() string            { return s.u.base.Name() }
func (s shardAlgo) Semiring() algo.Semiring { return s.u.base.Semiring() }
func (s shardAlgo) Tolerance() float64      { return s.u.base.Tolerance() }

func (s shardAlgo) EdgeWeight(_ *graph.Graph, u graph.VertexID, e graph.Edge) float64 {
	return s.u.base.EdgeWeight(s.u.grp.global, u, e)
}

func (s shardAlgo) InitState(v graph.VertexID) float64 {
	if s.u.owned(v) {
		return s.u.base.InitState(v)
	}
	return s.u.zero
}

func (s shardAlgo) InitMessage(v graph.VertexID) float64 {
	if s.u.owned(v) {
		return s.u.base.InitMessage(v)
	}
	if int(v) < len(s.u.pins) {
		return s.u.pins[v]
	}
	return s.u.zero
}

// unit is one shard's engine: an Ingress-style incremental core over the
// shard graph (which holds every in-edge of the vertices the shard owns),
// extended with pinned mirror vertices. The invariant between runs is
// x[m] == pins[m] for every mirror m; mirrors have no in-edges here, so
// only pin updates ever move them.
type unit struct {
	id     int32
	grp    *Group
	gs     *graph.Graph
	base   algo.Algorithm
	sr     algo.Semiring
	zero   float64
	tol    float64
	frame  *engine.Frame
	x      []float64
	parent []graph.VertexID // idempotent scheme only
	pins   []float64
	wrap   shardAlgo

	// cumulative counters for Info
	activations int64
	rounds      int
}

func (u *unit) owned(v graph.VertexID) bool {
	o := u.grp.owner
	return int(v) < len(o) && o[v] == u.id
}

// newUnit builds the shard graph's engine and runs the initial batch
// computation to its LOCAL fixpoint (all pins zero); the group's
// construction exchange then iterates pins to the global fixpoint.
func newUnit(id int32, grp *Group, gs *graph.Graph) *unit {
	u := &unit{
		id: id, grp: grp, gs: gs, base: grp.base,
		sr: grp.sr, zero: grp.sr.Zero(), tol: grp.base.Tolerance(),
	}
	u.wrap = shardAlgo{u: u}
	u.pins = make([]float64, gs.Cap())
	for i := range u.pins {
		u.pins[i] = u.zero
	}
	u.frame = engine.BuildFrame(gs, u.wrap)
	x0, m0 := engine.InitVectors(gs, u.wrap)
	res := engine.Run(u.frame, u.sr, x0, m0, engine.Options{
		Workers:      grp.workers,
		Tolerance:    u.tol,
		TrackParents: u.sr.Idempotent(),
	})
	u.x = res.X
	u.parent = res.Parent
	u.activations += res.Activations
	u.rounds += res.Rounds
	return u
}

// apply replays the per-shard slice of a net batch onto the shard graph.
// Vertex operations are broadcast to every shard (aliveness and capacity
// stay aligned with the global graph), edge lists are pre-filtered to
// edges this shard hosts. Capacity grown for ids that were created and
// re-deleted within the batch is padded with dead placeholders.
func (u *unit) apply(sub *delta.Applied, targetCap int) {
	for u.gs.Cap() < targetCap {
		id := u.gs.AddVertex()
		u.gs.DeleteVertex(id)
	}
	for _, v := range sub.AddedVertices {
		if !u.gs.Alive(v) {
			u.gs.ReviveVertex(v)
		}
	}
	for _, e := range sub.RemovedEdges {
		u.gs.DeleteEdge(e.From, e.To)
	}
	for _, v := range sub.RemovedVertices {
		u.gs.DeleteVertex(v)
	}
	for _, e := range sub.AddedEdges {
		u.gs.AddEdge(e.From, e.To, e.W)
	}
}

// update runs one exchange round on this shard: apply the local sub-batch
// (round 0 only; nil on pin-only rounds), absorb incoming pin updates, and
// iterate to the shard-local fixpoint. It returns the vertices whose state
// may have changed — the router filters them down to owned boundary
// vertices and fans their new values out as the next round's pins.
//
// Pin semantics per scheme:
//
//   - sum: a pin change old→new is the exact inverse-delta message
//     (new − old) injected at the mirror; the engine accumulates it into
//     the mirror's state and propagates the delta over its out-edges.
//   - min: an improving pin is folded into the mirror's pending offers; a
//     worsening pin is handled like a deleted dependency — the mirror is
//     listed as removed so DeduceMin resets its dependency subtree, and
//     the mirror re-seeds from its root message, which IS the new pin
//     (shardAlgo.InitMessage). extraResets lists mirrors invalidated by
//     the router's cross-shard tag closure; their pins are zeroed so no
//     stale cyclic support survives (the owner republishes after its own
//     recompute).
func (u *unit) update(sub *delta.Applied, pins []pinUpdate, extraResets []graph.VertexID,
	globalTouched map[graph.VertexID]struct{}) (inc.Stats, []graph.VertexID) {
	n := u.gs.Cap()
	u.x = inc.GrowVectors(u.x, n, u.zero)
	u.pins = inc.GrowVectors(u.pins, n, u.zero)

	empty := sub == nil
	if empty {
		sub = &delta.Applied{}
	}
	var oldLists map[graph.VertexID][]engine.WEdge
	if !empty {
		touched := inc.TouchedSources(sub)
		if !u.sr.Idempotent() {
			// Degree-coupled weights: a source's out-list change in ANY
			// shard reweights its edges here, so refresh against the
			// global touched set (a superset of the local one).
			touched = globalTouched
		}
		oldLists = inc.RefreshFrame(u.frame, u.gs, u.wrap, touched)
	}

	var st inc.Stats
	var candidates []graph.VertexID
	if u.sr.Idempotent() {
		u.parent = inc.GrowParents(u.parent, n)
		pre := append([]float64(nil), u.x...)

		eff := *sub
		var improved []pinUpdate
		var worsened []graph.VertexID
		for _, m := range extraResets {
			u.pins[m] = u.zero
			worsened = append(worsened, m)
		}
		for _, p := range pins {
			old := u.pins[p.v]
			if p.x == old {
				continue
			}
			u.pins[p.v] = p.x
			if u.sr.Plus(old, p.x) == p.x {
				improved = append(improved, p)
			} else {
				worsened = append(worsened, p.v)
			}
		}
		if len(worsened) > 0 {
			rv := make([]graph.VertexID, 0, len(eff.RemovedVertices)+len(worsened))
			rv = append(rv, eff.RemovedVertices...)
			rv = append(rv, worsened...)
			eff.RemovedVertices = rv
		}

		d := inc.DeduceMin(u.x, u.parent, u.gs, u.wrap, &eff)
		for _, p := range improved {
			if u.sr.Plus(u.x[p.v], p.x) == u.x[p.v] {
				continue // mirror already at least as good
			}
			already := d.Pending[p.v] != u.zero
			d.Pending[p.v] = u.sr.Plus(d.Pending[p.v], p.x)
			if !already {
				d.Active = append(d.Active, p.v)
			}
		}
		res := engine.Run(u.frame, u.sr, u.x, d.Pending, engine.Options{
			Workers:       u.grp.workers,
			Tolerance:     u.tol,
			InitialActive: d.Active,
			TrackChanged:  true,
		})
		u.x = res.X
		inc.RepairParents(u.x, pre, d.ResetList, u.parent, u.gs, u.wrap)
		candidates = append(res.Changed, d.ResetList...)
		st = inc.Stats{
			Activations: d.Activations + res.Activations,
			Rounds:      res.Rounds,
			Resets:      len(d.ResetList),
		}
	} else {
		var pending []float64
		var dedAct int64
		if !empty {
			pending, dedAct = inc.SumDeduction(u.x, oldLists, u.frame, u.wrap, sub)
		} else {
			pending = make([]float64, len(u.x))
		}
		for _, p := range pins {
			old := u.pins[p.v]
			if p.x == old {
				continue
			}
			u.pins[p.v] = p.x
			pending[p.v] += p.x - old
		}
		res := engine.Run(u.frame, u.sr, u.x, pending, engine.Options{
			Workers:      u.grp.workers,
			Tolerance:    u.tol,
			TrackChanged: true,
		})
		u.x = res.X
		for _, v := range sub.RemovedVertices {
			u.x[v] = u.zero
			u.pins[v] = u.zero
		}
		candidates = append(res.Changed, sub.RemovedVertices...)
		st = inc.Stats{
			Activations: dedAct + res.Activations,
			Rounds:      res.Rounds,
		}
	}
	if u.sr.Idempotent() {
		for _, v := range sub.RemovedVertices {
			u.pins[v] = u.zero
		}
	}
	u.activations += st.Activations
	u.rounds += st.Rounds
	return st, candidates
}

// localTagSeeds returns the vertices this shard's sub-batch invalidates
// directly: targets whose dependency parent is the source of a removed
// edge, plus removed vertices. The router grows these seeds to the global
// cross-shard reset closure before round 0 (min scheme only).
func (u *unit) localTagSeeds(sub *delta.Applied) []graph.VertexID {
	var seeds []graph.VertexID
	for _, e := range sub.RemovedEdges {
		if int(e.To) < len(u.parent) && u.parent[e.To] == e.From {
			seeds = append(seeds, e.To)
		}
	}
	seeds = append(seeds, sub.RemovedVertices...)
	return seeds
}
