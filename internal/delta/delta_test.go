package delta

import (
	"testing"
	"testing/quick"

	"layph/internal/gen"
	"layph/internal/graph"
)

func TestApplyEdgeUpdates(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	b := Batch{
		{Kind: AddEdge, U: 1, V: 2, W: 3},
		{Kind: DelEdge, U: 0, V: 1},
		{Kind: DelEdge, U: 2, V: 3},       // missing: no-op
		{Kind: AddEdge, U: 1, V: 2, W: 3}, // identical re-add: no-op
	}
	a := Apply(g, b)
	if len(a.AddedEdges) != 1 || len(a.RemovedEdges) != 1 {
		t.Fatalf("applied = %+v", a)
	}
	if _, ok := g.HasEdge(0, 1); ok {
		t.Fatal("edge (0,1) survived deletion")
	}
	if w, ok := g.HasEdge(1, 2); !ok || w != 3 {
		t.Fatal("edge (1,2) missing")
	}
}

func TestApplyWeightChange(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	a := Apply(g, Batch{{Kind: AddEdge, U: 0, V: 1, W: 9}})
	if len(a.AddedEdges) != 1 || len(a.RemovedEdges) != 1 {
		t.Fatalf("weight change should record remove+add, got %+v", a)
	}
	if a.RemovedEdges[0].W != 1 || a.AddedEdges[0].W != 9 {
		t.Fatalf("weights: %+v", a)
	}
}

func TestApplyVertexUpdates(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	b := Batch{
		{Kind: AddVertex, U: 3},
		{Kind: AddEdge, U: 3, V: 0, W: 2},
		{Kind: DelVertex, U: 1},
	}
	a := Apply(g, b)
	if len(a.AddedVertices) != 1 || a.AddedVertices[0] != 3 {
		t.Fatalf("added vertices: %v", a.AddedVertices)
	}
	if len(a.RemovedVertices) != 1 || len(a.RemovedEdges) != 2 {
		t.Fatalf("removed: %+v", a)
	}
	if g.Alive(1) || !g.Alive(3) {
		t.Fatal("liveness wrong")
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestApplySelfLoopAndDeadEndpointSkipped(t *testing.T) {
	g := graph.New(2)
	g.DeleteVertex(1)
	a := Apply(g, Batch{
		{Kind: AddEdge, U: 0, V: 0, W: 1},
		{Kind: AddEdge, U: 0, V: 1, W: 1},
		{Kind: DelVertex, U: 1},
		{Kind: AddVertex, U: 1},
	})
	if len(a.AddedEdges) != 0 {
		t.Fatalf("self loop / dead endpoint not skipped: %+v", a)
	}
	if len(a.AddedVertices) != 1 {
		t.Fatal("revive not recorded")
	}
	if !g.Alive(1) {
		t.Fatal("vertex 1 not revived")
	}
}

// Property: Apply followed by Undo restores the exact edge set, for random
// batches over random community graphs.
func TestApplyUndoRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices: 300, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.3,
			Weighted: true, Seed: seed,
		})
		orig := g.Clone()
		genr := NewGenerator(seed + 1)
		b := genr.EdgeBatch(g, 100, true)
		b = append(b, genr.VertexBatch(g, 5, 5, 3, true)...)
		a := Apply(g, b)
		Undo(g, a)
		if g.NumVertices() != orig.NumVertices() || g.NumEdges() != orig.NumEdges() {
			t.Logf("seed %d: size mismatch after undo V=%d/%d E=%d/%d",
				seed, g.NumVertices(), orig.NumVertices(), g.NumEdges(), orig.NumEdges())
			return false
		}
		ok := true
		orig.Edges(func(u, v graph.VertexID, w float64) {
			if got, has := g.HasEdge(u, v); !has || got != w {
				ok = false
			}
		})
		return ok && g.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeBatchShape(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{Vertices: 200, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.3, Seed: 9})
	b := NewGenerator(1).EdgeBatch(g, 100, false)
	adds, dels := 0, 0
	for _, u := range b {
		switch u.Kind {
		case AddEdge:
			adds++
			if u.U == u.V {
				t.Fatal("self loop generated")
			}
		case DelEdge:
			dels++
		default:
			t.Fatalf("unexpected kind %v", u.Kind)
		}
	}
	if adds != 50 || dels == 0 {
		t.Fatalf("adds=%d dels=%d", adds, dels)
	}
}

func TestVertexBatchShape(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{Vertices: 200, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.3, Seed: 9})
	b := NewGenerator(1).VertexBatch(g, 10, 10, 2, true)
	addsV, delsV, addsE := 0, 0, 0
	for _, u := range b {
		switch u.Kind {
		case AddVertex:
			addsV++
		case DelVertex:
			delsV++
		case AddEdge:
			addsE++
		}
	}
	if addsV != 10 || delsV != 10 || addsE != 20 {
		t.Fatalf("addsV=%d delsV=%d addsE=%d", addsV, delsV, addsE)
	}
	a := Apply(g, b)
	if len(a.AddedVertices) != 10 {
		t.Fatalf("applied added %d vertices", len(a.AddedVertices))
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestTouchedVertices(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	a := Apply(g, Batch{
		{Kind: DelEdge, U: 0, V: 1},
		{Kind: AddEdge, U: 2, V: 3, W: 1},
	})
	touched := a.TouchedVertices()
	for _, v := range []graph.VertexID{0, 1, 2, 3} {
		if _, ok := touched[v]; !ok {
			t.Fatalf("vertex %d missing from touched set %v", v, touched)
		}
	}
}

func TestUpdateStrings(t *testing.T) {
	for _, u := range []Update{
		{Kind: AddEdge, U: 1, V: 2, W: 3},
		{Kind: DelEdge, U: 1, V: 2},
		{Kind: AddVertex, U: 7},
		{Kind: DelVertex, U: 7},
	} {
		if u.String() == "?" || u.Kind.String() == "" {
			t.Fatalf("bad string for %+v", u)
		}
	}
}
