package delta

// Text wire format for update streams, consumed by `layph serve` and the
// streaming example. One update per line:
//
//	a <u> <v> [w]   add edge u->v with weight w (default 1)
//	d <u> <v>       delete edge u->v
//	av <u>          add vertex u
//	dv <u>          delete vertex u
//
// Blank lines and lines starting with '#' are ignored.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"layph/internal/graph"
)

// CheckWeight validates an edge weight arriving from an untrusted source
// (the text wire format, the HTTP push API). Weights must be finite and
// non-negative: NaN poisons every semiring aggregation, and the
// min-semiring workloads (SSSP/BFS) diverge on negative cycles.
func CheckWeight(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("delta: non-finite weight %v", w)
	}
	if w < 0 {
		return fmt.Errorf("delta: negative weight %g", w)
	}
	return nil
}

// ParseUpdate parses one line of the text wire format.
func ParseUpdate(line string) (Update, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Update{}, fmt.Errorf("delta: empty update line")
	}
	parseID := func(s string) (graph.VertexID, error) {
		n, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("delta: bad vertex id %q", s)
		}
		return graph.VertexID(n), nil
	}
	switch fields[0] {
	case "a":
		if len(fields) != 3 && len(fields) != 4 {
			return Update{}, fmt.Errorf("delta: want 'a <u> <v> [w]', got %q", line)
		}
		u, err := parseID(fields[1])
		if err != nil {
			return Update{}, err
		}
		v, err := parseID(fields[2])
		if err != nil {
			return Update{}, err
		}
		w := 1.0
		if len(fields) == 4 {
			w, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return Update{}, fmt.Errorf("delta: bad weight %q", fields[3])
			}
			if err := CheckWeight(w); err != nil {
				return Update{}, err
			}
		}
		return Update{Kind: AddEdge, U: u, V: v, W: w}, nil
	case "d":
		if len(fields) != 3 {
			return Update{}, fmt.Errorf("delta: want 'd <u> <v>', got %q", line)
		}
		u, err := parseID(fields[1])
		if err != nil {
			return Update{}, err
		}
		v, err := parseID(fields[2])
		if err != nil {
			return Update{}, err
		}
		return Update{Kind: DelEdge, U: u, V: v}, nil
	case "av", "dv":
		if len(fields) != 2 {
			return Update{}, fmt.Errorf("delta: want '%s <u>', got %q", fields[0], line)
		}
		u, err := parseID(fields[1])
		if err != nil {
			return Update{}, err
		}
		k := AddVertex
		if fields[0] == "dv" {
			k = DelVertex
		}
		return Update{Kind: k, U: u}, nil
	}
	return Update{}, fmt.Errorf("delta: unknown update op %q", fields[0])
}

// FormatUpdate renders u in the text wire format (the inverse of
// ParseUpdate). An update with an unknown Kind is an error, never silent
// output: the text format doubles as the WAL's record payload, and a
// writer that renders garbage (or a skipped comment line) for a corrupt
// update would acknowledge data it never persisted.
func FormatUpdate(u Update) (string, error) {
	switch u.Kind {
	case AddEdge:
		return fmt.Sprintf("a %d %d %g", u.U, u.V, u.W), nil
	case DelEdge:
		return fmt.Sprintf("d %d %d", u.U, u.V), nil
	case AddVertex:
		return fmt.Sprintf("av %d", u.U), nil
	case DelVertex:
		return fmt.Sprintf("dv %d", u.U), nil
	}
	return "", fmt.Errorf("delta: cannot format update with unknown kind %d", uint8(u.Kind))
}

// ForEachUpdate scans r line by line, skipping blanks and '#' comments,
// and calls fn with the 1-based line number and that line's ParseUpdate
// result. A non-nil error returned by fn stops the scan and is returned;
// otherwise ForEachUpdate returns the scanner's error, if any. Callers
// decide whether a parse error is fatal (ReadUpdates) or skippable
// (`layph serve`).
func ForEachUpdate(r io.Reader, fn func(lineno int, u Update, err error) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		u, err := ParseUpdate(line)
		if err := fn(lineno, u, err); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// Position context makes a corrupt record diagnosable: a bare
		// bufio.ErrTooLong from a 1 MiB+ line says nothing about where
		// in a multi-megabyte log the damage sits.
		return fmt.Errorf("delta: read error after line %d: %w", lineno, err)
	}
	return nil
}

// ReadUpdates parses a whole update stream into a batch, skipping blanks
// and '#' comments; the first malformed line aborts with an error.
func ReadUpdates(r io.Reader) (Batch, error) {
	var b Batch
	err := ForEachUpdate(r, func(lineno int, u Update, perr error) error {
		if perr != nil {
			return fmt.Errorf("line %d: %w", lineno, perr)
		}
		b = append(b, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

// WriteUpdates renders a batch in the text wire format, one update per
// line. A corrupt update (unknown Kind) fails the whole write before any
// caller can mistake the output for a faithful rendering of the batch.
func WriteUpdates(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	for i, u := range b {
		line, err := FormatUpdate(u)
		if err != nil {
			return fmt.Errorf("delta: update %d: %w", i, err)
		}
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
