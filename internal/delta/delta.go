// Package delta models the input change streams (ΔG) of incremental graph
// processing: unit edge/vertex insertions and deletions, batches thereof, and
// seeded random batch generators matching the paper's workloads ("5,000
// random edge updates", "1,000 vertex updates: 500 added + 500 deleted").
package delta

import (
	"fmt"
	"math/rand"

	"layph/internal/graph"
)

// Kind discriminates the unit update types.
type Kind uint8

// Unit update kinds. Edge-weight changes are modelled, as in the paper, as a
// DelEdge followed by an AddEdge with the new weight.
const (
	AddEdge Kind = iota
	DelEdge
	AddVertex
	DelVertex
)

func (k Kind) String() string {
	switch k {
	case AddEdge:
		return "add-edge"
	case DelEdge:
		return "del-edge"
	case AddVertex:
		return "add-vertex"
	case DelVertex:
		return "del-vertex"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Update is one unit update. For edge updates U and V are the endpoints; for
// vertex updates U is the vertex (V unused). W is the weight of an added edge.
type Update struct {
	Kind Kind
	U, V graph.VertexID
	W    float64
}

func (u Update) String() string {
	switch u.Kind {
	case AddEdge:
		return fmt.Sprintf("+(%d,%d,%g)", u.U, u.V, u.W)
	case DelEdge:
		return fmt.Sprintf("-(%d,%d)", u.U, u.V)
	case AddVertex:
		return fmt.Sprintf("+v%d", u.U)
	case DelVertex:
		return fmt.Sprintf("-v%d", u.U)
	}
	return "?"
}

// Batch is an ordered sequence of unit updates applied atomically between two
// incremental runs.
type Batch []Update

// Applied captures the NET effect of a batch on a graph plus a chronological
// log, sufficient both for revision-message deduction by the engines (which
// must see net pre-batch → post-batch differences, not intermediate churn)
// and for undoing the batch exactly.
type Applied struct {
	// AddedEdges lists edges present after the batch that were absent (or
	// had a different weight) before it; for weight changes the matching
	// previous edge appears in RemovedEdges.
	AddedEdges []graph.DeletedEdge
	// RemovedEdges lists edges present before the batch that are absent (or
	// reweighted) after it (weight = old weight).
	RemovedEdges []graph.DeletedEdge
	// AddedVertices and RemovedVertices list net vertex liveness transitions.
	AddedVertices   []graph.VertexID
	RemovedVertices []graph.VertexID

	log []logRec
}

type logOp uint8

const (
	opAddEdge   logOp = iota // inserted fresh edge
	opSetEdge                // overwrote existing edge weight
	opDelEdge                // removed edge
	opNewVertex              // appended fresh vertex
	opRevive                 // revived tombstoned vertex
	opDelVertex              // tombstoned vertex (incident edges logged separately)
)

type logRec struct {
	op    logOp
	u, v  graph.VertexID
	w     float64 // new weight for add/set
	prevW float64 // previous weight for set
	edges []graph.DeletedEdge
}

// Empty reports whether the batch changed nothing.
func (a *Applied) Empty() bool {
	return len(a.AddedEdges) == 0 && len(a.RemovedEdges) == 0 &&
		len(a.AddedVertices) == 0 && len(a.RemovedVertices) == 0
}

// Apply mutates g according to the batch and returns the effective NET
// changes. Updates that are no-ops on the current graph (deleting a missing
// edge, adding an existing edge with identical weight, deleting a dead
// vertex) are skipped silently — random streams legitimately contain such
// collisions, and a batch that adds then deletes the same edge nets out to
// nothing.
func Apply(g *graph.Graph, b Batch) *Applied {
	a := &Applied{}
	// before captures, at first touch, whether an edge / a vertex existed
	// pre-batch and with what weight; net summaries compare it to the
	// post-batch graph.
	beforeE := make(map[uint64]edgeBefore)
	beforeV := make(map[graph.VertexID]bool)
	key := func(u, v graph.VertexID) uint64 { return uint64(u)<<32 | uint64(v) }
	touchEdge := func(u, v graph.VertexID) {
		k := key(u, v)
		if _, seen := beforeE[k]; !seen {
			w, ok := g.HasEdge(u, v)
			beforeE[k] = edgeBefore{w: w, exists: ok}
		}
	}
	touchVertex := func(v graph.VertexID) {
		if _, seen := beforeV[v]; !seen {
			beforeV[v] = g.Alive(v)
		}
	}

	for _, u := range b {
		switch u.Kind {
		case AddEdge:
			if !g.Alive(u.U) || !g.Alive(u.V) || u.U == u.V {
				continue
			}
			touchEdge(u.U, u.V)
			prev, replaced := g.AddEdge(u.U, u.V, u.W)
			if replaced {
				if prev == u.W {
					continue // true no-op
				}
				a.log = append(a.log, logRec{op: opSetEdge, u: u.U, v: u.V, w: u.W, prevW: prev})
			} else {
				a.log = append(a.log, logRec{op: opAddEdge, u: u.U, v: u.V, w: u.W})
			}
		case DelEdge:
			touchEdge(u.U, u.V)
			if w, ok := g.DeleteEdge(u.U, u.V); ok {
				a.log = append(a.log, logRec{op: opDelEdge, u: u.U, v: u.V, w: w})
			}
		case AddVertex:
			if int(u.U) < g.Cap() {
				if g.Alive(u.U) {
					continue
				}
				touchVertex(u.U)
				g.ReviveVertex(u.U)
				a.log = append(a.log, logRec{op: opRevive, u: u.U})
			} else {
				for int(u.U) >= g.Cap() {
					id := g.AddVertex()
					beforeV[id] = false
					a.log = append(a.log, logRec{op: opNewVertex, u: id})
				}
			}
		case DelVertex:
			if !g.Alive(u.U) {
				continue
			}
			touchVertex(u.U)
			removed := g.DeleteVertex(u.U)
			for _, d := range removed {
				touchEdgeLate(beforeE, key(d.From, d.To), d.W)
			}
			a.log = append(a.log, logRec{op: opDelVertex, u: u.U, edges: removed})
		}
	}

	// Net edge summaries.
	for k, b0 := range beforeE {
		u := graph.VertexID(k >> 32)
		v := graph.VertexID(k & 0xffffffff)
		w1, exists1 := g.HasEdge(u, v)
		switch {
		case !b0.exists && exists1:
			a.AddedEdges = append(a.AddedEdges, graph.DeletedEdge{From: u, To: v, W: w1})
		case b0.exists && !exists1:
			a.RemovedEdges = append(a.RemovedEdges, graph.DeletedEdge{From: u, To: v, W: b0.w})
		case b0.exists && exists1 && b0.w != w1:
			a.RemovedEdges = append(a.RemovedEdges, graph.DeletedEdge{From: u, To: v, W: b0.w})
			a.AddedEdges = append(a.AddedEdges, graph.DeletedEdge{From: u, To: v, W: w1})
		}
	}
	// Net vertex summaries.
	for v, was := range beforeV {
		is := g.Alive(v)
		switch {
		case !was && is:
			a.AddedVertices = append(a.AddedVertices, v)
		case was && !is:
			a.RemovedVertices = append(a.RemovedVertices, v)
		}
	}
	return a
}

type edgeBefore struct {
	w      float64
	exists bool
}

// touchEdgeLate records a pre-batch edge observation for an edge removed as
// a side effect of DeleteVertex: edges created earlier in the batch are
// already in beforeE, so an unseen pair here genuinely predates the batch.
func touchEdgeLate(beforeE map[uint64]edgeBefore, k uint64, w float64) {
	if _, seen := beforeE[k]; !seen {
		beforeE[k] = edgeBefore{w: w, exists: true}
	}
}

// Undo replays the batch log in reverse, restoring g to its exact pre-batch
// state (IDs included).
func Undo(g *graph.Graph, a *Applied) {
	for i := len(a.log) - 1; i >= 0; i-- {
		r := a.log[i]
		switch r.op {
		case opAddEdge:
			g.DeleteEdge(r.u, r.v)
		case opSetEdge:
			g.AddEdge(r.u, r.v, r.prevW)
		case opDelEdge:
			g.AddEdge(r.u, r.v, r.w)
		case opNewVertex, opRevive:
			g.DeleteVertex(r.u)
		case opDelVertex:
			g.ReviveVertex(r.u)
			for _, e := range r.edges {
				g.AddEdge(e.From, e.To, e.W)
			}
		}
	}
}

// Generator produces random update batches against a live graph, mirroring
// the paper's ΔG construction: half additions of fresh random edges, half
// deletions of existing edges (or, for vertex batches, half vertex adds and
// half vertex deletes).
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a seeded generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// EdgeBatch builds a batch with n/2 random edge insertions and n/2 deletions
// of edges sampled from g. Weights of inserted edges are uniform in [1,10) if
// weighted, else 1. The batch references g's current state but does not
// mutate it.
func (gen *Generator) EdgeBatch(g *graph.Graph, n int, weighted bool) Batch {
	b := make(Batch, 0, n)
	half := n / 2
	live := liveVertices(g)
	if len(live) < 2 {
		return nil
	}
	for i := 0; i < n-half; i++ {
		u := live[gen.rng.Intn(len(live))]
		v := live[gen.rng.Intn(len(live))]
		if u == v {
			v = live[(gen.rng.Intn(len(live))+1)%len(live)]
		}
		w := 1.0
		if weighted {
			w = 1 + 9*gen.rng.Float64()
		}
		b = append(b, Update{Kind: AddEdge, U: u, V: v, W: w})
	}
	// Sample existing edges for deletion via random source vertices with
	// degree-proportional retries; collisions with already-chosen deletions
	// are fine (Apply skips no-ops).
	for i := 0; i < half; i++ {
		for try := 0; try < 32; try++ {
			u := live[gen.rng.Intn(len(live))]
			outs := g.Out(u)
			if len(outs) == 0 {
				continue
			}
			e := outs[gen.rng.Intn(len(outs))]
			b = append(b, Update{Kind: DelEdge, U: u, V: e.To})
			break
		}
	}
	gen.rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	return b
}

// VertexBatch builds a batch with adds/2 fresh vertices (each wired with
// wiring random edges to existing vertices so they participate in
// computation) and dels/2 deletions of random live vertices.
func (gen *Generator) VertexBatch(g *graph.Graph, adds, dels, wiring int, weighted bool) Batch {
	var b Batch
	live := liveVertices(g)
	if len(live) == 0 {
		return nil
	}
	next := graph.VertexID(g.Cap())
	for i := 0; i < adds; i++ {
		id := next
		next++
		b = append(b, Update{Kind: AddVertex, U: id})
		for k := 0; k < wiring; k++ {
			peer := live[gen.rng.Intn(len(live))]
			w := 1.0
			if weighted {
				w = 1 + 9*gen.rng.Float64()
			}
			if gen.rng.Intn(2) == 0 {
				b = append(b, Update{Kind: AddEdge, U: id, V: peer, W: w})
			} else {
				b = append(b, Update{Kind: AddEdge, U: peer, V: id, W: w})
			}
		}
	}
	for i := 0; i < dels; i++ {
		b = append(b, Update{Kind: DelVertex, U: live[gen.rng.Intn(len(live))]})
	}
	return b
}

// MigrationBatch builds a community-migration churn batch, the drift
// workload for adaptive re-layering: a cluster of size live vertices
// around a random pivot is moved into a different community
// neighborhood — ALL of each cluster vertex's existing out- and
// in-edges are deleted, and rewire out- plus rewire in-edges to the
// neighborhood of a random anchor vertex are added, so each mover
// detaches completely and knits densely into the anchor's community.
// Detaching completely matters: a mover that kept even part of its old
// neighborhood would leave a permanent trail of cross-community edges,
// degrading modularity in a way no re-layering could recover. Using the
// anchor's actual adjacency as the target (instead of a vertex-ID
// window) keeps the migration inside one real community regardless of
// ID layout, so sustained churn preserves the graph's community
// structure while steadily invalidating any frozen membership — exactly
// the layering-drift regime the relayer exists for.
func (gen *Generator) MigrationBatch(g *graph.Graph, size, rewire int, weighted bool) Batch {
	live := liveVertices(g)
	if len(live) < 4 || size <= 0 || rewire <= 0 {
		return nil
	}
	var b Batch
	pivot := gen.rng.Intn(len(live))

	// Target pool: a random anchor plus its distinct neighbors (both
	// directions), topped up with random live vertices when the anchor
	// is sparse.
	anchor := live[gen.rng.Intn(len(live))]
	seen := map[graph.VertexID]bool{anchor: true}
	pool := []graph.VertexID{anchor}
	addTo := func(v graph.VertexID) {
		if !seen[v] {
			seen[v] = true
			pool = append(pool, v)
		}
	}
	for _, e := range g.Out(anchor) {
		addTo(e.To)
	}
	for _, e := range g.In(anchor) {
		// In-edge entries carry the source in .To (mirror convention).
		addTo(e.To)
	}
	for tries := 0; len(pool) < rewire+1 && tries < 4*rewire; tries++ {
		addTo(live[gen.rng.Intn(len(live))])
	}

	for i := 0; i < size; i++ {
		u := live[(pivot+i)%len(live)]
		for _, e := range g.Out(u) {
			b = append(b, Update{Kind: DelEdge, U: u, V: e.To})
		}
		for _, e := range g.In(u) {
			b = append(b, Update{Kind: DelEdge, U: e.To, V: u})
		}
		// Distinct targets per direction (duplicate adds would collapse
		// into weight updates and the mover's degree — and the graph's
		// edge count — would silently shrink under sustained churn).
		for dir := 0; dir < 2; dir++ {
			picked := 0
			for _, off := range gen.rng.Perm(len(pool)) {
				if picked == rewire {
					break
				}
				v := pool[off]
				if v == u {
					continue
				}
				picked++
				w := 1.0
				if weighted {
					w = 1 + 9*gen.rng.Float64()
				}
				if dir == 0 {
					b = append(b, Update{Kind: AddEdge, U: u, V: v, W: w})
				} else {
					b = append(b, Update{Kind: AddEdge, U: v, V: u, W: w})
				}
			}
		}
	}
	return b
}

// UnitSequence builds an ordered sequence of n unit edge updates for
// streaming: chunks are generated against an evolving private clone of g,
// so deletions always target edges that exist by the time they are
// reached in order. g itself is not mutated.
func (gen *Generator) UnitSequence(g *graph.Graph, n int, weighted bool) Batch {
	clone := g.Clone()
	var seq Batch
	for len(seq) < n {
		per := n - len(seq)
		if per > 1000 {
			per = 1000
		}
		b := gen.EdgeBatch(clone, per, weighted)
		if len(b) == 0 {
			break
		}
		Apply(clone, b)
		seq = append(seq, b...)
	}
	if len(seq) > n {
		seq = seq[:n]
	}
	return seq
}

func liveVertices(g *graph.Graph) []graph.VertexID {
	live := make([]graph.VertexID, 0, g.NumVertices())
	g.Vertices(func(v graph.VertexID) { live = append(live, v) })
	return live
}

// TouchedVertices returns the set of vertices incident to any effective
// change in a; engines use it to seed revision-message deduction.
func (a *Applied) TouchedVertices() map[graph.VertexID]struct{} {
	s := make(map[graph.VertexID]struct{})
	for _, e := range a.AddedEdges {
		s[e.From] = struct{}{}
		s[e.To] = struct{}{}
	}
	for _, e := range a.RemovedEdges {
		s[e.From] = struct{}{}
		s[e.To] = struct{}{}
	}
	for _, v := range a.AddedVertices {
		s[v] = struct{}{}
	}
	for _, v := range a.RemovedVertices {
		s[v] = struct{}{}
	}
	return s
}
