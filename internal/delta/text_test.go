package delta

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"layph/internal/graph"
)

func TestParseFormatRoundTrip(t *testing.T) {
	b := Batch{
		{Kind: AddEdge, U: 1, V: 2, W: 3.5},
		{Kind: DelEdge, U: 2, V: 1},
		{Kind: AddVertex, U: 9},
		{Kind: DelVertex, U: 4},
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("round trip: %d updates, want %d", len(got), len(b))
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("update %d: %v != %v", i, got[i], b[i])
		}
	}
}

func TestReadUpdatesSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\na 0 1\n  \nd 0 1\n# trailing\n"
	b, err := ReadUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0].Kind != AddEdge || b[0].W != 1 || b[1].Kind != DelEdge {
		t.Fatalf("parsed %v", b)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	for _, line := range []string{"", "x 1 2", "a 1", "a 1 2 zz", "d 1", "av", "dv 1 2", "a -1 2"} {
		if _, err := ParseUpdate(line); err == nil {
			t.Fatalf("ParseUpdate(%q) accepted", line)
		}
	}
	bad := "a 0 1\nboom\n"
	if _, err := ReadUpdates(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadUpdates error %v, want line 2 context", err)
	}
}

// TestParseUpdateUntrustedInput covers the hostile shapes the wire format
// receives once it fronts an HTTP endpoint: the parser must reject them
// with an error (never panic, never let a poisoned value through).
func TestParseUpdateUntrustedInput(t *testing.T) {
	cases := []struct {
		name, line string
		wantErr    string
	}{
		{"nan weight", "a 1 2 NaN", "non-finite"},
		{"pos-inf weight", "a 1 2 Inf", "non-finite"},
		{"neg-inf weight", "a 1 2 -Inf", "non-finite"},
		{"negative weight", "a 1 2 -3.5", "negative weight"},
		{"overflowing weight", "a 1 2 1e309", "bad weight"},
		{"hex weight", "a 1 2 0xFF", "bad weight"},
		{"id overflows uint32", "a 4294967296 2", "bad vertex id"},
		{"negative id", "a 1 -2", "bad vertex id"},
		{"float id", "a 1.5 2", "bad vertex id"},
		{"empty after op", "a", "want 'a <u> <v> [w]'"},
		{"extra fields", "a 1 2 3 4", "want 'a <u> <v> [w]'"},
		{"delete with weight", "d 1 2 3", "want 'd <u> <v>'"},
		{"unknown op", "addedge 1 2", "unknown update op"},
		{"null bytes", "a \x00 2", "bad vertex id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, err := ParseUpdate(tc.line)
			if err == nil {
				t.Fatalf("ParseUpdate(%q) accepted as %v", tc.line, u)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseUpdate(%q) error %q, want substring %q", tc.line, err, tc.wantErr)
			}
		})
	}
	// Benign shapes stay accepted: zero weight, omitted weight, big-but-
	// valid ids, scientific notation, surrounding whitespace.
	ok := []struct {
		line string
		want Update
	}{
		{"a 1 2 0", Update{Kind: AddEdge, U: 1, V: 2, W: 0}},
		{"a 1 2", Update{Kind: AddEdge, U: 1, V: 2, W: 1}},
		{"a 4294967295 0 2e-3", Update{Kind: AddEdge, U: 4294967295, V: 0, W: 0.002}},
		{"  d   7   9  ", Update{Kind: DelEdge, U: 7, V: 9}},
	}
	for _, tc := range ok {
		u, err := ParseUpdate(tc.line)
		if err != nil {
			t.Fatalf("ParseUpdate(%q): %v", tc.line, err)
		}
		if u != tc.want {
			t.Fatalf("ParseUpdate(%q) = %v, want %v", tc.line, u, tc.want)
		}
	}
}

// A duplicate add/del of the same edge inside one batch must net out to
// nothing when applied — HTTP clients will retry and replay.
func TestDuplicateAddDelNetsOut(t *testing.T) {
	g := graph.New(4)
	b, err := ReadUpdates(strings.NewReader("a 0 1 2\nd 0 1\na 0 1 2\nd 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a := Apply(g, b); !a.Empty() {
		t.Fatalf("add/del/add/del of one edge netted %+v, want empty", a)
	}
	if _, ok := g.HasEdge(0, 1); ok {
		t.Fatal("edge survived a net-zero batch")
	}
	// Duplicate adds with the same weight collapse to one edge; the
	// duplicate is a silent no-op.
	b2, err := ReadUpdates(strings.NewReader("a 2 3 5\na 2 3 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	a2 := Apply(g, b2)
	if len(a2.AddedEdges) != 1 {
		t.Fatalf("duplicate add recorded %d net added edges, want 1", len(a2.AddedEdges))
	}
	if w, ok := g.HasEdge(2, 3); !ok || w != 5 {
		t.Fatalf("edge (2,3) = %v,%v after duplicate add", w, ok)
	}
}

// FormatUpdate must refuse an update with a corrupt Kind instead of
// rendering it as a comment: WriteUpdates feeds the WAL, and a comment
// line would be silently skipped on replay — acked but never persisted.
func TestFormatUpdateUnknownKind(t *testing.T) {
	cases := []struct {
		name string
		u    Update
		want string // rendered line for valid kinds; "" = expect an error
	}{
		{"add edge", Update{Kind: AddEdge, U: 1, V: 2, W: 3.5}, "a 1 2 3.5"},
		{"del edge", Update{Kind: DelEdge, U: 2, V: 1}, "d 2 1"},
		{"add vertex", Update{Kind: AddVertex, U: 9}, "av 9"},
		{"del vertex", Update{Kind: DelVertex, U: 4}, "dv 4"},
		{"kind just past range", Update{Kind: DelVertex + 1, U: 1, V: 2}, ""},
		{"kind far out of range", Update{Kind: Kind(200), U: 1, V: 2, W: 1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line, err := FormatUpdate(tc.u)
			if tc.want == "" {
				if err == nil {
					t.Fatalf("FormatUpdate(%+v) = %q, want error", tc.u, line)
				}
				if !strings.Contains(err.Error(), "unknown kind") {
					t.Fatalf("FormatUpdate(%+v) error %q, want 'unknown kind'", tc.u, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("FormatUpdate(%+v): %v", tc.u, err)
			}
			if line != tc.want {
				t.Fatalf("FormatUpdate(%+v) = %q, want %q", tc.u, line, tc.want)
			}
		})
	}

	// The write path fails loudly, identifying the corrupt element, and a
	// clean prefix does not excuse the batch.
	b := Batch{{Kind: AddEdge, U: 0, V: 1, W: 1}, {Kind: Kind(7), U: 3}}
	var buf bytes.Buffer
	err := WriteUpdates(&buf, b)
	if err == nil {
		t.Fatalf("WriteUpdates accepted a corrupt batch, wrote %q", buf.String())
	}
	if !strings.Contains(err.Error(), "update 1") || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("WriteUpdates error %q, want position and 'unknown kind'", err)
	}
}

// Overlong lines (beyond the scanner's 1 MiB token cap) must surface as a
// scan error carrying the line position, not a panic or a silent
// truncation: without the position a corrupt log record is undiagnosable.
func TestOverlongLineRejected(t *testing.T) {
	long := "a 0 1 " + strings.Repeat("9", 2<<20)
	err := ForEachUpdate(strings.NewReader(long), func(int, Update, error) error { return nil })
	if err == nil {
		t.Fatal("2 MiB line accepted by ForEachUpdate")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("overlong-line error %v does not unwrap to bufio.ErrTooLong", err)
	}
	if _, err := ReadUpdates(strings.NewReader(long)); err == nil {
		t.Fatal("2 MiB line accepted by ReadUpdates")
	}
	// Valid lines before the corrupt one position the error: the monster
	// line above is line 3.
	prefixed := "a 0 1\nd 0 1\n" + long + "\n"
	err = ForEachUpdate(strings.NewReader(prefixed), func(int, Update, error) error { return nil })
	if err == nil {
		t.Fatal("overlong line 3 accepted")
	}
	if !strings.Contains(err.Error(), "after line 2") {
		t.Fatalf("scanner error %q lacks position context (want 'after line 2')", err)
	}
	// A line just under the cap still parses (weight overflows float64
	// range and is rejected by value, not by length — still an error, but
	// proves the scanner passed it through).
	nearCap := "a 0 1 1" + strings.Repeat("0", 1000)
	if _, err := ParseUpdate(nearCap); err == nil {
		t.Fatal("10^1000 weight accepted")
	}
}
