package delta

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFormatRoundTrip(t *testing.T) {
	b := Batch{
		{Kind: AddEdge, U: 1, V: 2, W: 3.5},
		{Kind: DelEdge, U: 2, V: 1},
		{Kind: AddVertex, U: 9},
		{Kind: DelVertex, U: 4},
	}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("round trip: %d updates, want %d", len(got), len(b))
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("update %d: %v != %v", i, got[i], b[i])
		}
	}
}

func TestReadUpdatesSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\na 0 1\n  \nd 0 1\n# trailing\n"
	b, err := ReadUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0].Kind != AddEdge || b[0].W != 1 || b[1].Kind != DelEdge {
		t.Fatalf("parsed %v", b)
	}
}

func TestParseUpdateErrors(t *testing.T) {
	for _, line := range []string{"", "x 1 2", "a 1", "a 1 2 zz", "d 1", "av", "dv 1 2", "a -1 2"} {
		if _, err := ParseUpdate(line); err == nil {
			t.Fatalf("ParseUpdate(%q) accepted", line)
		}
	}
	bad := "a 0 1\nboom\n"
	if _, err := ReadUpdates(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadUpdates error %v, want line 2 context", err)
	}
}
