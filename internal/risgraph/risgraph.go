// Package risgraph reimplements the algorithmic strategy of RisGraph (Feng
// et al., SIGMOD 2021): real-time per-update incremental processing for
// monotonic (min-semiring) algorithms with safe/unsafe update
// classification.
//
// Every unit update is processed individually (RisGraph targets
// sub-millisecond per-update analysis rather than batched runs):
//
//   - an edge insertion (u,v) is SAFE if the offered value x(u) ⊗ w does not
//     improve x(v) — handled in O(1) with a single F application;
//   - an edge deletion (u,v) is SAFE if (u,v) is not v's dependency edge —
//     handled in O(1) with no F application;
//   - unsafe updates trigger a localized push-based fix: insertions
//     propagate the improvement from v; deletions reset the invalidated
//     dependency subtree and recompute it from intact offers.
//
// The per-update discipline keeps activations low (the classification prunes
// most work) but pays fixed bookkeeping per update, which is why the paper
// finds it slower than batched Ingress at large batch sizes.
package risgraph

import (
	"fmt"
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Engine is a RisGraph instance bound to one graph and one algorithm.
type Engine struct {
	g      *graph.Graph
	a      algo.Algorithm
	opt    engine.Options
	x      []float64
	parent []graph.VertexID
	// children mirrors parent for subtree invalidation; maintained
	// incrementally per update.
	children map[graph.VertexID]map[graph.VertexID]struct{}
	// InitialStats records the cost of the initial batch run.
	InitialStats inc.Stats
	// Safe and Unsafe count the classification outcomes across Updates.
	Safe, Unsafe int64
}

// New builds the engine and runs the batch computation. It panics for
// non-monotonic algorithms (RisGraph's single-dependency requirement).
func New(g *graph.Graph, a algo.Algorithm, opt engine.Options) *Engine {
	if !a.Semiring().Idempotent() {
		panic(fmt.Sprintf("risgraph: %s violates the single-dependency requirement", a.Name()))
	}
	e := &Engine{g: g, a: a, opt: opt}
	start := time.Now()
	f := engine.BuildFrame(g, a)
	x0, m0 := engine.InitVectors(g, a)
	runOpt := opt
	runOpt.TrackParents = true
	res := engine.Run(f, a.Semiring(), x0, m0, runOpt)
	e.x = res.X
	e.parent = res.Parent
	e.children = make(map[graph.VertexID]map[graph.VertexID]struct{})
	for v, p := range e.parent {
		if p != engine.NoParent {
			e.addChild(p, graph.VertexID(v))
		}
	}
	e.InitialStats = inc.Stats{Activations: res.Activations, Rounds: res.Rounds, Duration: time.Since(start)}
	return e
}

func (e *Engine) addChild(p, c graph.VertexID) {
	s, ok := e.children[p]
	if !ok {
		s = make(map[graph.VertexID]struct{})
		e.children[p] = s
	}
	s[c] = struct{}{}
}

func (e *Engine) setParent(v, p graph.VertexID) {
	if old := e.parent[v]; old != engine.NoParent {
		delete(e.children[old], v)
	}
	e.parent[v] = p
	if p != engine.NoParent {
		e.addChild(p, v)
	}
}

// Name returns "risgraph".
func (e *Engine) Name() string { return "risgraph" }

// States returns the converged states (live view; do not mutate).
func (e *Engine) States() []float64 { return e.x }

// Update processes the batch one unit update at a time with safe/unsafe
// classification. The engine's graph must already reflect the whole batch,
// which is fine: insert offers and deletion classifications depend only on
// memoized values and the dependency tree, and each unsafe fix runs against
// the final graph, so the per-update fixes compose to the batch fixpoint.
func (e *Engine) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	zero := e.a.Semiring().Zero()
	n := e.g.Cap()
	if len(e.x) < n {
		e.x = inc.GrowVectors(e.x, n, zero)
		e.parent = inc.GrowParents(e.parent, n)
	}
	var st inc.Stats

	for _, v := range applied.AddedVertices {
		e.x[v] = e.a.InitState(v)
		e.setParent(v, engine.NoParent)
	}
	for _, ed := range applied.RemovedEdges {
		e.processDeletion(ed, &st)
	}
	for _, v := range applied.RemovedVertices {
		e.x[v] = zero
		e.setParent(v, engine.NoParent)
	}
	for _, ed := range applied.AddedEdges {
		e.processInsertion(ed, &st)
	}
	st.Duration = time.Since(start)
	return st
}

func (e *Engine) processInsertion(ed graph.DeletedEdge, st *inc.Stats) {
	sr := e.a.Semiring()
	zero := sr.Zero()
	u, v := ed.From, ed.To
	if !e.g.Alive(u) || !e.g.Alive(v) || e.x[u] == zero {
		e.Safe++
		return
	}
	offer := sr.Times(e.x[u], e.a.EdgeWeight(e.g, u, graph.Edge{To: v, W: ed.W}))
	st.Activations++
	if sr.Plus(e.x[v], offer) == e.x[v] {
		e.Safe++ // no improvement: safe, O(1)
		return
	}
	e.Unsafe++
	e.x[v] = offer
	e.setParent(v, u)
	e.propagateImprovement(v, st)
}

// propagateImprovement pushes a strictly improving value from seed outward
// until no more improvements occur (localized Bellman-Ford).
func (e *Engine) propagateImprovement(seed graph.VertexID, st *inc.Stats) {
	sr := e.a.Semiring()
	work := []graph.VertexID{seed}
	for len(work) > 0 {
		st.Rounds++
		var next []graph.VertexID
		for _, u := range work {
			for _, oe := range e.g.Out(u) {
				offer := sr.Times(e.x[u], e.a.EdgeWeight(e.g, u, graph.Edge{To: oe.To, W: oe.W}))
				st.Activations++
				if sr.Plus(e.x[oe.To], offer) != e.x[oe.To] {
					e.x[oe.To] = offer
					e.setParent(oe.To, u)
					next = append(next, oe.To)
				}
			}
		}
		work = next
	}
}

func (e *Engine) processDeletion(ed graph.DeletedEdge, st *inc.Stats) {
	u, v := ed.From, ed.To
	if int(v) >= len(e.parent) || e.parent[v] != u {
		e.Safe++ // not a dependency edge: safe, O(1)
		return
	}
	e.Unsafe++
	sr := e.a.Semiring()
	zero := sr.Zero()

	// Invalidate v's dependency subtree.
	var resets []graph.VertexID
	queue := []graph.VertexID{v}
	tagged := map[graph.VertexID]struct{}{v: {}}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		resets = append(resets, w)
		for c := range e.children[w] {
			if _, ok := tagged[c]; !ok {
				tagged[c] = struct{}{}
				queue = append(queue, c)
			}
		}
	}
	for _, w := range resets {
		e.x[w] = zero
		e.setParent(w, engine.NoParent)
	}
	st.Resets += len(resets)

	// Recompute from intact offers, then propagate improvements.
	for _, w := range resets {
		if !e.g.Alive(w) {
			continue
		}
		best := e.a.InitMessage(w)
		bestFrom := engine.NoParent
		for _, ie := range e.g.In(w) {
			src := ie.To
			if _, isReset := tagged[src]; isReset && e.x[src] == zero {
				continue
			}
			if e.x[src] == zero {
				continue
			}
			offer := sr.Times(e.x[src], e.a.EdgeWeight(e.g, src, graph.Edge{To: w, W: ie.W}))
			st.Activations++
			if sr.Plus(best, offer) != best {
				best = offer
				bestFrom = src
			}
		}
		if best != zero && sr.Plus(e.x[w], best) != e.x[w] {
			e.x[w] = best
			e.setParent(w, bestFrom)
			e.propagateImprovement(w, st)
		}
	}
}
