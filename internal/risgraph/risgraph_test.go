package risgraph

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

func factory(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, engine.Options{Workers: 2})
}

func TestEquivalenceMinAlgorithms(t *testing.T) {
	for name, mk := range enginetest.MinAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "risgraph/"+name, factory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceWithVertexUpdates(t *testing.T) {
	cfg := enginetest.DefaultConfig()
	cfg.VertexUpdates = true
	for name, mk := range enginetest.MinAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "risgraph/"+name, factory, mk, cfg)
		})
	}
}

func TestRejectsNonMonotonic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for PHP")
		}
	}()
	New(graph.New(1), algo.NewPHP(0, 0.8, 1e-6), engine.Options{})
}

func TestSafeClassification(t *testing.T) {
	// 0 -> 1 with weight 1; adding a worse parallel path is safe, deleting a
	// non-dependency edge is safe.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(1, 2, 1) // x2 = 2 via 1, dependency edge is (1,2)
	e := New(g, algo.NewSSSP(0), engine.Options{})
	if e.States()[2] != 2 {
		t.Fatalf("x2 = %v", e.States()[2])
	}
	// Adding a fresh non-improving edge (offer 2+5=7 > x1=1): safe.
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddEdge, U: 2, V: 1, W: 5}})
	st := e.Update(applied)
	if e.Unsafe != 0 || e.Safe == 0 {
		t.Fatalf("safe=%d unsafe=%d for non-improving insertion", e.Safe, e.Unsafe)
	}
	if st.Resets != 0 {
		t.Fatal("safe update must not reset")
	}
	// Deleting the non-dependency edge (0,2): safe.
	e.Safe, e.Unsafe = 0, 0
	applied = delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: 2}})
	e.Update(applied)
	if e.Unsafe != 0 || e.Safe != 1 {
		t.Fatalf("safe=%d unsafe=%d for non-dependency deletion", e.Safe, e.Unsafe)
	}
	if e.States()[2] != 2 {
		t.Fatalf("x2 changed on safe deletion: %v", e.States()[2])
	}
}

func TestUnsafeClassification(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	e := New(g, algo.NewSSSP(0), engine.Options{})
	// Improving insertion: unsafe, must propagate.
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddEdge, U: 0, V: 1, W: 1}})
	e.Update(applied)
	if e.Unsafe == 0 {
		t.Fatal("improving insertion must be unsafe")
	}
	if e.States()[1] != 1 {
		t.Fatalf("x1 = %v", e.States()[1])
	}
	// Dependency deletion: unsafe, resets.
	applied = delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: 1}})
	st := e.Update(applied)
	if st.Resets == 0 {
		t.Fatal("dependency deletion must reset")
	}
	if !math.IsInf(e.States()[1], 1) {
		t.Fatalf("x1 = %v, want +inf", e.States()[1])
	}
}

func TestChainedSubtreeReset(t *testing.T) {
	// Chain 0->1->2->3; deleting (0,1) invalidates the whole chain, and an
	// alternative edge 0->3 must then serve 3.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	e := New(g, algo.NewSSSP(0), engine.Options{})
	if e.States()[3] != 3 {
		t.Fatalf("x3 = %v", e.States()[3])
	}
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: 1}})
	st := e.Update(applied)
	if st.Resets < 3 {
		t.Fatalf("resets = %d, want >= 3", st.Resets)
	}
	want := []float64{0, math.Inf(1), math.Inf(1), 10}
	if !algo.StatesClose(e.States(), want, 0) {
		t.Fatalf("states = %v, want %v", e.States(), want)
	}
}

func TestName(t *testing.T) {
	g := graph.New(1)
	e := New(g, algo.NewBFS(0), engine.Options{})
	if e.Name() != "risgraph" {
		t.Fatal("name")
	}
}
