package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/stream"
	"layph/internal/wal"
)

// countingDurable tallies what the stream hands the durability hook,
// standing in for a real WAL so the accounting is observable.
type countingDurable struct {
	batches atomic.Int64
	updates atomic.Int64
}

func (c *countingDurable) LogBatch(seq uint64, b delta.Batch) error {
	c.batches.Add(1)
	c.updates.Add(int64(len(b)))
	return nil
}

func (c *countingDurable) AfterBatch(seq, updates uint64, g *graph.Graph, states []float64) error {
	return nil
}

// TestPushShutdownRaceAccounting pins the handlePush shutdown contract:
// a batch interrupted mid-push by Shutdown is *partially* accepted, the
// response reports exactly how many updates got in, and every accepted
// update — across all concurrent pushers — is applied, published in the
// final snapshot, and handed to the durability hook. No acknowledged
// update may be lost and no refused update may leak in:
//
//	sum(accepted over all responses) == final snapshot Updates
//	                                 == WAL-logged update count.
func TestPushShutdownRaceAccounting(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 31,
	})
	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: 1})
	dur := &countingDurable{}
	st := stream.New(g, sys, stream.Config{
		MaxBatch: 32, MaxDelay: time.Millisecond, Durability: dur,
	})
	srv := New(st, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seq := delta.NewGenerator(32).UnitSequence(g, 6000, true)

	var accepted atomic.Int64
	var wg sync.WaitGroup
	const pushers = 4
	chunkLen := 20
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := &http.Client{}
			for i := p * chunkLen; i < len(seq); i += pushers * chunkLen {
				end := i + chunkLen
				if end > len(seq) {
					end = len(seq)
				}
				var buf bytes.Buffer
				if err := delta.WriteUpdates(&buf, delta.Batch(seq[i:end])); err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Post(ts.URL+"/push", "text/plain", &buf)
				if err != nil {
					t.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// Both the 200 and the mid-batch 503 body carry the
				// accepted count; the pre-batch "draining" 503 has none
				// (nothing entered). Anything else is a failure.
				var body struct {
					Accepted int    `json:"accepted"`
					Error    string `json:"error"`
				}
				if err := json.Unmarshal(raw, &body); err != nil {
					t.Errorf("pusher %d: bad response %q", p, raw)
					return
				}
				accepted.Add(int64(body.Accepted))
				if resp.StatusCode == http.StatusServiceUnavailable {
					return // shutdown reached this pusher
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("pusher %d: status %d (%s)", p, resp.StatusCode, raw)
					return
				}
			}
		}(p)
	}

	// Let the pushers get going, then yank the server out from under them.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	snap := st.Query()
	acc := accepted.Load()
	if uint64(acc) != snap.Updates {
		t.Fatalf("clients were told %d updates were accepted, final snapshot holds %d", acc, snap.Updates)
	}
	if logged := dur.updates.Load(); logged != acc {
		t.Fatalf("durability hook saw %d updates, clients were told %d", logged, acc)
	}
	if m := st.Metrics(); m.Applied != acc {
		t.Fatalf("applied %d, accepted %d", m.Applied, acc)
	}
	if acc == 0 {
		t.Fatal("shutdown preempted every push; race not exercised")
	}
}

// TestMetricsExposesWALAndRecovery drives a real wal.Log under the
// stream and checks /metrics grows the wal and recovery sections.
func TestMetricsExposesWALAndRecovery(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 300, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.4,
		Weighted: true, Seed: 33,
	})
	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: 1})
	l, rec, err := wal.Open(t.TempDir(), wal.Config{Sync: wal.SyncOff, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := l.Start(0, 0, g, sys.States()); err != nil {
		t.Fatal(err)
	}
	st := stream.New(g, sys, stream.Config{MaxBatch: 50, MaxDelay: -1, Durability: l})
	defer st.Close()
	defer l.Close()
	srv := New(st, Config{})
	srv.AttachDurability(l, &wal.RecoveryInfo{Seq: 0, StatesVerified: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seq := delta.NewGenerator(34).UnitSequence(g, 500, true)
	var buf bytes.Buffer
	if err := delta.WriteUpdates(&buf, delta.Batch(seq)); err != nil {
		t.Fatal(err)
	}
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/push", "text/plain", buf.Bytes(), nil); code != http.StatusOK {
		t.Fatalf("push: %d %s", code, raw)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}

	var m struct {
		Batches int64 `json:"batches"`
		WAL     *struct {
			Policy      string `json:"policy"`
			Batches     int64  `json:"batches"`
			Updates     int64  `json:"updates"`
			Bytes       int64  `json:"bytes"`
			Checkpoints int64  `json:"checkpoints"`
			LogFailures int64  `json:"log_failures"`
		} `json:"wal"`
		Recovery *struct {
			StatesVerified bool `json:"states_verified"`
		} `json:"recovery"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", "", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, raw)
	}
	if m.WAL == nil {
		t.Fatal("metrics response lacks wal section")
	}
	if m.WAL.Policy != "off" || m.WAL.Batches != m.Batches || m.WAL.Updates != 500 || m.WAL.Bytes == 0 {
		t.Fatalf("wal metrics %+v (stream batches %d)", m.WAL, m.Batches)
	}
	// 500 updates in 50-update micro-batches with CheckpointEvery=2: the
	// Start checkpoint plus periodic ones must have fired.
	if m.WAL.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d, want >= 2", m.WAL.Checkpoints)
	}
	if m.WAL.LogFailures != 0 {
		t.Fatalf("log failures = %d", m.WAL.LogFailures)
	}
	if m.Recovery == nil || !m.Recovery.StatesVerified {
		t.Fatalf("recovery section %+v", m.Recovery)
	}
}
