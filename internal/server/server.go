// Package server promotes the streaming pipeline to a network daemon: an
// HTTP/JSON API over a live stream.Stream, serving concurrent reads from
// the pipeline's lock-free immutable snapshots while updates keep
// flowing in.
//
// Endpoints:
//
//	POST /push     ingest an update batch — text wire format (see
//	               delta.ParseUpdate) or a JSON array of
//	               {"op","u","v","w"} objects — into the micro-batcher
//	GET  /query    read state from the current snapshot: ?v=1,2,3 for
//	               point/multi-vertex reads, ?topk=K&order=min|max for
//	               the best-K vertices, both served from ONE snapshot
//	GET  /metrics  rolling throughput/latency plus aggregated engine
//	               stats (activations, pool utilization, ...)
//	GET  /healthz  liveness + readiness
//
// Reads never touch engine locks: /query works entirely on the immutable
// Snapshot published after each micro-batch, so any number of concurrent
// readers coexist with the single stream worker. Pushes are validated
// atomically (ids against a cap, weights finite and non-negative) before
// the first update enters the queue, so a malformed batch is rejected
// wholesale with a 4xx instead of half-applying.
//
// Shutdown ordering: Shutdown first marks the server draining (new
// pushes fail with 503), then closes the stream — which drains the
// queue, flushes the pending micro-batch and publishes the final
// snapshot — and only then stops the HTTP listener, so in-flight queries
// keep being answered from snapshots until the very end.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
	"layph/internal/shard"
	"layph/internal/stream"
	"layph/internal/wal"
)

// Config tunes the daemon. The zero value gives sane defaults.
type Config struct {
	// Addr is the TCP listen address for Start (default "127.0.0.1:8090";
	// use ":0" for an ephemeral port, then read Addr()).
	Addr string
	// MaxVertexID rejects pushed updates referencing vertex ids at or
	// above it (0 = current state-vector length + 2^20). Without a cap a
	// single hostile "av 4294967295" would grow every state vector to
	// that id and OOM the server.
	MaxVertexID graph.VertexID
	// MaxBodyBytes bounds a /push request body (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxQueryVertices bounds the ids of one multi-vertex /query
	// (0 = 1024).
	MaxQueryVertices int
	// MaxTopK bounds /query?topk (0 = 100).
	MaxTopK int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8090"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxQueryVertices <= 0 {
		c.MaxQueryVertices = 1024
	}
	if c.MaxTopK <= 0 {
		c.MaxTopK = 100
	}
	return c
}

// Server is the HTTP daemon over one Stream. Construct with New, mount
// Handler on any mux or call Start/Shutdown for a managed listener.
type Server struct {
	cfg      Config
	st       atomic.Pointer[stream.Stream]
	wal      atomic.Pointer[wal.Log]
	recovery atomic.Pointer[wal.RecoveryInfo]
	shards   atomic.Pointer[ShardSource]
	draining atomic.Bool

	mux       *http.ServeMux
	hs        *http.Server
	ln        net.Listener
	serveDone chan struct{}
	serveErr  error
}

// New returns a daemon over st (which must already be running). st may
// be nil — e.g. while the engine's initial batch computation is still
// building — in which case /query, /push and /metrics answer 503 until
// Attach is called; /healthz reports ready=false but stays 200.
func New(st *stream.Stream, cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), serveDone: make(chan struct{})}
	if st != nil {
		s.st.Store(st)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/push", s.handlePush)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Attach sets (or replaces) the stream backing the API.
func (s *Server) Attach(st *stream.Stream) { s.st.Store(st) }

// AttachDurability exposes the stream's WAL and (optionally) the crash
// recovery that produced it through /metrics. info may be nil (fresh
// directory).
func (s *Server) AttachDurability(l *wal.Log, info *wal.RecoveryInfo) {
	if l != nil {
		s.wal.Store(l)
	}
	if info != nil {
		s.recovery.Store(info)
	}
}

// ShardSource is the scatter-gather view a sharded engine exposes; the
// per-shard summaries are served through /metrics. (*shard.Group
// implements it.)
type ShardSource interface {
	ShardInfos() []shard.Info
}

// AttachShards exposes a sharded engine's per-shard summaries through
// /metrics. Nil-safe.
func (s *Server) AttachShards(src ShardSource) {
	if src != nil {
		s.shards.Store(&src)
	}
}

// Handler returns the API handler, for mounting without Start (tests,
// embedding under an existing server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds cfg.Addr and serves in a background goroutine. Use Addr
// for the bound address and Shutdown to stop.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	go func() {
		defer close(s.serveDone)
		if err := s.hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
		}
	}()
	return nil
}

// Addr returns the bound listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully stops the daemon: new pushes fail with 503, the
// stream is closed (draining the queue and publishing the final
// snapshot), then the listener stops, bounded by ctx. Queries are served
// until the listener goes down. Safe without Start (handler-only use)
// and idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var first error
	if st := s.st.Load(); st != nil {
		if err := st.Close(); err != nil {
			first = err
		}
	}
	if s.hs != nil {
		if err := s.hs.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		<-s.serveDone
		if s.serveErr != nil && first == nil {
			first = s.serveErr
		}
	}
	return first
}

// --- /push -------------------------------------------------------------

// pushResponse reports the fate of a pushed batch.
type pushResponse struct {
	// Accepted updates entered the micro-batcher (they will be applied in
	// order); Dropped were shed by the queue under the Drop backpressure
	// policy.
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// jsonUpdate is the JSON wire form of one update: op "a"/"d"/"av"/"dv"
// as in the text format; w may be omitted for "a" (defaults to 1).
type jsonUpdate struct {
	Op string         `json:"op"`
	U  graph.VertexID `json:"u"`
	V  graph.VertexID `json:"v"`
	W  *float64       `json:"w"`
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "push requires POST")
		return
	}
	st := s.st.Load()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "no stream attached yet")
		return
	}
	if s.draining.Load() || st.Closed() {
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	idCap := s.cfg.MaxVertexID
	if idCap == 0 {
		idCap = capFromSnapshot(st)
	}
	var (
		batch delta.Batch
		err   error
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		batch, err = parseJSONUpdates(r.Body, idCap)
	} else {
		batch, err = parseTextUpdates(r.Body, idCap)
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) || errors.Is(err, bufio.ErrTooLong) {
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	var resp pushResponse
	for _, u := range batch {
		switch err := st.Push(u); {
		case err == nil:
			resp.Accepted++
		case errors.Is(err, stream.ErrQueueFull):
			resp.Dropped++
		case errors.Is(err, stream.ErrClosed):
			// Shutdown raced the batch. This partial accept is a pinned
			// API contract, not an accident: updates enter the stream one
			// by one, so a concurrent Close can land between any two of
			// them, and un-pushing the prefix is impossible (earlier
			// updates may already be applied and published). The response
			// therefore reports exactly how many updates were accepted —
			// all of which are in the final snapshot (and, with a WAL,
			// durable), while the rest were refused wholesale. Clients
			// retrying a mid-batch 503 must resubmit only the unaccepted
			// suffix. TestPushShutdownRaceAccounting holds this invariant:
			// accepted-count == applied-count == WAL-logged-count.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": "stream closed mid-batch", "accepted": resp.Accepted,
			})
			return
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// capFromSnapshot derives the default push id cap from the current
// state-vector length, leaving generous headroom for organic growth.
func capFromSnapshot(st *stream.Stream) graph.VertexID {
	n := st.Query().Len()
	cap64 := uint64(n) + 1<<20
	if cap64 > math.MaxUint32 {
		return math.MaxUint32
	}
	return graph.VertexID(cap64)
}

func checkIDs(u delta.Update, idCap graph.VertexID) error {
	isEdge := u.Kind == delta.AddEdge || u.Kind == delta.DelEdge
	if u.U >= idCap || (isEdge && u.V >= idCap) {
		return fmt.Errorf("server: vertex id beyond cap %d", idCap)
	}
	return nil
}

// parseTextUpdates parses a text wire-format body strictly: unlike the
// replay CLI, an HTTP push with any malformed line is rejected whole.
func parseTextUpdates(r io.Reader, idCap graph.VertexID) (delta.Batch, error) {
	var b delta.Batch
	err := delta.ForEachUpdate(r, func(lineno int, u delta.Update, perr error) error {
		if perr != nil {
			return fmt.Errorf("line %d: %w", lineno, perr)
		}
		if err := checkIDs(u, idCap); err != nil {
			return fmt.Errorf("line %d: %w", lineno, err)
		}
		b = append(b, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b, nil
}

func parseJSONUpdates(r io.Reader, idCap graph.VertexID) (delta.Batch, error) {
	dec := json.NewDecoder(r)
	var raw []jsonUpdate
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("server: bad JSON update array: %w", err)
	}
	if dec.More() {
		return nil, errors.New("server: trailing data after JSON update array")
	}
	b := make(delta.Batch, 0, len(raw))
	for i, ju := range raw {
		var u delta.Update
		switch ju.Op {
		case "a":
			w := 1.0
			if ju.W != nil {
				w = *ju.W
			}
			if err := delta.CheckWeight(w); err != nil {
				return nil, fmt.Errorf("update %d: %w", i, err)
			}
			u = delta.Update{Kind: delta.AddEdge, U: ju.U, V: ju.V, W: w}
		case "d":
			u = delta.Update{Kind: delta.DelEdge, U: ju.U, V: ju.V}
		case "av":
			u = delta.Update{Kind: delta.AddVertex, U: ju.U}
		case "dv":
			u = delta.Update{Kind: delta.DelVertex, U: ju.U}
		default:
			return nil, fmt.Errorf("update %d: unknown op %q (want a|d|av|dv)", i, ju.Op)
		}
		if err := checkIDs(u, idCap); err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		b = append(b, u)
	}
	return b, nil
}

// --- /query ------------------------------------------------------------

// queryResponse is one consistent read: every state in it comes from the
// single snapshot identified by Seq.
type queryResponse struct {
	Seq     uint64               `json:"seq"`
	Updates uint64               `json:"updates"`
	At      time.Time            `json:"at"`
	States  []stream.VertexState `json:"states,omitempty"`
	Top     []stream.VertexState `json:"top,omitempty"`
	Order   string               `json:"order,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "query requires GET")
		return
	}
	st := s.st.Load()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	q := r.URL.Query()
	vParam, topkParam := q.Get("v"), q.Get("topk")
	if vParam == "" && topkParam == "" {
		httpError(w, http.StatusBadRequest, "need ?v=<id>[,<id>...] and/or ?topk=<k>")
		return
	}

	snap := st.Query() // one snapshot serves the whole request
	resp := queryResponse{Seq: snap.Seq, Updates: snap.Updates, At: snap.At}

	if vParam != "" {
		ids := strings.Split(vParam, ",")
		if len(ids) > s.cfg.MaxQueryVertices {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("too many vertices in one query: %d > %d", len(ids), s.cfg.MaxQueryVertices))
			return
		}
		resp.States = make([]stream.VertexState, 0, len(ids))
		for _, idStr := range ids {
			n, err := strconv.ParseUint(strings.TrimSpace(idStr), 10, 32)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad vertex id %q", idStr))
				return
			}
			v := graph.VertexID(n)
			x, ok := snap.State(v)
			if !ok {
				httpError(w, http.StatusNotFound,
					fmt.Sprintf("vertex %d beyond state vector (len %d)", v, snap.Len()))
				return
			}
			resp.States = append(resp.States, stream.VertexState{V: v, X: x})
		}
	}
	if topkParam != "" {
		k, err := strconv.Atoi(topkParam)
		if err != nil || k < 1 || k > s.cfg.MaxTopK {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("topk must be an integer in [1,%d]", s.cfg.MaxTopK))
			return
		}
		order := q.Get("order")
		if order == "" {
			order = "min"
		}
		if order != "min" && order != "max" {
			httpError(w, http.StatusBadRequest, "order must be min or max")
			return
		}
		resp.Top = snap.TopK(k, order == "max")
		resp.Order = order
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- /metrics and /healthz ---------------------------------------------

// engineMetrics is the JSON shape of the aggregated inc.Stats.
type engineMetrics struct {
	Activations       int64   `json:"activations"`
	Rounds            int     `json:"rounds"`
	Resets            int     `json:"resets"`
	UpdateSeconds     float64 `json:"update_seconds"`
	SubgraphsParallel int64   `json:"subgraphs_parallel"`
	PoolUtilization   float64 `json:"pool_utilization"`
	ReplayedBatches   int64   `json:"replayed_batches,omitempty"`
	// Sharded execution only (see internal/shard).
	ShardRounds  int64 `json:"shard_rounds,omitempty"`
	BoundaryPins int64 `json:"boundary_pins,omitempty"`
}

// relayerMetrics is the JSON shape of stream.RelayerMetrics — the adaptive
// re-layering drift controller (see stream.RelayerConfig).
type relayerMetrics struct {
	FullRelayers     int64   `json:"full_relayers"`
	InFlight         bool    `json:"in_flight"`
	ReplayedBatches  int64   `json:"replayed_batches"`
	TouchedRatioEWMA float64 `json:"touched_ratio_ewma"`
	ShortcutHitEWMA  float64 `json:"shortcut_hit_ewma"`
	SkeletonFraction float64 `json:"skeleton_fraction"`
	SkeletonBaseline float64 `json:"skeleton_baseline"`
	MembershipMoves  int64   `json:"membership_moves"`
	LiveCommunities  int     `json:"live_communities,omitempty"`
	CommunityIDs     int     `json:"community_ids,omitempty"`
	LastSwapSeq      uint64  `json:"last_swap_seq"`
	LastTrigger      string  `json:"last_trigger,omitempty"`
}

// walMetrics is the JSON shape of wal.Stats.
type walMetrics struct {
	Policy            string  `json:"policy"`
	Batches           int64   `json:"batches"`
	Updates           int64   `json:"updates"`
	Bytes             int64   `json:"bytes"`
	Fsyncs            int64   `json:"fsyncs"`
	Checkpoints       int64   `json:"checkpoints"`
	LastCheckpointSeq uint64  `json:"last_checkpoint_seq"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`
	Failures          int64   `json:"failures"`
	LogFailures       int64   `json:"log_failures"`
}

// metricsResponse summarizes daemon and stream health.
type metricsResponse struct {
	Ready           bool          `json:"ready"`
	Draining        bool          `json:"draining"`
	Seq             uint64        `json:"seq"`
	Updates         uint64        `json:"updates"`
	Accepted        int64         `json:"accepted"`
	Dropped         int64         `json:"dropped"`
	Applied         int64         `json:"applied"`
	Batches         int64         `json:"batches"`
	ThroughputUPS   float64       `json:"throughput_ups"`
	MeanBatchMillis float64       `json:"mean_batch_ms"`
	Engine          engineMetrics `json:"engine"`
	// WAL and Recovery appear only on a durable stream (see
	// Server.AttachDurability).
	WAL      *walMetrics       `json:"wal,omitempty"`
	Recovery *wal.RecoveryInfo `json:"recovery,omitempty"`
	// Shards appears only on a sharded engine (see Server.AttachShards).
	Shards []shard.Info `json:"shards,omitempty"`
	// Relayer appears only when the stream runs the adaptive re-layering
	// controller (StreamConfig.Relayer).
	Relayer *relayerMetrics `json:"relayer,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "metrics requires GET")
		return
	}
	st := s.st.Load()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "no stream attached yet")
		return
	}
	m := st.Metrics()
	snap := st.Query()
	resp := metricsResponse{
		Ready:           true,
		Draining:        s.draining.Load(),
		Seq:             snap.Seq,
		Updates:         snap.Updates,
		Accepted:        m.Accepted,
		Dropped:         m.Dropped,
		Applied:         m.Applied,
		Batches:         m.Batches,
		ThroughputUPS:   m.Throughput,
		MeanBatchMillis: float64(m.MeanBatchLatency) / float64(time.Millisecond),
		Engine: engineMetrics{
			Activations:       m.Engine.Activations,
			Rounds:            m.Engine.Rounds,
			Resets:            m.Engine.Resets,
			UpdateSeconds:     m.Engine.Duration.Seconds(),
			SubgraphsParallel: m.Engine.SubgraphsParallel,
			PoolUtilization:   m.Engine.PoolUtilization,
			ReplayedBatches:   m.Engine.ReplayedBatches,
			ShardRounds:       m.Engine.ShardRounds,
			BoundaryPins:      m.Engine.BoundaryPins,
		},
		Recovery: s.recovery.Load(),
	}
	if src := s.shards.Load(); src != nil {
		resp.Shards = (*src).ShardInfos()
	}
	if rl := m.Relayer; rl.Enabled {
		resp.Relayer = &relayerMetrics{
			FullRelayers:     rl.FullRelayers,
			InFlight:         rl.InFlight,
			ReplayedBatches:  rl.ReplayedBatches,
			TouchedRatioEWMA: rl.TouchedRatioEWMA,
			ShortcutHitEWMA:  rl.ShortcutHitEWMA,
			SkeletonFraction: rl.SkeletonFraction,
			SkeletonBaseline: rl.SkeletonBaseline,
			MembershipMoves:  rl.MembershipMoves,
			LiveCommunities:  rl.LiveCommunities,
			CommunityIDs:     rl.CommunityIDs,
			LastSwapSeq:      rl.LastSwapSeq,
			LastTrigger:      rl.LastTrigger,
		}
	}
	if l := s.wal.Load(); l != nil {
		ws := l.Stats()
		resp.WAL = &walMetrics{
			Policy:            ws.Policy,
			Batches:           ws.Batches,
			Updates:           ws.Updates,
			Bytes:             ws.Bytes,
			Fsyncs:            ws.Fsyncs,
			Checkpoints:       ws.Checkpoints,
			LastCheckpointSeq: ws.LastCheckpointSeq,
			CheckpointSeconds: ws.CheckpointSeconds,
			Failures:          ws.Failures,
			LogFailures:       m.LogFailures,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "healthz requires GET")
		return
	}
	resp := map[string]any{
		"ok":       true,
		"ready":    false,
		"draining": s.draining.Load(),
	}
	if st := s.st.Load(); st != nil {
		resp["ready"] = !st.Closed()
		resp["seq"] = st.Query().Seq
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- shared helpers ----------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
