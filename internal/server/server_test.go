package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/ingress"
	"layph/internal/stream"
)

// testDaemon is one live serving stack: community graph, Layph engine,
// stream, server, and an httptest front end.
type testDaemon struct {
	g   *graph.Graph
	st  *stream.Stream
	srv *Server
	ts  *httptest.Server
}

func newTestDaemon(t *testing.T, seed int64, scfg stream.Config, cfg Config) *testDaemon {
	t.Helper()
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: seed,
	})
	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: 2})
	st := stream.New(g, sys, scfg)
	srv := New(st, cfg)
	ts := httptest.NewServer(srv.Handler())
	d := &testDaemon{g: g, st: st, srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return d
}

type apiQueryResponse struct {
	Seq     uint64               `json:"seq"`
	Updates uint64               `json:"updates"`
	States  []stream.VertexState `json:"states"`
	Top     []stream.VertexState `json:"top"`
	Order   string               `json:"order"`
}

func doJSON(t *testing.T, method, url, contentType string, body []byte, out any) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v (%s)", method, url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestPushQueryRoundTripMatchesRestart is the serving acceptance check:
// updates pushed over HTTP (text and JSON bodies alternating) must leave
// the daemon answering queries that match a from-scratch restart run on
// the final graph.
func TestPushQueryRoundTripMatchesRestart(t *testing.T) {
	d := newTestDaemon(t, 1, stream.Config{MaxBatch: 100, MaxDelay: -1}, Config{})
	seq := delta.NewGenerator(2).UnitSequence(d.g, 3000, true)

	// Push in chunks, alternating wire formats.
	const chunk = 250
	for i := 0; i < len(seq); i += chunk {
		end := i + chunk
		if end > len(seq) {
			end = len(seq)
		}
		var body []byte
		ct := ""
		if (i/chunk)%2 == 0 {
			var buf bytes.Buffer
			if err := delta.WriteUpdates(&buf, delta.Batch(seq[i:end])); err != nil {
				t.Fatal(err)
			}
			body = buf.Bytes()
		} else {
			var arr []map[string]any
			for _, u := range seq[i:end] {
				m := map[string]any{"u": u.U, "v": u.V}
				switch u.Kind {
				case delta.AddEdge:
					m["op"], m["w"] = "a", u.W
				case delta.DelEdge:
					m["op"] = "d"
				case delta.AddVertex:
					m["op"] = "av"
				case delta.DelVertex:
					m["op"] = "dv"
				}
				arr = append(arr, m)
			}
			body, _ = json.Marshal(arr)
			ct = "application/json"
		}
		var pr pushResponse
		code, raw := doJSON(t, http.MethodPost, d.ts.URL+"/push", ct, body, &pr)
		if code != http.StatusOK {
			t.Fatalf("push chunk %d: %d %s", i/chunk, code, raw)
		}
		if pr.Accepted != end-i || pr.Dropped != 0 {
			t.Fatalf("push chunk %d: accepted %d dropped %d, want %d/0", i/chunk, pr.Accepted, pr.Dropped, end-i)
		}
	}
	if err := d.st.Drain(); err != nil {
		t.Fatal(err)
	}

	// Query every vertex (chunked under MaxQueryVertices) from the API.
	snapLen := d.st.Query().Len()
	got := make([]float64, snapLen)
	for lo := 0; lo < snapLen; lo += 500 {
		hi := lo + 500
		if hi > snapLen {
			hi = snapLen
		}
		ids := make([]string, 0, hi-lo)
		for v := lo; v < hi; v++ {
			ids = append(ids, fmt.Sprint(v))
		}
		var qr apiQueryResponse
		code, raw := doJSON(t, http.MethodGet, d.ts.URL+"/query?v="+strings.Join(ids, ","), "", nil, &qr)
		if code != http.StatusOK {
			t.Fatalf("query [%d,%d): %d %s", lo, hi, code, raw)
		}
		if qr.Updates != uint64(len(seq)) {
			t.Fatalf("query snapshot covers %d updates, want %d", qr.Updates, len(seq))
		}
		for i, s := range qr.States {
			if s.V != graph.VertexID(lo+i) {
				t.Fatalf("state %d: vertex %d, want %d", i, s.V, lo+i)
			}
			got[s.V] = s.X
		}
	}

	want := engine.RunBatch(d.g, algo.NewSSSP(0), engine.Options{Workers: 2}).X
	if !algo.StatesClose(got, want[:snapLen], 1e-6) {
		t.Fatal("HTTP-served states differ from restart baseline on the final graph")
	}
}

func TestTopKOrdering(t *testing.T) {
	d := newTestDaemon(t, 3, stream.Config{MaxBatch: 64, MaxDelay: -1}, Config{})
	// Push a little traffic so the snapshot is not the initial one.
	var buf bytes.Buffer
	if err := delta.WriteUpdates(&buf, delta.NewGenerator(4).UnitSequence(d.g, 500, true)); err != nil {
		t.Fatal(err)
	}
	if code, raw := doJSON(t, http.MethodPost, d.ts.URL+"/push", "", buf.Bytes(), nil); code != http.StatusOK {
		t.Fatalf("push: %d %s", code, raw)
	}
	if err := d.st.Drain(); err != nil {
		t.Fatal(err)
	}

	snap := d.st.Query()
	for _, order := range []string{"min", "max"} {
		var qr apiQueryResponse
		code, raw := doJSON(t, http.MethodGet, d.ts.URL+"/query?topk=7&order="+order, "", nil, &qr)
		if code != http.StatusOK {
			t.Fatalf("topk %s: %d %s", order, code, raw)
		}
		if qr.Order != order || len(qr.Top) != 7 {
			t.Fatalf("topk %s: order=%q len=%d", order, qr.Order, len(qr.Top))
		}
		want := snap.TopK(7, order == "max")
		for i, s := range qr.Top {
			if s.V != want[i].V || s.X != want[i].X {
				t.Fatalf("topk %s entry %d: got (%d,%g), want (%d,%g)", order, i, s.V, s.X, want[i].V, want[i].X)
			}
		}
		// Verify the ordering invariant independently of TopK.
		for i := 1; i < len(qr.Top); i++ {
			a, b := qr.Top[i-1].X, qr.Top[i].X
			if math.IsInf(a, 0) || math.IsInf(b, 0) {
				t.Fatalf("topk %s returned non-finite state", order)
			}
			if (order == "min" && a > b) || (order == "max" && a < b) {
				t.Fatalf("topk %s not ordered: %g before %g", order, a, b)
			}
		}
	}
	// Default order is min.
	var qr apiQueryResponse
	if code, _ := doJSON(t, http.MethodGet, d.ts.URL+"/query?topk=3", "", nil, &qr); code != http.StatusOK || qr.Order != "min" {
		t.Fatalf("default topk order: %q", qr.Order)
	}
	// Source vertex must rank first under min (distance 0).
	if qr.Top[0].V != 0 || qr.Top[0].X != 0 {
		t.Fatalf("min top-1 is (%d,%g), want source (0,0)", qr.Top[0].V, qr.Top[0].X)
	}
}

func TestErrorPaths(t *testing.T) {
	d := newTestDaemon(t, 5, stream.Config{MaxBatch: 64, MaxDelay: -1}, Config{
		MaxBodyBytes: 4096, MaxQueryVertices: 8, MaxTopK: 10,
	})
	post := func(ct string, body string) (int, string) {
		return doJSON(t, http.MethodPost, d.ts.URL+"/push", ct, []byte(body), nil)
	}
	get := func(path string) (int, string) {
		return doJSON(t, http.MethodGet, d.ts.URL+path, "", nil, nil)
	}

	cases := []struct {
		name string
		code int
		run  func() (int, string)
	}{
		{"malformed text body", http.StatusBadRequest, func() (int, string) { return post("", "a 0 1\nboom\n") }},
		{"nan weight text", http.StatusBadRequest, func() (int, string) { return post("", "a 0 1 NaN") }},
		{"negative weight text", http.StatusBadRequest, func() (int, string) { return post("", "a 0 1 -2") }},
		{"malformed json", http.StatusBadRequest, func() (int, string) { return post("application/json", `{"op":"a"`) }},
		{"json not an array", http.StatusBadRequest, func() (int, string) { return post("application/json", `{"op":"a","u":0,"v":1}`) }},
		{"json unknown op", http.StatusBadRequest, func() (int, string) { return post("application/json", `[{"op":"zap","u":0,"v":1}]`) }},
		{"json negative weight", http.StatusBadRequest, func() (int, string) { return post("application/json", `[{"op":"a","u":0,"v":1,"w":-2}]`) }},
		{"json nan literal", http.StatusBadRequest, func() (int, string) { return post("application/json", `[{"op":"a","u":0,"v":1,"w":NaN}]`) }},
		{"json negative id", http.StatusBadRequest, func() (int, string) { return post("application/json", `[{"op":"a","u":-1,"v":1}]`) }},
		{"push id beyond cap", http.StatusBadRequest, func() (int, string) { return post("", "av 4294967295") }},
		{"push wrong method", http.StatusMethodNotAllowed, func() (int, string) { return get("/push") }},
		{"oversized body", http.StatusRequestEntityTooLarge, func() (int, string) {
			return post("", strings.Repeat("a 0 1 2\n", 1024))
		}},
		{"query no params", http.StatusBadRequest, func() (int, string) { return get("/query") }},
		{"query bad id", http.StatusBadRequest, func() (int, string) { return get("/query?v=zero") }},
		{"query negative id", http.StatusBadRequest, func() (int, string) { return get("/query?v=-1") }},
		{"query out of range id", http.StatusNotFound, func() (int, string) { return get("/query?v=999999") }},
		{"query too many ids", http.StatusBadRequest, func() (int, string) { return get("/query?v=0,1,2,3,4,5,6,7,8") }},
		{"query topk zero", http.StatusBadRequest, func() (int, string) { return get("/query?topk=0") }},
		{"query topk over cap", http.StatusBadRequest, func() (int, string) { return get("/query?topk=11") }},
		{"query topk garbage", http.StatusBadRequest, func() (int, string) { return get("/query?topk=ten") }},
		{"query bad order", http.StatusBadRequest, func() (int, string) { return get("/query?topk=3&order=sideways") }},
		{"query wrong method", http.StatusMethodNotAllowed, func() (int, string) {
			return doJSON(t, http.MethodDelete, d.ts.URL+"/query?v=0", "", nil, nil)
		}},
		{"metrics wrong method", http.StatusMethodNotAllowed, func() (int, string) {
			return doJSON(t, http.MethodPost, d.ts.URL+"/metrics", "", nil, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := tc.run()
			if code != tc.code {
				t.Fatalf("status %d (%s), want %d", code, raw, tc.code)
			}
		})
	}

	// A rejected batch must be atomic: the valid "a 0 1" line before the
	// malformed one must not have been pushed.
	if err := d.st.Drain(); err != nil {
		t.Fatal(err)
	}
	if m := d.st.Metrics(); m.Accepted != 0 {
		t.Fatalf("rejected batches leaked %d updates into the stream", m.Accepted)
	}

	// JSON omitted weight defaults to 1 and succeeds.
	var pr pushResponse
	if code, raw := doJSON(t, http.MethodPost, d.ts.URL+"/push", "application/json",
		[]byte(`[{"op":"a","u":0,"v":1}]`), &pr); code != http.StatusOK || pr.Accepted != 1 {
		t.Fatalf("json default-weight push: %d %s", code, raw)
	}
}

// TestQueryBeforeFirstSnapshot covers the warm-up window: a daemon whose
// engine is still running its initial batch computation has no stream
// yet — reads and writes answer 503 while /healthz stays alive.
func TestQueryBeforeFirstSnapshot(t *testing.T) {
	srv := New(nil, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/query?v=0", "/metrics"} {
		if code, _ := doJSON(t, http.MethodGet, ts.URL+path, "", nil, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s before attach: %d, want 503", path, code)
		}
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/push", "", []byte("a 0 1\n"), nil); code != http.StatusServiceUnavailable {
		t.Fatal("push before attach must 503")
	}
	var hz map[string]any
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", nil, &hz); code != http.StatusOK {
		t.Fatal("healthz must stay 200 before attach")
	}
	if hz["ready"] != false {
		t.Fatalf("healthz ready=%v before attach, want false", hz["ready"])
	}

	// Attach flips everything to serving.
	g := graph.New(10)
	g.AddEdge(0, 1, 2)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 1})
	st := stream.New(g, sys, stream.Config{MaxDelay: -1})
	defer st.Close()
	srv.Attach(st)
	var qr apiQueryResponse
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/query?v=0", "", nil, &qr); code != http.StatusOK {
		t.Fatalf("query after attach: %d %s", code, raw)
	}
	if len(qr.States) != 1 || qr.States[0].X != 0 {
		t.Fatalf("source state %v, want 0", qr.States)
	}
}

// TestGracefulShutdown verifies the drain ordering end to end: everything
// acknowledged before Shutdown is in the final snapshot, pushes after
// Shutdown fail with 503, and Shutdown is idempotent.
func TestGracefulShutdown(t *testing.T) {
	d := newTestDaemon(t, 7, stream.Config{MaxBatch: 1 << 20, MaxDelay: -1}, Config{})
	var buf bytes.Buffer
	seq := delta.NewGenerator(8).UnitSequence(d.g, 800, true)
	if err := delta.WriteUpdates(&buf, seq); err != nil {
		t.Fatal(err)
	}
	var pr pushResponse
	if code, raw := doJSON(t, http.MethodPost, d.ts.URL+"/push", "", buf.Bytes(), &pr); code != http.StatusOK {
		t.Fatalf("push: %d %s", code, raw)
	}
	if pr.Accepted != len(seq) {
		t.Fatalf("accepted %d, want %d", pr.Accepted, len(seq))
	}

	// Shutdown with a huge un-flushed pending batch: Close must flush it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	snap := d.st.Query()
	if snap.Updates != uint64(len(seq)) {
		t.Fatalf("final snapshot covers %d updates, want %d (acked updates dropped)", snap.Updates, len(seq))
	}

	// The handler (still mounted on httptest, which Shutdown does not
	// stop) must now refuse pushes but keep answering health checks.
	if code, _ := doJSON(t, http.MethodPost, d.ts.URL+"/push", "", []byte("a 0 1\n"), nil); code != http.StatusServiceUnavailable {
		t.Fatal("push after shutdown must 503")
	}
	var hz map[string]any
	if code, _ := doJSON(t, http.MethodGet, d.ts.URL+"/healthz", "", nil, &hz); code != http.StatusOK {
		t.Fatal("healthz after shutdown must stay 200")
	}
	if hz["draining"] != true || hz["ready"] != false {
		t.Fatalf("healthz after shutdown: %v", hz)
	}
	if err := d.srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestStartServesRealListener exercises the managed-listener path: bind
// an ephemeral port, serve, shut down.
func TestStartServesRealListener(t *testing.T) {
	g := graph.New(10)
	g.AddEdge(0, 1, 2)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 1})
	st := stream.New(g, sys, stream.Config{MaxDelay: -1})
	srv := New(st, Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	url := "http://" + srv.Addr().String()
	if code, raw := doJSON(t, http.MethodGet, url+"/healthz", "", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz over real listener: %d %s", code, raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	d := newTestDaemon(t, 9, stream.Config{MaxBatch: 50, MaxDelay: -1}, Config{})
	seq := delta.NewGenerator(10).UnitSequence(d.g, 400, true)
	n := int64(len(seq))
	var buf bytes.Buffer
	if err := delta.WriteUpdates(&buf, seq); err != nil {
		t.Fatal(err)
	}
	if code, _ := doJSON(t, http.MethodPost, d.ts.URL+"/push", "", buf.Bytes(), nil); code != http.StatusOK {
		t.Fatal("push failed")
	}
	if err := d.st.Drain(); err != nil {
		t.Fatal(err)
	}
	var mr metricsResponse
	if code, raw := doJSON(t, http.MethodGet, d.ts.URL+"/metrics", "", nil, &mr); code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, raw)
	}
	if !mr.Ready || mr.Draining {
		t.Fatalf("metrics flags: %+v", mr)
	}
	if mr.Applied != n || mr.Accepted != n || mr.Batches != (n+49)/50 {
		t.Fatalf("metrics counters: applied=%d accepted=%d batches=%d, want %d updates in %d batches",
			mr.Applied, mr.Accepted, mr.Batches, n, (n+49)/50)
	}
	if mr.Engine.Activations == 0 || mr.Engine.UpdateSeconds <= 0 {
		t.Fatalf("engine stats missing: %+v", mr.Engine)
	}
	if mr.Engine.SubgraphsParallel == 0 {
		t.Fatal("pool-backed engine reported no subgraph tasks")
	}
}

// TestMetricsRelayerBlock pins the /metrics contract of the drift
// controller: no "relayer" key without a relayer configured, and a
// populated block (with in-range quality gauges) when the stream runs one.
func TestMetricsRelayerBlock(t *testing.T) {
	// Plain daemon: the key must be absent entirely (omitempty), so the
	// smoke job's `jq .relayer` check is meaningful.
	plain := newTestDaemon(t, 14, stream.Config{MaxBatch: 50, MaxDelay: -1}, Config{})
	if _, raw := doJSON(t, http.MethodGet, plain.ts.URL+"/metrics", "", nil, nil); strings.Contains(raw, "\"relayer\"") {
		t.Fatalf("relayer block present without a relayer: %s", raw)
	}

	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 15,
	})
	build := func(g2 *graph.Graph) inc.System {
		return core.New(g2, algo.NewSSSP(0), core.Options{Workers: 2, AdaptiveCommunities: true})
	}
	st := stream.New(g, build(g), stream.Config{
		MaxBatch: 50, MaxDelay: -1,
		Relayer: &stream.RelayerConfig{Build: build},
	})
	srv := New(st, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); st.Close() }()

	seq := delta.NewGenerator(16).UnitSequence(g, 400, true)
	var buf bytes.Buffer
	if err := delta.WriteUpdates(&buf, seq); err != nil {
		t.Fatal(err)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/push", "", buf.Bytes(), nil); code != http.StatusOK {
		t.Fatal("push failed")
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	var mr metricsResponse
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics", "", nil, &mr); code != http.StatusOK {
		t.Fatalf("metrics: %d %s", code, raw)
	}
	if mr.Relayer == nil {
		t.Fatal("relayer block missing with a relayer configured")
	}
	rl := mr.Relayer
	if rl.TouchedRatioEWMA < 0 || rl.TouchedRatioEWMA > 1 {
		t.Fatalf("touched_ratio_ewma out of range: %+v", rl)
	}
	if rl.SkeletonFraction <= 0 || rl.SkeletonFraction > 1 || rl.SkeletonBaseline <= 0 {
		t.Fatalf("skeleton gauges out of range: %+v", rl)
	}
	if rl.FullRelayers != 0 || rl.InFlight {
		// 8 tame batches under the default 16-batch cooldown must not
		// trigger a rebuild.
		t.Fatalf("relayer fired under the cooldown: %+v", rl)
	}
}
