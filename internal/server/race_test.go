package server

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/stream"

	"encoding/json"
	"net/http/httptest"
)

// TestConcurrentReadersLiveWriter is the serving concurrency net, sized
// to run under -race in CI: many /query readers hammer the daemon over
// real HTTP while one writer streams /push batches. Every response must
// be internally consistent — all of its states (point reads and top-k
// alike) must come from the single published snapshot identified by its
// Seq, never a blend of two snapshots.
func TestConcurrentReadersLiveWriter(t *testing.T) {
	nUpdates, readers := 4000, 6
	if testing.Short() {
		nUpdates, readers = 1500, 4
	}

	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 21,
	})
	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: 2})

	// published records every snapshot the stream ever publishes, keyed
	// by Seq; snapshots are immutable so storing the pointer is safe.
	var published sync.Map // uint64 -> *stream.Snapshot
	st := stream.New(g, sys, stream.Config{
		MaxBatch: 64, MaxDelay: -1,
		OnBatch: func(r stream.BatchResult) { published.Store(r.Seq, r.Snap) },
	})
	published.Store(uint64(0), st.Query())
	defer st.Close()

	srv := New(st, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seq := delta.NewGenerator(22).UnitSequence(g, nUpdates, true)

	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := &http.Client{}
			probe := []graph.VertexID{0, 1, graph.VertexID(7 * (r + 1)), 599}
			url := ts.URL + "/query?topk=5&v=0,1," + itoa(probe[2]) + ",599"
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: %d %v %s", r, resp.StatusCode, err, raw)
					return
				}
				var qr apiQueryResponse
				if err := json.Unmarshal(raw, &qr); err != nil {
					t.Errorf("reader %d: decode: %v (%s)", r, err, raw)
					return
				}
				if qr.Seq < lastSeq {
					t.Errorf("reader %d: snapshot seq went backwards (%d after %d)", r, qr.Seq, lastSeq)
					return
				}
				lastSeq = qr.Seq
				v, ok := published.Load(qr.Seq)
				if !ok {
					t.Errorf("reader %d: response claims unpublished snapshot seq %d", r, qr.Seq)
					return
				}
				snap := v.(*stream.Snapshot)
				for _, s := range qr.States {
					want, ok := snap.State(s.V)
					if !ok || !sameFloat(want, s.X) {
						t.Errorf("reader %d: state of vertex %d is %g, but snapshot %d holds %g (torn response)",
							r, s.V, s.X, qr.Seq, want)
						return
					}
				}
				for i, s := range qr.Top {
					want, ok := snap.State(s.V)
					if !ok || !sameFloat(want, s.X) {
						t.Errorf("reader %d: top-k entry %d (vertex %d = %g) not from snapshot %d (torn response)",
							r, i, s.V, s.X, qr.Seq)
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}

	// Writer: stream the whole sequence through /push in small batches.
	client := &http.Client{}
	const chunk = 100
	for i := 0; i < len(seq); i += chunk {
		end := i + chunk
		if end > len(seq) {
			end = len(seq)
		}
		var buf bytes.Buffer
		if err := delta.WriteUpdates(&buf, delta.Batch(seq[i:end])); err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/push", "text/plain", &buf)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push chunk %d: %d", i/chunk, resp.StatusCode)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if reads.Load() == 0 {
		t.Fatal("readers made no successful observations")
	}
	if m := st.Metrics(); m.Applied != int64(len(seq)) {
		t.Fatalf("applied %d updates, want %d", m.Applied, len(seq))
	}
}

// sameFloat compares so Inf==Inf and NaN==NaN hold.
func sameFloat(a, b float64) bool {
	return a == b || (a != a && b != b)
}

func itoa(v graph.VertexID) string {
	b := [10]byte{}
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(b[i:])
}
