package community

import (
	"testing"
	"testing/quick"

	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
)

func plantedGraph(seed int64, n, mean int) (*graph.Graph, []int) {
	return gen.CommunityGraph(gen.CommunityConfig{
		Vertices: n, MeanCommunity: mean, IntraDegree: 8, InterDegree: 0.15,
		Weighted: false, Seed: seed,
	})
}

func TestDetectRecoversPlantedStructure(t *testing.T) {
	g, planted := plantedGraph(3, 600, 30)
	p := Detect(g, Config{})
	if p.NumComms < 5 {
		t.Fatalf("found only %d communities", p.NumComms)
	}
	// Quality: detected partition should score high modularity and beat the
	// trivial all-in-one partition by far.
	q := Modularity(g, p)
	if q < 0.5 {
		t.Fatalf("modularity %v too low for a strongly planted graph", q)
	}
	// Agreement: most intra-planted-community edges should stay intra.
	intra, agree := 0, 0
	g.Edges(func(u, v graph.VertexID, w float64) {
		if planted[u] == planted[v] {
			intra++
			if p.Comm[u] == p.Comm[v] {
				agree++
			}
		}
	})
	if agree*10 < intra*7 {
		t.Fatalf("only %d/%d planted intra edges kept intra", agree, intra)
	}
}

func TestDetectPartitionValid(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := plantedGraph(seed, 300, 25)
		p := Detect(g, Config{MaxSize: 60})
		if len(p.Comm) != g.Cap() {
			return false
		}
		seenLive := true
		g.Vertices(func(v graph.VertexID) {
			if p.Comm[v] < 0 || int(p.Comm[v]) >= p.NumComms {
				seenLive = false
			}
		})
		if !seenLive {
			return false
		}
		for _, s := range p.Sizes() {
			if s > 60 {
				t.Logf("seed %d: community size %d exceeds cap", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDeadVertices(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.DeleteVertex(4)
	p := Detect(g, Config{})
	if p.Comm[4] != NoCommunity {
		t.Fatal("dead vertex got a community")
	}
	if p.Comm[0] < 0 || p.Comm[1] < 0 {
		t.Fatal("live vertices unassigned")
	}
}

func TestDetectEmptyAndSingleton(t *testing.T) {
	p := Detect(graph.New(0), Config{})
	if p.NumComms != 0 {
		t.Fatalf("empty graph: %d communities", p.NumComms)
	}
	g := graph.New(1)
	p = Detect(g, Config{})
	if p.NumComms != 1 || p.Comm[0] != 0 {
		t.Fatalf("singleton: %+v", p)
	}
}

func TestMembersAndSizes(t *testing.T) {
	g, _ := plantedGraph(9, 200, 25)
	p := Detect(g, Config{})
	members := p.Members()
	sizes := p.Sizes()
	total := 0
	for c, m := range members {
		if len(m) != sizes[c] {
			t.Fatalf("community %d: members %d != size %d", c, len(m), sizes[c])
		}
		total += len(m)
	}
	if total != g.NumVertices() {
		t.Fatalf("partition covers %d of %d vertices", total, g.NumVertices())
	}
	ids := p.SortedBySize()
	for i := 1; i < len(ids); i++ {
		if sizes[ids[i-1]] < sizes[ids[i]] {
			t.Fatal("SortedBySize not descending")
		}
	}
}

func TestModularityBounds(t *testing.T) {
	g, planted := plantedGraph(5, 300, 30)
	p := &Partition{Comm: make([]int32, g.Cap())}
	max := int32(0)
	for v, c := range planted {
		p.Comm[v] = int32(c)
		if int32(c) > max {
			max = int32(c)
		}
	}
	p.NumComms = int(max) + 1
	q := Modularity(g, p)
	if q <= 0 || q > 1 {
		t.Fatalf("planted modularity %v out of expected range", q)
	}
	// All-singletons partition scores lower than planted.
	sing := &Partition{Comm: make([]int32, g.Cap()), NumComms: g.Cap()}
	for v := range sing.Comm {
		sing.Comm[v] = int32(v)
	}
	if Modularity(g, sing) >= q {
		t.Fatal("singleton partition should not beat planted structure")
	}
}

func TestAdjustKeepsPartitionValid(t *testing.T) {
	g, _ := plantedGraph(11, 400, 30)
	p := Detect(g, Config{MaxSize: 80})
	genr := delta.NewGenerator(2)
	for i := 0; i < 5; i++ {
		batch := genr.EdgeBatch(g, 40, false)
		batch = append(batch, genr.VertexBatch(g, 4, 4, 3, false)...)
		applied := delta.Apply(g, batch)
		changed := Adjust(g, p, Config{MaxSize: 80}, applied)
		if len(p.Comm) < g.Cap() {
			t.Fatal("assignment not grown")
		}
		ok := true
		g.Vertices(func(v graph.VertexID) {
			if p.Comm[v] < 0 || int(p.Comm[v]) >= p.NumComms {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("batch %d: live vertex without community", i)
		}
		for v := 0; v < g.Cap(); v++ {
			if !g.Alive(graph.VertexID(v)) && p.Comm[v] != NoCommunity {
				t.Fatalf("batch %d: dead vertex %d keeps community", i, v)
			}
		}
		_ = changed
	}
}

func TestAdjustReportsChangedCommunities(t *testing.T) {
	g, _ := plantedGraph(13, 300, 30)
	p := Detect(g, Config{})
	// Delete a vertex: its community must be reported.
	var victim graph.VertexID
	g.Vertices(func(v graph.VertexID) {
		if victim == 0 && g.OutDegree(v) > 0 {
			victim = v
		}
	})
	c := p.Comm[victim]
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelVertex, U: victim}})
	changed := Adjust(g, p, Config{}, applied)
	if _, ok := changed[c]; !ok {
		t.Fatalf("community %d of deleted vertex not reported (got %v)", c, changed)
	}
}

func TestAdjustNewVertexJoinsNeighborCommunity(t *testing.T) {
	g, _ := plantedGraph(17, 300, 30)
	p := Detect(g, Config{})
	// Wire a new vertex densely into community of vertex 0.
	target := p.Comm[0]
	var batch delta.Batch
	nv := graph.VertexID(g.Cap())
	batch = append(batch, delta.Update{Kind: delta.AddVertex, U: nv})
	count := 0
	g.Vertices(func(v graph.VertexID) {
		if p.Comm[v] == target && count < 5 {
			batch = append(batch, delta.Update{Kind: delta.AddEdge, U: nv, V: v, W: 1})
			batch = append(batch, delta.Update{Kind: delta.AddEdge, U: v, V: nv, W: 1})
			count++
		}
	})
	applied := delta.Apply(g, batch)
	Adjust(g, p, Config{}, applied)
	if p.Comm[nv] != target {
		t.Fatalf("new vertex joined %d, want %d", p.Comm[nv], target)
	}
}

// TestAdjustDeterministic pins the determinism fix: identical graph,
// partition, and batch sequence must produce byte-identical assignments
// across repeated runs. Before the fix, the local-move loop ranged over a
// Go map, so tie-broken community choices depended on iteration order.
func TestAdjustDeterministic(t *testing.T) {
	g0, _ := plantedGraph(23, 400, 30)
	p0 := Detect(g0, Config{MaxSize: 80})
	run := func() []int32 {
		g := g0.Clone()
		p := &Partition{Comm: append([]int32(nil), p0.Comm...), NumComms: p0.NumComms}
		genr := delta.NewGenerator(7)
		for i := 0; i < 8; i++ {
			batch := genr.EdgeBatch(g, 60, true)
			batch = append(batch, genr.VertexBatch(g, 5, 3, 3, true)...)
			applied := delta.Apply(g, batch)
			Adjust(g, p, Config{MaxSize: 80}, applied)
		}
		return append([]int32(nil), p.Comm...)
	}
	want := run()
	for rep := 0; rep < 5; rep++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("rep %d: assignment length %d != %d", rep, len(got), len(want))
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("rep %d: vertex %d assigned %d, want %d (nondeterministic tie-break)", rep, v, got[v], want[v])
			}
		}
	}
}

// TestAdjustDetailedMovesMatchAssignment cross-checks the move log: replaying
// Moved over the pre-adjust assignment must reproduce the post-adjust one.
func TestAdjustDetailedMovesMatchAssignment(t *testing.T) {
	g, _ := plantedGraph(29, 300, 30)
	p := Detect(g, Config{MaxSize: 60})
	genr := delta.NewGenerator(3)
	for i := 0; i < 6; i++ {
		before := append([]int32(nil), p.Comm...)
		batch := genr.EdgeBatch(g, 50, false)
		batch = append(batch, genr.VertexBatch(g, 4, 3, 3, false)...)
		applied := delta.Apply(g, batch)
		res := AdjustDetailed(g, p, Config{MaxSize: 60}, applied)
		replay := append([]int32(nil), before...)
		for len(replay) < len(p.Comm) {
			replay = append(replay, NoCommunity)
		}
		for _, m := range res.Moved {
			if replay[m.V] != m.From {
				t.Fatalf("batch %d: move %+v expects From=%d but vertex was in %d", i, m, m.From, replay[m.V])
			}
			replay[m.V] = m.To
			if m.From >= 0 {
				if _, ok := res.Changed[m.From]; !ok {
					t.Fatalf("batch %d: move %+v source community not in Changed", i, m)
				}
			}
			if m.To >= 0 {
				if _, ok := res.Changed[m.To]; !ok {
					t.Fatalf("batch %d: move %+v target community not in Changed", i, m)
				}
			}
		}
		for v := range p.Comm {
			if replay[v] != p.Comm[v] {
				t.Fatalf("batch %d: replayed assignment diverges at %d: %d != %d", i, v, replay[v], p.Comm[v])
			}
		}
	}
}

// TestAdjustLongChurnBoundedComms pins the dead-id-leak fix: under sustained
// churn NumComms grows monotonically (ids are stable between re-layers), but
// periodic Compact — the stand-in for a full re-layer — must reclaim dead ids
// and keep the live count bounded by the vertex count.
func TestAdjustLongChurnBoundedComms(t *testing.T) {
	g, _ := plantedGraph(31, 300, 25)
	p := Detect(g, Config{MaxSize: 60})
	genr := delta.NewGenerator(5)
	maxAfterCompact := 0
	for i := 0; i < 40; i++ {
		batch := genr.EdgeBatch(g, 40, false)
		batch = append(batch, genr.VertexBatch(g, 6, 6, 3, false)...)
		applied := delta.Apply(g, batch)
		Adjust(g, p, Config{MaxSize: 60}, applied)
		if p.LiveComms() > p.NumComms {
			t.Fatalf("round %d: live %d > NumComms %d", i, p.LiveComms(), p.NumComms)
		}
		if i%10 == 9 {
			before := append([]int32(nil), p.Comm...)
			remap := p.Compact()
			if p.NumComms != p.LiveComms() {
				t.Fatalf("round %d: Compact left %d ids for %d live communities", i, p.NumComms, p.LiveComms())
			}
			for v, c := range before {
				switch {
				case c < 0 && p.Comm[v] != NoCommunity:
					t.Fatalf("round %d: Compact assigned dead/fresh vertex %d", i, v)
				case c >= 0 && p.Comm[v] != remap[c]:
					t.Fatalf("round %d: vertex %d remapped to %d, want remap[%d]=%d", i, v, p.Comm[v], c, remap[c])
				}
			}
			if p.NumComms > maxAfterCompact {
				maxAfterCompact = p.NumComms
			}
		}
	}
	if maxAfterCompact > g.Cap() {
		t.Fatalf("compacted NumComms %d exceeds vertex capacity %d", maxAfterCompact, g.Cap())
	}
	// The real assertion: churn created and emptied many singleton ids; after
	// the final compaction the id space must be dense again.
	if p.NumComms != p.LiveComms() {
		t.Fatalf("final: %d ids vs %d live communities", p.NumComms, p.LiveComms())
	}
}

func TestAdjustIsolatedNewVertexGetsSingleton(t *testing.T) {
	g, _ := plantedGraph(19, 200, 25)
	p := Detect(g, Config{})
	before := p.NumComms
	nv := graph.VertexID(g.Cap())
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddVertex, U: nv}})
	Adjust(g, p, Config{}, applied)
	if p.Comm[nv] < 0 {
		t.Fatal("isolated new vertex unassigned")
	}
	if p.NumComms != before+1 {
		t.Fatalf("NumComms %d, want %d", p.NumComms, before+1)
	}
}
