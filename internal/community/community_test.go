package community

import (
	"testing"
	"testing/quick"

	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
)

func plantedGraph(seed int64, n, mean int) (*graph.Graph, []int) {
	return gen.CommunityGraph(gen.CommunityConfig{
		Vertices: n, MeanCommunity: mean, IntraDegree: 8, InterDegree: 0.15,
		Weighted: false, Seed: seed,
	})
}

func TestDetectRecoversPlantedStructure(t *testing.T) {
	g, planted := plantedGraph(3, 600, 30)
	p := Detect(g, Config{})
	if p.NumComms < 5 {
		t.Fatalf("found only %d communities", p.NumComms)
	}
	// Quality: detected partition should score high modularity and beat the
	// trivial all-in-one partition by far.
	q := Modularity(g, p)
	if q < 0.5 {
		t.Fatalf("modularity %v too low for a strongly planted graph", q)
	}
	// Agreement: most intra-planted-community edges should stay intra.
	intra, agree := 0, 0
	g.Edges(func(u, v graph.VertexID, w float64) {
		if planted[u] == planted[v] {
			intra++
			if p.Comm[u] == p.Comm[v] {
				agree++
			}
		}
	})
	if agree*10 < intra*7 {
		t.Fatalf("only %d/%d planted intra edges kept intra", agree, intra)
	}
}

func TestDetectPartitionValid(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := plantedGraph(seed, 300, 25)
		p := Detect(g, Config{MaxSize: 60})
		if len(p.Comm) != g.Cap() {
			return false
		}
		seenLive := true
		g.Vertices(func(v graph.VertexID) {
			if p.Comm[v] < 0 || int(p.Comm[v]) >= p.NumComms {
				seenLive = false
			}
		})
		if !seenLive {
			return false
		}
		for _, s := range p.Sizes() {
			if s > 60 {
				t.Logf("seed %d: community size %d exceeds cap", seed, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectDeadVertices(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.DeleteVertex(4)
	p := Detect(g, Config{})
	if p.Comm[4] != NoCommunity {
		t.Fatal("dead vertex got a community")
	}
	if p.Comm[0] < 0 || p.Comm[1] < 0 {
		t.Fatal("live vertices unassigned")
	}
}

func TestDetectEmptyAndSingleton(t *testing.T) {
	p := Detect(graph.New(0), Config{})
	if p.NumComms != 0 {
		t.Fatalf("empty graph: %d communities", p.NumComms)
	}
	g := graph.New(1)
	p = Detect(g, Config{})
	if p.NumComms != 1 || p.Comm[0] != 0 {
		t.Fatalf("singleton: %+v", p)
	}
}

func TestMembersAndSizes(t *testing.T) {
	g, _ := plantedGraph(9, 200, 25)
	p := Detect(g, Config{})
	members := p.Members()
	sizes := p.Sizes()
	total := 0
	for c, m := range members {
		if len(m) != sizes[c] {
			t.Fatalf("community %d: members %d != size %d", c, len(m), sizes[c])
		}
		total += len(m)
	}
	if total != g.NumVertices() {
		t.Fatalf("partition covers %d of %d vertices", total, g.NumVertices())
	}
	ids := p.SortedBySize()
	for i := 1; i < len(ids); i++ {
		if sizes[ids[i-1]] < sizes[ids[i]] {
			t.Fatal("SortedBySize not descending")
		}
	}
}

func TestModularityBounds(t *testing.T) {
	g, planted := plantedGraph(5, 300, 30)
	p := &Partition{Comm: make([]int32, g.Cap())}
	max := int32(0)
	for v, c := range planted {
		p.Comm[v] = int32(c)
		if int32(c) > max {
			max = int32(c)
		}
	}
	p.NumComms = int(max) + 1
	q := Modularity(g, p)
	if q <= 0 || q > 1 {
		t.Fatalf("planted modularity %v out of expected range", q)
	}
	// All-singletons partition scores lower than planted.
	sing := &Partition{Comm: make([]int32, g.Cap()), NumComms: g.Cap()}
	for v := range sing.Comm {
		sing.Comm[v] = int32(v)
	}
	if Modularity(g, sing) >= q {
		t.Fatal("singleton partition should not beat planted structure")
	}
}

func TestAdjustKeepsPartitionValid(t *testing.T) {
	g, _ := plantedGraph(11, 400, 30)
	p := Detect(g, Config{MaxSize: 80})
	genr := delta.NewGenerator(2)
	for i := 0; i < 5; i++ {
		batch := genr.EdgeBatch(g, 40, false)
		batch = append(batch, genr.VertexBatch(g, 4, 4, 3, false)...)
		applied := delta.Apply(g, batch)
		changed := Adjust(g, p, Config{MaxSize: 80}, applied)
		if len(p.Comm) < g.Cap() {
			t.Fatal("assignment not grown")
		}
		ok := true
		g.Vertices(func(v graph.VertexID) {
			if p.Comm[v] < 0 || int(p.Comm[v]) >= p.NumComms {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("batch %d: live vertex without community", i)
		}
		for v := 0; v < g.Cap(); v++ {
			if !g.Alive(graph.VertexID(v)) && p.Comm[v] != NoCommunity {
				t.Fatalf("batch %d: dead vertex %d keeps community", i, v)
			}
		}
		_ = changed
	}
}

func TestAdjustReportsChangedCommunities(t *testing.T) {
	g, _ := plantedGraph(13, 300, 30)
	p := Detect(g, Config{})
	// Delete a vertex: its community must be reported.
	var victim graph.VertexID
	g.Vertices(func(v graph.VertexID) {
		if victim == 0 && g.OutDegree(v) > 0 {
			victim = v
		}
	})
	c := p.Comm[victim]
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelVertex, U: victim}})
	changed := Adjust(g, p, Config{}, applied)
	if _, ok := changed[c]; !ok {
		t.Fatalf("community %d of deleted vertex not reported (got %v)", c, changed)
	}
}

func TestAdjustNewVertexJoinsNeighborCommunity(t *testing.T) {
	g, _ := plantedGraph(17, 300, 30)
	p := Detect(g, Config{})
	// Wire a new vertex densely into community of vertex 0.
	target := p.Comm[0]
	var batch delta.Batch
	nv := graph.VertexID(g.Cap())
	batch = append(batch, delta.Update{Kind: delta.AddVertex, U: nv})
	count := 0
	g.Vertices(func(v graph.VertexID) {
		if p.Comm[v] == target && count < 5 {
			batch = append(batch, delta.Update{Kind: delta.AddEdge, U: nv, V: v, W: 1})
			batch = append(batch, delta.Update{Kind: delta.AddEdge, U: v, V: nv, W: 1})
			count++
		}
	})
	applied := delta.Apply(g, batch)
	Adjust(g, p, Config{}, applied)
	if p.Comm[nv] != target {
		t.Fatalf("new vertex joined %d, want %d", p.Comm[nv], target)
	}
}

func TestAdjustIsolatedNewVertexGetsSingleton(t *testing.T) {
	g, _ := plantedGraph(19, 200, 25)
	p := Detect(g, Config{})
	before := p.NumComms
	nv := graph.VertexID(g.Cap())
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddVertex, U: nv}})
	Adjust(g, p, Config{}, applied)
	if p.Comm[nv] < 0 {
		t.Fatal("isolated new vertex unassigned")
	}
	if p.NumComms != before+1 {
		t.Fatalf("NumComms %d, want %d", p.NumComms, before+1)
	}
}
