package community

import (
	"layph/internal/delta"
	"layph/internal/graph"
)

// Adjust incrementally maintains a partition after a graph update, in the
// spirit of DynaMo / C-Blondel: instead of re-running detection from
// scratch, only the vertices touched by ΔG (and fresh vertices) are
// re-evaluated with Louvain local moves against the current partition.
// Community ids are kept stable — the layered-graph updater relies on id
// stability to localize shortcut recomputation. Emptied communities keep
// their (now unused) id; vertices moving to a fresh singleton get a new id.
//
// It returns the set of community ids whose membership changed (including
// ids that gained or lost vertices), which is exactly the set of subgraphs
// whose layer structures must be refreshed.
func Adjust(g *graph.Graph, p *Partition, cfg Config, applied *delta.Applied) map[int32]struct{} {
	changed := make(map[int32]struct{})
	// Grow the assignment for fresh vertices.
	for len(p.Comm) < g.Cap() {
		p.Comm = append(p.Comm, NoCommunity)
	}

	// Community aggregates over the undirected view.
	var total2 float64
	ctot := make([]float64, p.NumComms)
	csize := make([]int, p.NumComms)
	g.Vertices(func(v graph.VertexID) {
		d := g.UndirectedWeight(v)
		total2 += d
		if c := p.Comm[v]; c >= 0 && int(c) < p.NumComms {
			ctot[c] += d
			csize[c]++
		}
	})
	if total2 == 0 {
		return changed
	}

	newCommunity := func(v graph.VertexID) int32 {
		id := int32(p.NumComms)
		p.NumComms++
		ctot = append(ctot, 0)
		csize = append(csize, 0)
		p.Comm[v] = id
		return id
	}

	attach := func(v graph.VertexID, c int32) {
		p.Comm[v] = c
		ctot[c] += g.UndirectedWeight(v)
		csize[c]++
		changed[c] = struct{}{}
	}

	// Removed vertices leave their community. The aggregates above were
	// computed on the post-removal graph and never counted them, so only
	// the assignment is cleared.
	for _, v := range applied.RemovedVertices {
		if c := p.Comm[v]; c >= 0 {
			changed[c] = struct{}{}
			p.Comm[v] = NoCommunity
		}
	}

	// Candidates for re-evaluation: added vertices plus endpoints of
	// changed edges.
	seen := make(map[graph.VertexID]struct{})
	var cands []graph.VertexID
	add := func(v graph.VertexID) {
		if !g.Alive(v) {
			return
		}
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			cands = append(cands, v)
		}
	}
	for _, v := range applied.AddedVertices {
		add(v)
	}
	for _, e := range applied.AddedEdges {
		add(e.From)
		add(e.To)
	}
	for _, e := range applied.RemovedEdges {
		add(e.From)
		add(e.To)
	}

	for _, v := range cands {
		// Weight from v to each neighbor community.
		wTo := make(map[int32]float64)
		g.NeighborsUndirected(v, func(u graph.VertexID, w float64) {
			if u == v {
				return
			}
			if c := p.Comm[u]; c >= 0 {
				wTo[c] += w
			}
		})
		dv := g.UndirectedWeight(v)
		cur := p.Comm[v]

		// Evaluate as if detached.
		if cur >= 0 {
			ctot[cur] -= dv
			csize[cur]--
		}
		best := cur
		bestGain := 0.0
		if cur >= 0 {
			bestGain = wTo[cur] - dv*ctot[cur]/total2
		}
		for c, w := range wTo {
			if c == cur {
				continue
			}
			if cfg.MaxSize > 0 && csize[c]+1 > cfg.MaxSize {
				continue
			}
			if gain := w - dv*ctot[c]/total2; gain > bestGain+cfg.minGain() {
				bestGain = gain
				best = c
			}
		}
		switch {
		case best == cur && cur >= 0:
			ctot[cur] += dv
			csize[cur]++
		case best >= 0 && best != cur:
			if cur >= 0 {
				changed[cur] = struct{}{}
				p.Comm[v] = NoCommunity
			}
			attach(v, best)
		case cur < 0 && best < 0:
			attach(v, newCommunity(v))
		}
	}
	return changed
}
