package community

import (
	"sort"

	"layph/internal/delta"
	"layph/internal/graph"
)

// VertexMove records one vertex changing community during AdjustDetailed.
// From/To carry NoCommunity when the vertex had no community before (fresh
// vertices) or has none after (removed vertices).
type VertexMove struct {
	V    graph.VertexID
	From int32
	To   int32
}

// AdjustResult is the full outcome of an incremental adjustment.
type AdjustResult struct {
	// Changed is the set of community ids whose membership changed
	// (including ids that only gained or only lost vertices).
	Changed map[int32]struct{}
	// Moved lists every vertex whose assignment changed, in deterministic
	// evaluation order. Callers maintaining per-community member indexes
	// can apply these records without rescanning the whole assignment.
	Moved []VertexMove
}

// Adjust incrementally maintains a partition after a graph update, in the
// spirit of DynaMo / C-Blondel: instead of re-running detection from
// scratch, only the vertices touched by ΔG (and fresh vertices) are
// re-evaluated with Louvain local moves against the current partition.
// Community ids are kept stable — the layered-graph updater relies on id
// stability to localize shortcut recomputation. Emptied communities keep
// their (now unused) id until the next full re-layer compacts them;
// vertices moving to a fresh singleton get a new id.
//
// It returns the set of community ids whose membership changed (including
// ids that gained or lost vertices), which is exactly the set of subgraphs
// whose layer structures must be refreshed.
func Adjust(g *graph.Graph, p *Partition, cfg Config, applied *delta.Applied) map[int32]struct{} {
	return AdjustDetailed(g, p, cfg, applied).Changed
}

// AdjustDetailed is Adjust plus the per-vertex move log (see AdjustResult).
func AdjustDetailed(g *graph.Graph, p *Partition, cfg Config, applied *delta.Applied) AdjustResult {
	res := AdjustResult{Changed: make(map[int32]struct{})}
	changed := res.Changed
	// Grow the assignment for fresh vertices.
	for len(p.Comm) < g.Cap() {
		p.Comm = append(p.Comm, NoCommunity)
	}

	// Community aggregates over the undirected view.
	var total2 float64
	ctot := make([]float64, p.NumComms)
	csize := make([]int, p.NumComms)
	g.Vertices(func(v graph.VertexID) {
		d := g.UndirectedWeight(v)
		total2 += d
		if c := p.Comm[v]; c >= 0 && int(c) < p.NumComms {
			ctot[c] += d
			csize[c]++
		}
	})
	if total2 == 0 {
		return res
	}

	newCommunity := func(v graph.VertexID) int32 {
		id := int32(p.NumComms)
		p.NumComms++
		ctot = append(ctot, 0)
		csize = append(csize, 0)
		p.Comm[v] = id
		return id
	}

	attach := func(v graph.VertexID, c int32) {
		p.Comm[v] = c
		ctot[c] += g.UndirectedWeight(v)
		csize[c]++
		changed[c] = struct{}{}
	}

	// Removed vertices leave their community. The aggregates above were
	// computed on the post-removal graph and never counted them, so only
	// the assignment is cleared.
	for _, v := range applied.RemovedVertices {
		if c := p.Comm[v]; c >= 0 {
			changed[c] = struct{}{}
			p.Comm[v] = NoCommunity
			res.Moved = append(res.Moved, VertexMove{V: v, From: c, To: NoCommunity})
		}
	}

	// Candidates for re-evaluation: added vertices plus endpoints of
	// changed edges.
	seen := make(map[graph.VertexID]struct{})
	var cands []graph.VertexID
	add := func(v graph.VertexID) {
		if !g.Alive(v) {
			return
		}
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			cands = append(cands, v)
		}
	}
	for _, v := range applied.AddedVertices {
		add(v)
	}
	for _, e := range applied.AddedEdges {
		add(e.From)
		add(e.To)
	}
	for _, e := range applied.RemovedEdges {
		add(e.From)
		add(e.To)
	}
	// Evaluate candidates in ascending vertex id. Earlier moves shift the
	// community aggregates seen by later candidates, and delta.Applied's
	// net summaries come out of maps in arbitrary order — without a pinned
	// evaluation order the final assignment would differ run to run.
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	var nbr []int32 // neighbor-community scratch, reused across candidates
	for _, v := range cands {
		// Weight from v to each neighbor community.
		wTo := make(map[int32]float64)
		g.NeighborsUndirected(v, func(u graph.VertexID, w float64) {
			if u == v {
				return
			}
			if c := p.Comm[u]; c >= 0 {
				wTo[c] += w
			}
		})
		dv := g.UndirectedWeight(v)
		cur := p.Comm[v]

		// Evaluate as if detached.
		if cur >= 0 {
			ctot[cur] -= dv
			csize[cur]--
		}
		best := cur
		bestGain := 0.0
		if cur >= 0 {
			bestGain = wTo[cur] - dv*ctot[cur]/total2
		}
		// Scan candidate communities in ascending id order so that ties
		// (gains within MinGain of each other) resolve to the lowest id
		// regardless of Go's map iteration order. This is what keeps the
		// determinism contract (byte-identical min-scheme runs at fixed
		// Threads) intact when adjustment runs inside the live pipeline.
		nbr = nbr[:0]
		for c := range wTo {
			nbr = append(nbr, c)
		}
		sort.Slice(nbr, func(i, j int) bool { return nbr[i] < nbr[j] })
		for _, c := range nbr {
			if c == cur {
				continue
			}
			if cfg.MaxSize > 0 && csize[c]+1 > cfg.MaxSize {
				continue
			}
			if gain := wTo[c] - dv*ctot[c]/total2; gain > bestGain+cfg.minGain() {
				bestGain = gain
				best = c
			}
		}
		switch {
		case best == cur && cur >= 0:
			ctot[cur] += dv
			csize[cur]++
		case best >= 0 && best != cur:
			if cur >= 0 {
				changed[cur] = struct{}{}
			}
			p.Comm[v] = NoCommunity
			attach(v, best)
			res.Moved = append(res.Moved, VertexMove{V: v, From: cur, To: best})
		case cur < 0 && best < 0:
			id := newCommunity(v)
			// newCommunity already set the assignment; attach re-sets it and
			// records the aggregates + changed mark.
			attach(v, id)
			res.Moved = append(res.Moved, VertexMove{V: v, From: NoCommunity, To: id})
		}
	}
	return res
}
