// Package community implements the dense-subgraph discovery substrate of
// Layph's offline phase: size-capped Louvain modularity optimization
// (Blondel et al. 2008) over the undirected view of the graph, plus the
// incremental maintenance (in the spirit of DynaMo / C-Blondel) the paper
// prescribes for the online phase, so that the layered graph does not have
// to be rebuilt from scratch on every ΔG.
//
// The paper caps community sizes at a threshold K ("as a rule of thumb,
// K is set around 0.002–0.2% of the total number of vertices") because
// oversized subgraphs imbalance the shortcut workload; the cap is enforced
// during local moves and aggregation.
package community

import (
	"sort"

	"layph/internal/graph"
)

// Config tunes detection.
type Config struct {
	// MaxSize caps the number of vertices per community (the paper's K).
	// 0 means no cap.
	MaxSize int
	// MaxLevels bounds the Louvain aggregation hierarchy (default 10).
	MaxLevels int
	// MaxSweeps bounds local-move sweeps per level (default 10).
	MaxSweeps int
	// MinGain is the modularity-gain threshold for a move (default 1e-9).
	MinGain float64
}

func (c Config) maxLevels() int {
	if c.MaxLevels > 0 {
		return c.MaxLevels
	}
	return 10
}

func (c Config) maxSweeps() int {
	if c.MaxSweeps > 0 {
		return c.MaxSweeps
	}
	return 10
}

func (c Config) minGain() float64 {
	if c.MinGain > 0 {
		return c.MinGain
	}
	return 1e-9
}

// Partition is a community assignment over a graph's ID space. Dead
// vertices carry the sentinel NoCommunity.
type Partition struct {
	// Comm maps vertex -> community id (dense, 0-based).
	Comm []int32
	// NumComms is the number of distinct communities.
	NumComms int
}

// NoCommunity marks tombstoned vertices.
const NoCommunity = int32(-1)

// Members returns the vertex lists per community.
func (p *Partition) Members() [][]graph.VertexID {
	out := make([][]graph.VertexID, p.NumComms)
	for v, c := range p.Comm {
		if c >= 0 {
			out[c] = append(out[c], graph.VertexID(v))
		}
	}
	return out
}

// Sizes returns the vertex count per community.
func (p *Partition) Sizes() []int {
	out := make([]int, p.NumComms)
	for _, c := range p.Comm {
		if c >= 0 {
			out[c]++
		}
	}
	return out
}

// LiveComms returns the number of community ids with at least one member.
// Under incremental adjustment (AdjustDetailed) ids are stable, so emptied
// communities keep their slot; the gap between LiveComms and NumComms is
// the dead-id bloat that Compact (or a full re-layer) reclaims.
func (p *Partition) LiveComms() int {
	live := 0
	for _, n := range p.Sizes() {
		if n > 0 {
			live++
		}
	}
	return live
}

// Compact densely renumbers community ids in ascending old-id order,
// dropping ids that no longer have members, and returns the old→new
// mapping (dropped ids map to NoCommunity). This is the id-reclamation
// point of the id-stability contract: ids are stable between re-layers,
// and a full re-layer (or an explicit Compact) is the only place they are
// recycled — callers holding per-community state must renumber through
// the returned mapping.
func (p *Partition) Compact() []int32 {
	remap := make([]int32, p.NumComms)
	next := int32(0)
	for c, n := range p.Sizes() {
		if n > 0 {
			remap[c] = next
			next++
		} else {
			remap[c] = NoCommunity
		}
	}
	for v, c := range p.Comm {
		if c >= 0 {
			p.Comm[v] = remap[c]
		}
	}
	p.NumComms = int(next)
	return remap
}

// louvainState is the weighted undirected projection Louvain operates on.
type louvainState struct {
	n      int
	adj    []map[int32]float64 // undirected weighted adjacency (self-loops allowed)
	deg    []float64           // weighted degree incl. 2*self-loop
	size   []int               // vertices of the original graph folded into this node
	comm   []int32
	ctot   []float64 // total degree per community
	csize  []int     // original-vertex count per community
	total2 float64   // 2m (total degree)
}

func projectGraph(g *graph.Graph) *louvainState {
	s := &louvainState{n: g.Cap()}
	s.adj = make([]map[int32]float64, s.n)
	s.deg = make([]float64, s.n)
	s.size = make([]int, s.n)
	for i := 0; i < s.n; i++ {
		s.adj[i] = make(map[int32]float64)
	}
	g.Vertices(func(v graph.VertexID) { s.size[v] = 1 })
	g.Edges(func(u, v graph.VertexID, w float64) {
		if u == v {
			s.adj[u][int32(u)] += w
			s.deg[u] += 2 * w
			s.total2 += 2 * w
			return
		}
		s.adj[u][int32(v)] += w
		s.adj[v][int32(u)] += w
		s.deg[u] += w
		s.deg[v] += w
		s.total2 += 2 * w
	})
	return s
}

func (s *louvainState) initSingletons() {
	s.comm = make([]int32, s.n)
	s.ctot = make([]float64, s.n)
	s.csize = make([]int, s.n)
	for i := 0; i < s.n; i++ {
		s.comm[i] = int32(i)
		s.ctot[i] = s.deg[i]
		s.csize[i] = s.size[i]
	}
}

// localMoves runs bounded best-gain sweeps; returns whether anything moved.
func (s *louvainState) localMoves(cfg Config) bool {
	if s.total2 == 0 {
		return false
	}
	movedAny := false
	order := make([]int, 0, s.n)
	for i := 0; i < s.n; i++ {
		if s.size[i] > 0 {
			order = append(order, i)
		}
	}
	for sweep := 0; sweep < cfg.maxSweeps(); sweep++ {
		moved := false
		for _, v := range order {
			if s.moveVertex(int32(v), cfg) {
				moved = true
			}
		}
		if moved {
			movedAny = true
		} else {
			break
		}
	}
	return movedAny
}

// moveVertex relocates v to the neighbor community with the best positive
// modularity gain, respecting the size cap. Returns whether v moved.
func (s *louvainState) moveVertex(v int32, cfg Config) bool {
	cur := s.comm[v]
	// Weights from v to each neighboring community.
	wTo := map[int32]float64{}
	for u, w := range s.adj[v] {
		if u == v {
			continue
		}
		wTo[s.comm[u]] += w
	}
	// Detach v.
	s.ctot[cur] -= s.deg[v]
	s.csize[cur] -= s.size[v]

	best := cur
	bestGain := 0.0
	// Gain of joining community c: w(v,c)/m - deg(v)*ctot(c)/(2m^2); constant
	// factors dropped since we only compare.
	m2 := s.total2
	baseGain := wTo[cur] - s.deg[v]*s.ctot[cur]/m2
	// Ascending-id candidate scan with a strict improvement test: ties within
	// MinGain resolve to the lowest community id, independent of map order.
	cands := make([]int32, 0, len(wTo))
	for c := range wTo {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, c := range cands {
		if c == cur {
			continue
		}
		if cfg.MaxSize > 0 && s.csize[c]+s.size[v] > cfg.MaxSize {
			continue
		}
		gain := (wTo[c] - s.deg[v]*s.ctot[c]/m2) - baseGain
		if gain > bestGain+cfg.minGain() {
			bestGain = gain
			best = c
		}
	}
	s.ctot[best] += s.deg[v]
	s.csize[best] += s.size[v]
	s.comm[v] = best
	return best != cur
}

// aggregate folds communities into super-nodes and returns the mapping from
// old node to new node id.
func (s *louvainState) aggregate() ([]int32, *louvainState) {
	remap := make(map[int32]int32)
	for i := 0; i < s.n; i++ {
		if s.size[i] == 0 {
			continue
		}
		c := s.comm[i]
		if _, ok := remap[c]; !ok {
			remap[c] = int32(len(remap))
		}
	}
	next := &louvainState{n: len(remap)}
	next.adj = make([]map[int32]float64, next.n)
	next.deg = make([]float64, next.n)
	next.size = make([]int, next.n)
	for i := range next.adj {
		next.adj[i] = make(map[int32]float64)
	}
	next.total2 = s.total2
	nodeMap := make([]int32, s.n)
	for i := 0; i < s.n; i++ {
		if s.size[i] == 0 {
			nodeMap[i] = -1
			continue
		}
		nodeMap[i] = remap[s.comm[i]]
	}
	for i := 0; i < s.n; i++ {
		if s.size[i] == 0 {
			continue
		}
		ni := nodeMap[i]
		next.size[ni] += s.size[i]
		for u, w := range s.adj[i] {
			if s.size[u] == 0 {
				continue
			}
			nu := nodeMap[u]
			if int32(i) == u {
				next.adj[ni][ni] += w
				next.deg[ni] += 2 * w
				continue
			}
			// Each undirected edge appears in both adjacency maps; process
			// each pair once (i < u); intra-super-node pairs fold into a
			// self-loop.
			if int32(i) >= u {
				continue
			}
			if ni == nu {
				next.adj[ni][ni] += w
				next.deg[ni] += 2 * w
			} else {
				next.adj[ni][nu] += w
				next.adj[nu][ni] += w
				next.deg[ni] += w
				next.deg[nu] += w
			}
		}
	}
	return nodeMap, next
}

// Detect runs size-capped Louvain on g and returns the partition with dense
// community ids.
func Detect(g *graph.Graph, cfg Config) *Partition {
	s := projectGraph(g)
	// vertexNode[v] tracks which super-node v currently belongs to.
	vertexNode := make([]int32, g.Cap())
	for v := range vertexNode {
		if g.Alive(graph.VertexID(v)) {
			vertexNode[v] = int32(v)
		} else {
			vertexNode[v] = -1
		}
	}
	for level := 0; level < cfg.maxLevels(); level++ {
		s.initSingletons()
		if !s.localMoves(cfg) {
			break
		}
		nodeMap, next := s.aggregate()
		for v := range vertexNode {
			if vertexNode[v] >= 0 {
				vertexNode[v] = nodeMap[vertexNode[v]]
			}
		}
		if next.n == s.n {
			s = next
			break
		}
		s = next
	}
	return canonicalize(g, vertexNode)
}

// canonicalize renumbers community labels densely in first-seen order.
func canonicalize(g *graph.Graph, labels []int32) *Partition {
	p := &Partition{Comm: make([]int32, len(labels))}
	remap := make(map[int32]int32)
	for v := range labels {
		if !g.Alive(graph.VertexID(v)) || labels[v] < 0 {
			p.Comm[v] = NoCommunity
			continue
		}
		id, ok := remap[labels[v]]
		if !ok {
			id = int32(len(remap))
			remap[labels[v]] = id
		}
		p.Comm[v] = id
	}
	p.NumComms = len(remap)
	return p
}

// Modularity computes the (undirected, weighted) modularity of the partition
// on g: Q = Σ_c [ w_in(c)/m - (deg(c)/2m)^2 ].
func Modularity(g *graph.Graph, p *Partition) float64 {
	var m float64
	g.Edges(func(u, v graph.VertexID, w float64) { m += w })
	if m == 0 {
		return 0
	}
	win := make(map[int32]float64)
	deg := make(map[int32]float64)
	g.Edges(func(u, v graph.VertexID, w float64) {
		cu, cv := p.Comm[u], p.Comm[v]
		if cu >= 0 && cu == cv {
			win[cu] += w
		}
		if cu >= 0 {
			deg[cu] += w
		}
		if cv >= 0 {
			deg[cv] += w
		}
	})
	q := 0.0
	for c, w := range win {
		q += w / m
		d := deg[c] / (2 * m)
		q -= d * d
	}
	for c, d := range deg {
		if _, ok := win[c]; !ok {
			q -= (d / (2 * m)) * (d / (2 * m))
		}
	}
	return q
}

// SortedBySize returns community ids in decreasing vertex-count order.
func (p *Partition) SortedBySize() []int32 {
	sizes := p.Sizes()
	ids := make([]int32, p.NumComms)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return sizes[ids[a]] > sizes[ids[b]] })
	return ids
}
