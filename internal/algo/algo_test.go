package algo

import (
	"math"
	"testing"
	"testing/quick"

	"layph/internal/graph"
)

func TestTropicalLaws(t *testing.T) {
	sr := Tropical{}
	if !sr.Idempotent() {
		t.Fatal("tropical must be idempotent")
	}
	if sr.Name() != "tropical" {
		t.Fatal("name")
	}
	f := func(a, b, c float64) bool {
		a, b, c = math.Abs(a), math.Abs(b), math.Abs(c)
		// Associativity and commutativity of Plus; identity laws.
		if sr.Plus(a, sr.Plus(b, c)) != sr.Plus(sr.Plus(a, b), c) {
			return false
		}
		if sr.Plus(a, b) != sr.Plus(b, a) {
			return false
		}
		if sr.Plus(a, sr.Zero()) != a {
			return false
		}
		if sr.Times(a, sr.One()) != a {
			return false
		}
		// Zero annihilates Times.
		if !math.IsInf(sr.Times(a, sr.Zero()), 1) {
			return false
		}
		// Distributivity: a ⊗ (b ⊕ c) == (a⊗b) ⊕ (a⊗c).
		return sr.Times(a, sr.Plus(b, c)) == sr.Plus(sr.Times(a, b), sr.Times(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if sr.Plus(3, 3) != 3 {
		t.Fatal("min(3,3) != 3")
	}
}

func TestRealLaws(t *testing.T) {
	sr := Real{}
	if sr.Idempotent() {
		t.Fatal("real must not be idempotent")
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true
		}
		if sr.Plus(a, sr.Zero()) != a {
			return false
		}
		if sr.Times(a, sr.One()) != a {
			return false
		}
		return sr.Times(a, sr.Zero()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPDefinition(t *testing.T) {
	a := NewSSSP(3)
	if a.Name() != "sssp" || a.Semiring().Name() != "tropical" {
		t.Fatal("identity")
	}
	if a.InitState(3) != 0 || !math.IsInf(a.InitState(0), 1) {
		t.Fatal("init state")
	}
	if a.InitMessage(3) != 0 || !math.IsInf(a.InitMessage(1), 1) {
		t.Fatal("init message")
	}
	g := graph.New(2)
	g.AddEdge(0, 1, 4.5)
	if w := a.EdgeWeight(g, 0, graph.Edge{To: 1, W: 4.5}); w != 4.5 {
		t.Fatalf("EdgeWeight = %v", w)
	}
	if a.Tolerance() != 0 {
		t.Fatal("tolerance")
	}
}

func TestBFSDefinition(t *testing.T) {
	a := NewBFS(0)
	if w := a.EdgeWeight(nil, 0, graph.Edge{To: 1, W: 7}); w != 1 {
		t.Fatalf("BFS weight = %v, want 1", w)
	}
	if a.InitState(0) != 0 || !math.IsInf(a.InitState(1), 1) {
		t.Fatal("init")
	}
}

func TestPageRankDefinition(t *testing.T) {
	a := NewPageRank(0.85, 1e-6)
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	if w := a.EdgeWeight(g, 0, graph.Edge{To: 1}); math.Abs(w-0.425) > 1e-12 {
		t.Fatalf("EdgeWeight = %v, want 0.425", w)
	}
	if a.InitState(0) != 0 {
		t.Fatal("x0")
	}
	if m := a.InitMessage(0); math.Abs(m-0.15) > 1e-12 {
		t.Fatalf("m0 = %v, want 0.15", m)
	}
}

func TestPHPDefinition(t *testing.T) {
	a := NewPHP(1, 0.8, 1e-6)
	g := graph.New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 1)
	if w := a.EdgeWeight(g, 0, graph.Edge{To: 1, W: 3}); math.Abs(w-0.6) > 1e-12 {
		t.Fatalf("EdgeWeight = %v, want 0.6", w)
	}
	// Sink vertex: no out-weight, transition probability 0.
	if w := a.EdgeWeight(g, 2, graph.Edge{To: 0, W: 1}); w != 0 {
		t.Fatalf("sink EdgeWeight = %v", w)
	}
	if a.InitMessage(1) != 1 || a.InitMessage(0) != 0 {
		t.Fatal("m0")
	}
}

func TestStatesClose(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		a, b []float64
		tol  float64
		want bool
	}{
		{[]float64{1, 2}, []float64{1, 2}, 0, true},
		{[]float64{1, 2}, []float64{1, 2.1}, 0.2, true},
		{[]float64{1, 2}, []float64{1, 2.1}, 0.01, false},
		{[]float64{inf, 2}, []float64{inf, 2}, 0, true},
		{[]float64{inf, 2}, []float64{5, 2}, 100, false},
		{[]float64{1}, []float64{1, 2}, 0, false},
	}
	for i, c := range cases {
		if got := StatesClose(c.a, c.b, c.tol); got != c.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestMaxStateDiff(t *testing.T) {
	inf := math.Inf(1)
	if d := MaxStateDiff([]float64{1, 5}, []float64{1, 2}); d != 3 {
		t.Fatalf("diff = %v", d)
	}
	if d := MaxStateDiff([]float64{inf}, []float64{inf}); d != 0 {
		t.Fatalf("inf diff = %v", d)
	}
	if d := MaxStateDiff([]float64{inf}, []float64{1}); !math.IsInf(d, 1) {
		t.Fatalf("mismatch diff = %v", d)
	}
}
