// Package algo defines the asynchronous accumulative vertex-centric model of
// the paper's Equation (1): an algorithm is a pair of operations — message
// generation F and message aggregation G — plus initial states X0 and root
// messages M0. F and G are induced by a semiring: SSSP and BFS run over the
// tropical (min,+) semiring, PageRank and PHP over the real (+,×) semiring
// after the standard rewrite into delta-accumulative form [Maiter].
//
// The semiring view is what lets Layph deduce shortcut weights automatically
// (Definition 3 / Equation 6): a shortcut weight is the aggregate, under G, of
// the unit message 1̄ propagated through a subgraph by F.
package algo

import "math"

// Semiring supplies the algebra (⊕, ⊗, 0̄, 1̄) behind F and G.
//
// G aggregates with Plus; F composes a message with an edge weight using
// Times. Zero is the identity of Plus (and must annihilate Times); One is the
// identity of Times and serves as the unit message injected during shortcut
// deduction.
type Semiring interface {
	// Plus is the aggregation ⊕ (paper's G).
	Plus(a, b float64) float64
	// Times composes a message with a (semiring) edge weight ⊗ (paper's F).
	Times(a, b float64) float64
	// Zero is the ⊕-identity: min-plus uses +∞, sum-times uses 0.
	Zero() float64
	// One is the ⊗-identity: min-plus uses 0, sum-times uses 1.
	One() float64
	// Idempotent reports whether a ⊕ a == a (true for min). Idempotent
	// algorithms admit dependency-tree incrementalization; non-idempotent
	// ones admit inverse-delta (compensation/cancellation) messages.
	Idempotent() bool
	// Name identifies the semiring in logs and test output.
	Name() string
}

// Tropical is the (min, +, +∞, 0) semiring used by SSSP and BFS.
type Tropical struct{}

// Plus returns min(a, b).
func (Tropical) Plus(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Times returns a + b, saturating at +∞.
func (Tropical) Times(a, b float64) float64 {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.Inf(1)
	}
	return a + b
}

// Zero returns +∞.
func (Tropical) Zero() float64 { return math.Inf(1) }

// One returns 0.
func (Tropical) One() float64 { return 0 }

// Idempotent returns true: min(a,a) == a.
func (Tropical) Idempotent() bool { return true }

// Name returns "tropical".
func (Tropical) Name() string { return "tropical" }

// Real is the (+, ×, 0, 1) semiring used by PageRank and PHP in
// delta-accumulative form.
type Real struct{}

// Plus returns a + b.
func (Real) Plus(a, b float64) float64 { return a + b }

// Times returns a × b.
func (Real) Times(a, b float64) float64 { return a * b }

// Zero returns 0.
func (Real) Zero() float64 { return 0 }

// One returns 1.
func (Real) One() float64 { return 1 }

// Idempotent returns false: a + a != a for a != 0.
func (Real) Idempotent() bool { return false }

// Name returns "real".
func (Real) Name() string { return "real" }
