package algo

import (
	"layph/internal/graph"
)

// CC computes connected-component labels by min-label propagation over
// the tropical semiring: every vertex starts labeled with its own id
// (x0 = m0 = v), edges carry the tropical one (weight 0, so F(m, 0) = m),
// and G = min. The fixpoint labels v with the smallest vertex id that
// reaches it; on graphs with symmetric edges these are exactly the
// (weakly) connected components. On directed inputs the label is the
// minimum over v's ancestors — a label-propagation variant that is still
// a deterministic fixpoint and still maintained incrementally by the
// dependency-tree scheme (deleting the edge a label arrived through
// resets and relabels the downstream region).
type CC struct{}

// NewCC returns a connected-components instance.
func NewCC() *CC { return &CC{} }

// Name returns "cc".
func (*CC) Name() string { return "cc" }

// Semiring returns the tropical semiring.
func (*CC) Semiring() Semiring { return Tropical{} }

// EdgeWeight returns 0 (the tropical one): labels cross edges unchanged.
func (*CC) EdgeWeight(_ *graph.Graph, _ graph.VertexID, _ graph.Edge) float64 { return 0 }

// InitState labels every vertex with its own id.
func (*CC) InitState(v graph.VertexID) float64 { return float64(v) }

// InitMessage mirrors InitState: every vertex roots its own label.
func (*CC) InitMessage(v graph.VertexID) float64 { return float64(v) }

// Tolerance returns 0: labels converge exactly.
func (*CC) Tolerance() float64 { return 0 }
