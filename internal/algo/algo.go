package algo

import (
	"math"

	"layph/internal/graph"
)

// Algorithm is a vertex-centric iterative computation in the accumulative
// model A = (F, G, X0, M0) of Equation (1). F and G are induced by the
// semiring; what remains algorithm-specific is the per-edge semiring weight
// (e.g. PageRank maps an edge (u,v) to d/N⁺(u)), the initial states and root
// messages, and the convergence tolerance.
type Algorithm interface {
	// Name identifies the workload ("sssp", "bfs", "pagerank", "php").
	Name() string
	// Semiring returns the algebra F and G are built from.
	Semiring() Semiring
	// EdgeWeight maps a raw graph edge u→e.To with raw weight e.W to the
	// semiring weight used by F. It may consult g (PageRank reads u's
	// out-degree; PHP reads u's total out-weight).
	EdgeWeight(g *graph.Graph, u graph.VertexID, e graph.Edge) float64
	// InitState returns x0(v).
	InitState(v graph.VertexID) float64
	// InitMessage returns m0(v), the root message of v.
	InitMessage(v graph.VertexID) float64
	// Tolerance is the message-significance threshold: messages whose effect
	// on a state is below it are dropped, which is also the convergence
	// criterion (the paper uses 1e-6 for PageRank and PHP; exact-change for
	// SSSP and BFS).
	Tolerance() float64
}

// SSSP computes single-source shortest paths over the tropical semiring:
// F(m,w) = m + w, G = min, x0 = m0 = 0 at the source and +∞ elsewhere.
type SSSP struct {
	Source graph.VertexID
}

// NewSSSP returns an SSSP instance rooted at source.
func NewSSSP(source graph.VertexID) *SSSP { return &SSSP{Source: source} }

// Name returns "sssp".
func (*SSSP) Name() string { return "sssp" }

// Semiring returns the tropical semiring.
func (*SSSP) Semiring() Semiring { return Tropical{} }

// EdgeWeight returns the raw edge weight.
func (*SSSP) EdgeWeight(_ *graph.Graph, _ graph.VertexID, e graph.Edge) float64 { return e.W }

// InitState returns 0 for the source, +∞ otherwise.
func (a *SSSP) InitState(v graph.VertexID) float64 {
	if v == a.Source {
		return 0
	}
	return math.Inf(1)
}

// InitMessage mirrors InitState per Example 1(a).
func (a *SSSP) InitMessage(v graph.VertexID) float64 { return a.InitState(v) }

// Tolerance returns 0: shortest distances converge exactly.
func (*SSSP) Tolerance() float64 { return 0 }

// BFS computes hop distance from a source: SSSP with unit edge weights.
type BFS struct {
	Source graph.VertexID
}

// NewBFS returns a BFS instance rooted at source.
func NewBFS(source graph.VertexID) *BFS { return &BFS{Source: source} }

// Name returns "bfs".
func (*BFS) Name() string { return "bfs" }

// Semiring returns the tropical semiring.
func (*BFS) Semiring() Semiring { return Tropical{} }

// EdgeWeight returns 1 regardless of the raw weight.
func (*BFS) EdgeWeight(_ *graph.Graph, _ graph.VertexID, _ graph.Edge) float64 { return 1 }

// InitState returns 0 for the source, +∞ otherwise.
func (a *BFS) InitState(v graph.VertexID) float64 {
	if v == a.Source {
		return 0
	}
	return math.Inf(1)
}

// InitMessage mirrors InitState.
func (a *BFS) InitMessage(v graph.VertexID) float64 { return a.InitState(v) }

// Tolerance returns 0: hop counts converge exactly.
func (*BFS) Tolerance() float64 { return 0 }

// PageRank computes ranking scores in asynchronous delta-accumulative form
// (Example 1(b)): F(m, ·) = m·d/N⁺(u), G = sum, x0 = 0, m0 = 1-d. The fixpoint
// equals the power-method PageRank.
type PageRank struct {
	Damping float64
	Tol     float64
}

// NewPageRank returns a PageRank instance with damping factor d (the paper
// uses 0.85) and convergence tolerance tol (the paper uses 1e-6).
func NewPageRank(d, tol float64) *PageRank { return &PageRank{Damping: d, Tol: tol} }

// Name returns "pagerank".
func (*PageRank) Name() string { return "pagerank" }

// Semiring returns the real semiring.
func (*PageRank) Semiring() Semiring { return Real{} }

// EdgeWeight returns d / N⁺(u); the raw weight is ignored (PageRank is an
// unweighted random surfer).
func (a *PageRank) EdgeWeight(g *graph.Graph, u graph.VertexID, _ graph.Edge) float64 {
	return a.Damping / float64(g.OutDegree(u))
}

// InitState returns 0.
func (*PageRank) InitState(graph.VertexID) float64 { return 0 }

// InitMessage returns 1 - d.
func (a *PageRank) InitMessage(graph.VertexID) float64 { return 1 - a.Damping }

// Tolerance returns the configured tolerance.
func (a *PageRank) Tolerance() float64 { return a.Tol }

// PHP computes penalized hitting probability from a source: a decayed
// weighted random walk, x_v = Σ_u d·w(u,v)/W⁺(u)·x_u with the source pinned
// by a unit root message. Rewritten accumulatively exactly like PageRank.
type PHP struct {
	Source  graph.VertexID
	Damping float64
	Tol     float64
}

// NewPHP returns a PHP instance rooted at source with decay d and tolerance
// tol.
func NewPHP(source graph.VertexID, d, tol float64) *PHP {
	return &PHP{Source: source, Damping: d, Tol: tol}
}

// Name returns "php".
func (*PHP) Name() string { return "php" }

// Semiring returns the real semiring.
func (*PHP) Semiring() Semiring { return Real{} }

// EdgeWeight returns d·w(u,v) / W⁺(u), the decayed transition probability.
func (a *PHP) EdgeWeight(g *graph.Graph, u graph.VertexID, e graph.Edge) float64 {
	total := g.OutWeightSum(u)
	if total == 0 {
		return 0
	}
	return a.Damping * e.W / total
}

// InitState returns 0.
func (*PHP) InitState(graph.VertexID) float64 { return 0 }

// InitMessage returns 1 at the source, 0 elsewhere.
func (a *PHP) InitMessage(v graph.VertexID) float64 {
	if v == a.Source {
		return 1
	}
	return 0
}

// Tolerance returns the configured tolerance.
func (a *PHP) Tolerance() float64 { return a.Tol }

// StatesClose reports whether two state vectors agree within atol on every
// live entry; +∞ entries must match exactly. It is the comparison used by all
// correctness tests (incremental result vs. batch restart).
func StatesClose(a, b []float64, atol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ai, bi := a[i], b[i]
		if math.IsInf(ai, 1) != math.IsInf(bi, 1) {
			return false
		}
		if math.IsInf(ai, 1) {
			continue
		}
		if math.Abs(ai-bi) > atol {
			return false
		}
	}
	return true
}

// MaxStateDiff returns the largest absolute difference between two state
// vectors, treating a finite-vs-infinite mismatch as +∞.
func MaxStateDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		ai, bi := a[i], b[i]
		if math.IsInf(ai, 1) != math.IsInf(bi, 1) {
			return math.Inf(1)
		}
		if math.IsInf(ai, 1) {
			continue
		}
		if d := math.Abs(ai - bi); d > worst {
			worst = d
		}
	}
	return worst
}
