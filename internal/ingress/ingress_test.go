package ingress

import (
	"math"
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

func factory(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, engine.Options{Workers: 2})
}

func TestEquivalenceAllAlgorithms(t *testing.T) {
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "ingress/"+name, factory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceWithVertexUpdates(t *testing.T) {
	cfg := enginetest.DefaultConfig()
	cfg.VertexUpdates = true
	for name, mk := range enginetest.AllAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "ingress/"+name, factory, mk, cfg)
		})
	}
}

func TestPaperExampleSSSP(t *testing.T) {
	// Figure 2 of the paper: 9 vertices, edge (v3,v4,1) deleted and
	// (v3,v2,2) added; final distances from v0 must match Example 4-6:
	// {0, 1, 3, 1, 4, 7, 8, 9, 9}.
	g := graph.New(9)
	type e struct {
		u, v graph.VertexID
		w    float64
	}
	for _, ed := range []e{
		{0, 1, 1}, {1, 3, 1}, {3, 2, 3}, {3, 4, 1}, {2, 4, 1}, {1, 2, 4},
		{4, 5, 3}, {5, 6, 1}, {6, 7, 1}, {6, 8, 1}, {5, 0, 2}, {7, 8, 2},
		{5, 8, 2},
	} {
		g.AddEdge(ed.u, ed.v, ed.w)
	}
	eng := New(g, algo.NewSSSP(0), engine.Options{})
	applied := delta.Apply(g, delta.Batch{
		{Kind: delta.DelEdge, U: 3, V: 4},
		{Kind: delta.AddEdge, U: 3, V: 2, W: 2},
	})
	st := eng.Update(applied)
	want := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{})
	if !algo.StatesClose(eng.States(), want.X, 0) {
		t.Fatalf("states = %v, want %v", eng.States(), want.X)
	}
	// Deleting the dependency edge (v3,v4) must reset v4's subtree.
	if st.Resets == 0 {
		t.Fatal("expected dependency resets for the deleted tree edge")
	}
}

func TestIncrementalCheaperThanRestartSmallDelta(t *testing.T) {
	// The memoization-free (sum) scheme is strictly local for small deltas:
	// a 10-edge ΔG must cost far fewer activations than a restart. (The
	// min-path scheme carries no such guarantee — Figure 1 of the paper
	// shows its activations approaching restart levels, which is exactly
	// the problem Layph attacks.)
	g, _ := buildBig(t)
	a := algo.NewPageRank(0.85, 1e-8)
	eng := New(g, a, engine.Options{Workers: 2})
	genr := delta.NewGenerator(5)
	batch := genr.EdgeBatch(g, 10, true)
	applied := delta.Apply(g, batch)
	st := eng.Update(applied)
	restart := engine.RunBatch(g, a, engine.Options{Workers: 2})
	if st.Activations*2 >= restart.Activations {
		t.Fatalf("incremental activations %d not clearly below restart %d for a 10-edge delta",
			st.Activations, restart.Activations)
	}
}

func buildBig(t *testing.T) (*graph.Graph, algo.Algorithm) {
	t.Helper()
	g := graph.New(0)
	// Chain-of-blocks graph: deterministic, large enough that a 10-edge
	// delta touches only a small fraction of it.
	const blocks, per = 40, 25
	for i := 0; i < blocks*per; i++ {
		g.AddVertex()
	}
	for b := 0; b < blocks; b++ {
		base := graph.VertexID(b * per)
		for i := 0; i < per; i++ {
			g.AddEdge(base+graph.VertexID(i), base+graph.VertexID((i+1)%per), 1+float64(i%5))
			g.AddEdge(base+graph.VertexID(i), base+graph.VertexID((i+7)%per), 2)
		}
		if b+1 < blocks {
			g.AddEdge(base+per-1, base+per, 1)
		}
	}
	return g, algo.NewSSSP(0)
}

func TestStatesViewIsLive(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	eng := New(g, algo.NewSSSP(0), engine.Options{})
	if eng.States()[1] != 1 {
		t.Fatalf("initial states: %v", eng.States())
	}
	applied := delta.Apply(g, delta.Batch{{Kind: delta.AddEdge, U: 1, V: 2, W: 5}})
	eng.Update(applied)
	if eng.States()[2] != 6 {
		t.Fatalf("post-update states: %v", eng.States())
	}
}

func TestDeleteOnlyInEdgeOfSource(t *testing.T) {
	// Deleting the only path re-disconnects downstream vertices: states must
	// return to +inf, not keep stale finite values.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	eng := New(g, algo.NewSSSP(0), engine.Options{})
	applied := delta.Apply(g, delta.Batch{{Kind: delta.DelEdge, U: 0, V: 1}})
	eng.Update(applied)
	if !math.IsInf(eng.States()[1], 1) || !math.IsInf(eng.States()[2], 1) {
		t.Fatalf("stale states after disconnect: %v", eng.States())
	}
}

func TestAccessors(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	eng := New(g, algo.NewSSSP(0), engine.Options{})
	if eng.Name() != "ingress" {
		t.Fatal("name")
	}
	if eng.Graph() != g || eng.Algorithm() == nil || eng.Frame() == nil {
		t.Fatal("accessors")
	}
	if eng.InitialStats.Activations == 0 {
		t.Fatal("initial stats not recorded")
	}
}
