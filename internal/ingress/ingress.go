// Package ingress reimplements the algorithmic core of Ingress (Gong et al.,
// VLDB 2021), the automated-incrementalization engine Layph is built on.
// Ingress selects a memoization policy from the algorithm's algebraic
// properties:
//
//   - memoization-free engine for non-idempotent (sum-semiring) algorithms
//     such as PageRank and PHP: only the converged states are memoized;
//     revision messages are exact inverse deltas;
//   - memoization-path engine for idempotent (min-semiring) algorithms such
//     as SSSP and BFS: converged states plus the dependency (critical-path)
//     tree are memoized; deletions reset the invalidated subtree with ⊥
//     cancellations and recompute it from intact offers.
package ingress

import (
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Engine is an Ingress instance bound to one graph and one algorithm.
type Engine struct {
	g      *graph.Graph
	a      algo.Algorithm
	opt    engine.Options
	frame  *engine.Frame
	x      []float64
	parent []graph.VertexID // idempotent scheme only
	// InitialStats records the cost of the initial batch run.
	InitialStats inc.Stats
}

// New builds an engine over g and runs the batch computation to convergence,
// memoizing whatever the selected scheme needs.
func New(g *graph.Graph, a algo.Algorithm, opt engine.Options) *Engine {
	e := &Engine{g: g, a: a, opt: opt}
	if opt.Tolerance == 0 {
		e.opt.Tolerance = a.Tolerance()
	}
	start := time.Now()
	e.frame = engine.BuildFrame(g, a)
	x0, m0 := engine.InitVectors(g, a)
	runOpt := e.opt
	runOpt.TrackParents = a.Semiring().Idempotent()
	res := engine.Run(e.frame, a.Semiring(), x0, m0, runOpt)
	e.x = res.X
	e.parent = res.Parent
	e.InitialStats = inc.Stats{
		Activations: res.Activations,
		Rounds:      res.Rounds,
		Duration:    time.Since(start),
	}
	return e
}

// Name returns "ingress".
func (e *Engine) Name() string { return "ingress" }

// Graph returns the engine's graph (the caller mutates it via delta.Apply
// between Update calls).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Algorithm returns the bound algorithm.
func (e *Engine) Algorithm() algo.Algorithm { return e.a }

// States returns the converged states (live view; do not mutate).
func (e *Engine) States() []float64 { return e.x }

// Frame exposes the engine's semiring-weighted frame. Layph reuses it when
// sharing a base engine.
func (e *Engine) Frame() *engine.Frame { return e.frame }

// Update incrementally adjusts the memoized result to the applied batch.
// The engine's graph must already reflect the batch (delta.Apply first).
func (e *Engine) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	sr := e.a.Semiring()
	n := e.g.Cap()
	e.x = inc.GrowVectors(e.x, n, sr.Zero())

	touched := inc.TouchedSources(applied)
	oldLists := inc.RefreshFrame(e.frame, e.g, e.a, touched)

	var st inc.Stats
	if sr.Idempotent() {
		e.parent = inc.GrowParents(e.parent, n)
		pre := append([]float64(nil), e.x...)
		d := inc.DeduceMin(e.x, e.parent, e.g, e.a, applied)
		res := engine.Run(e.frame, sr, e.x, d.Pending, engine.Options{
			Workers:       e.opt.Workers,
			MaxRounds:     e.opt.MaxRounds,
			Tolerance:     e.opt.Tolerance,
			InitialActive: d.Active,
		})
		e.x = res.X
		inc.RepairParents(e.x, pre, d.ResetList, e.parent, e.g, e.a)
		st = inc.Stats{
			Activations: d.Activations + res.Activations,
			Rounds:      res.Rounds,
			Resets:      len(d.ResetList),
		}
	} else {
		pending, dedAct := inc.SumDeduction(e.x, oldLists, e.frame, e.a, applied)
		res := engine.Run(e.frame, sr, e.x, pending, engine.Options{
			Workers:   e.opt.Workers,
			MaxRounds: e.opt.MaxRounds,
			Tolerance: e.opt.Tolerance,
		})
		e.x = res.X
		for _, v := range applied.RemovedVertices {
			e.x[v] = sr.Zero()
		}
		st = inc.Stats{
			Activations: dedAct + res.Activations,
			Rounds:      res.Rounds,
		}
	}
	st.Duration = time.Since(start)
	return st
}
