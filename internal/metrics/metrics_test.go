package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("count = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestPhasesAccumulate(t *testing.T) {
	p := NewPhases()
	p.Add("a", 2*time.Millisecond)
	p.Add("b", 6*time.Millisecond)
	p.Add("a", 2*time.Millisecond)
	if p.Get("a") != 4*time.Millisecond {
		t.Fatalf("a = %v", p.Get("a"))
	}
	if p.Total() != 10*time.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}
	fr := p.Fractions()
	if fr["a"] != 0.4 || fr["b"] != 0.6 {
		t.Fatalf("fractions = %v", fr)
	}
	names := p.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestPhasesTimeAndString(t *testing.T) {
	p := NewPhases()
	p.Time("work", func() { time.Sleep(2 * time.Millisecond) })
	if p.Get("work") <= 0 {
		t.Fatal("Time did not record")
	}
	if !strings.Contains(p.String(), "work=") {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestPhasesMerge(t *testing.T) {
	a := NewPhases()
	a.Add("x", time.Millisecond)
	b := NewPhases()
	b.Add("x", time.Millisecond)
	b.Add("y", 3*time.Millisecond)
	a.Merge(b)
	if a.Get("x") != 2*time.Millisecond || a.Get("y") != 3*time.Millisecond {
		t.Fatalf("merge: %v", a.String())
	}
}

func TestEmptyPhases(t *testing.T) {
	p := NewPhases()
	if p.Total() != 0 || len(p.Fractions()) != 0 || p.String() != "" {
		t.Fatal("empty phases not empty")
	}
}
