package metrics

import (
	"testing"
	"time"
)

func TestRollingWindowEviction(t *testing.T) {
	r := NewRolling(4)
	for i := 0; i < 10; i++ {
		r.Observe(int64(i), time.Duration(i)*time.Millisecond)
	}
	if r.Count() != 4 {
		t.Fatalf("count %d, want window cap 4", r.Count())
	}
	// Window holds samples 6..9: mean duration 7.5ms.
	if mean := r.MeanDuration(); mean != 7500*time.Microsecond {
		t.Fatalf("mean %v, want 7.5ms", mean)
	}
}

func TestRollingRate(t *testing.T) {
	r := NewRolling(8)
	if r.Rate() != 0 || r.MeanDuration() != 0 {
		t.Fatal("empty window must report zeros")
	}
	r.Observe(1000, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	r.Observe(1000, time.Millisecond)
	rate := r.Rate()
	if rate <= 0 {
		t.Fatalf("rate %v, want > 0", rate)
	}
	// 2000 items over >=10ms elapsed: rate must be bounded by 2000/0.01.
	if rate > 2000/0.010+1 {
		t.Fatalf("rate %v implausibly high for 10ms span", rate)
	}
}
