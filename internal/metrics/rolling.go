package metrics

import (
	"sync"
	"time"
)

// Rolling is a fixed-size window over recent (count, duration) samples —
// one per applied micro-batch in the streaming pipeline — from which
// rolling throughput and latency are derived. It is concurrency-safe.
type Rolling struct {
	mu      sync.Mutex
	samples []rollSample // ring buffer
	next    int
	filled  int
}

type rollSample struct {
	n  int64
	d  time.Duration
	at time.Time
}

// NewRolling returns a window covering the most recent `window` samples.
func NewRolling(window int) *Rolling {
	if window <= 0 {
		window = 64
	}
	return &Rolling{samples: make([]rollSample, window)}
}

// Observe records one sample of n processed items taking d.
func (r *Rolling) Observe(n int64, d time.Duration) {
	r.mu.Lock()
	// at is the sample's start time, so Rate's window span includes the
	// oldest sample's own duration (otherwise a single 100ms batch
	// observed just now would report a near-infinite rate).
	r.samples[r.next] = rollSample{n: n, d: d, at: time.Now().Add(-d)}
	r.next = (r.next + 1) % len(r.samples)
	if r.filled < len(r.samples) {
		r.filled++
	}
	r.mu.Unlock()
}

// Count returns how many samples the window currently holds.
func (r *Rolling) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Rate returns items per second over the window: the summed counts
// divided by the wall-clock span from the oldest sample to now. It
// returns 0 with no samples.
func (r *Rolling) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled == 0 {
		return 0
	}
	oldest := (r.next - r.filled + len(r.samples)) % len(r.samples)
	var sum int64
	for i := 0; i < r.filled; i++ {
		sum += r.samples[(oldest+i)%len(r.samples)].n
	}
	span := time.Since(r.samples[oldest].at)
	if span <= 0 {
		// Degenerate clock resolution: fall back to summed busy time.
		for i := 0; i < r.filled; i++ {
			span += r.samples[(oldest+i)%len(r.samples)].d
		}
		if span <= 0 {
			return 0
		}
	}
	return float64(sum) / span.Seconds()
}

// MeanDuration returns the mean sample duration over the window (zero
// with no samples).
func (r *Rolling) MeanDuration() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled == 0 {
		return 0
	}
	oldest := (r.next - r.filled + len(r.samples)) % len(r.samples)
	var sum time.Duration
	for i := 0; i < r.filled; i++ {
		sum += r.samples[(oldest+i)%len(r.samples)].d
	}
	return sum / time.Duration(r.filled)
}
