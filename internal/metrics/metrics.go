// Package metrics provides the counters and timers the paper's evaluation
// reports: edge activations (one per F application — Figures 1 and 6) and
// per-phase runtime breakdown (Figure 7).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Phases accumulates named wall-clock durations, e.g. Layph's four online
// phases (layered-graph update, messages upload, Lup iteration, messages
// assignment).
type Phases struct {
	order []string
	dur   map[string]time.Duration
}

// NewPhases returns an empty phase recorder.
func NewPhases() *Phases {
	return &Phases{dur: make(map[string]time.Duration)}
}

// Add accumulates d under the named phase.
func (p *Phases) Add(name string, d time.Duration) {
	if _, ok := p.dur[name]; !ok {
		p.order = append(p.order, name)
	}
	p.dur[name] += d
}

// Time runs f and accumulates its duration under name.
func (p *Phases) Time(name string, f func()) {
	start := time.Now()
	f()
	p.Add(name, time.Since(start))
}

// Get returns the accumulated duration of a phase (zero if absent).
func (p *Phases) Get(name string) time.Duration { return p.dur[name] }

// Total returns the sum over all phases.
func (p *Phases) Total() time.Duration {
	var t time.Duration
	for _, d := range p.dur {
		t += d
	}
	return t
}

// Names returns the phase names in first-recorded order.
func (p *Phases) Names() []string { return append([]string(nil), p.order...) }

// Fractions returns each phase's share of the total, keyed by name.
func (p *Phases) Fractions() map[string]float64 {
	total := p.Total()
	out := make(map[string]float64, len(p.dur))
	for k, d := range p.dur {
		if total > 0 {
			out[k] = float64(d) / float64(total)
		}
	}
	return out
}

// Merge adds every phase of other into p.
func (p *Phases) Merge(other *Phases) {
	for _, name := range other.order {
		p.Add(name, other.dur[name])
	}
}

// String renders the phases as "name=dur(frac%)" in recorded order.
func (p *Phases) String() string {
	fr := p.Fractions()
	parts := make([]string, 0, len(p.order))
	names := append([]string(nil), p.order...)
	if len(names) == 0 {
		for k := range p.dur {
			names = append(names, k)
		}
		sort.Strings(names)
	}
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%v(%.1f%%)", n, p.dur[n].Round(time.Microsecond), 100*fr[n]))
	}
	return strings.Join(parts, " ")
}
