//go:build unix

package wal

import (
	"errors"
	"testing"
)

// TestDirLocking verifies the exclusive-open contract: a live Log owns
// its directory, a second opener fails loudly with ErrLocked, and Close
// releases the lock so a later opener succeeds.
func TestDirLocking(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncOff, CheckpointEvery: -1}

	l1, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, cfg); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: got err %v, want ErrLocked", err)
	}

	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLockReleasedOnEarlyClose covers the Close-before-Start path: a Log
// that never wrote anything must still release the directory lock.
func TestLockReleasedOnEarlyClose(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncOff, CheckpointEvery: -1}

	l1, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open after unstarted Close: %v", err)
	}
	l2.Close()
}

// TestLockFileIgnoredByRecovery makes sure the LOCK breadcrumb is never
// confused for a segment or checkpoint during recovery or pruning.
func TestLockFileIgnoredByRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncOff, CheckpointEvery: -1}
	l, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir produced recovery %+v", rec)
	}
	l.Close()

	// Reopen: the leftover LOCK file alone must not trigger recovery.
	l2, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("LOCK-only dir produced recovery %+v", rec)
	}
	l2.Close()
}
