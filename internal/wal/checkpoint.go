package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strconv"
	"strings"

	"layph/internal/graph"
)

// Checkpoint file format (text, CRC-trailed):
//
//	layph-checkpoint v1
//	seq <N>
//	updates <N>
//	meta <free-form tag, may be empty>
//	states <N>
//	<N lines of float64, shortest round-trip form; Inf/NaN literal>
//	graph
//	<graph.WriteEdgeList output>
//	crc <IEEE CRC32 of every byte above this line>
//
// The file is written to a temp name, fsynced, and renamed into place,
// then the directory is fsynced: a crash at any point leaves either the
// previous checkpoint or a complete new one, never a partial file under
// the live name. The trailing crc line catches the remaining failure
// mode — a file that renamed fine but was corrupted at rest.

// writeCheckpoint atomically persists checkpoint-<seq>.ckpt. The state
// vector may be longer than the graph's vertex space: engines that
// append internal replicas (Layph's proxy vertices live past g.Cap() in
// its flat ID space) are truncated to the real vertices — the replicas
// are derived state, reconstructed when the engine is rebuilt on the
// recovered graph, and their IDs are not stable across rebuilds anyway.
func writeCheckpoint(dir string, seq, updates uint64, meta string, g *graph.Graph, states []float64) error {
	if len(states) < g.Cap() {
		return fmt.Errorf("wal: checkpoint: %d states for a graph of %d vertices", len(states), g.Cap())
	}
	states = states[:g.Cap()]
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "layph-checkpoint v1\n")
	fmt.Fprintf(&buf, "seq %d\n", seq)
	fmt.Fprintf(&buf, "updates %d\n", updates)
	if strings.ContainsAny(meta, "\n\r") {
		return fmt.Errorf("wal: checkpoint meta contains newline")
	}
	fmt.Fprintf(&buf, "meta %s\n", meta)
	fmt.Fprintf(&buf, "states %d\n", len(states))
	for _, x := range states {
		buf.WriteString(formatState(x))
		buf.WriteByte('\n')
	}
	buf.WriteString("graph\n")
	if err := g.WriteEdgeList(&buf); err != nil {
		return fmt.Errorf("wal: checkpoint graph: %w", err)
	}
	fmt.Fprintf(&buf, "crc %d\n", crc32.ChecksumIEEE(buf.Bytes()))

	final := checkpointPath(dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	return syncDir(dir)
}

// readCheckpoint loads and verifies checkpoint-<seq>.ckpt.
func readCheckpoint(dir string, seq uint64) (g *graph.Graph, states []float64, updates uint64, meta string, err error) {
	path := checkpointPath(dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, "", fmt.Errorf("wal: %w", err)
	}
	// Split off the trailing "crc N\n" line and verify it covers the rest.
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, nil, 0, "", fmt.Errorf("wal: checkpoint %s: truncated (no trailing newline)", path)
	}
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	crcLine := strings.TrimSpace(string(data[cut:]))
	body := data[:cut]
	var want uint32
	if _, err := fmt.Sscanf(crcLine, "crc %d", &want); err != nil {
		return nil, nil, 0, "", fmt.Errorf("wal: checkpoint %s: missing crc trailer", path)
	}
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, nil, 0, "", fmt.Errorf("wal: checkpoint %s: crc mismatch (file %d, computed %d)", path, want, got)
	}

	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("unexpected end of file")
		}
		return sc.Text(), nil
	}
	fail := func(what string, err error) error {
		return fmt.Errorf("wal: checkpoint %s: %s: %w", path, what, err)
	}
	hdr, err := line()
	if err != nil || hdr != "layph-checkpoint v1" {
		return nil, nil, 0, "", fail("header", fmt.Errorf("got %q, err %v", hdr, err))
	}
	var fileSeq uint64
	if s, err := line(); err != nil {
		return nil, nil, 0, "", fail("seq", err)
	} else if _, err := fmt.Sscanf(s, "seq %d", &fileSeq); err != nil {
		return nil, nil, 0, "", fail("seq", err)
	}
	if fileSeq != seq {
		return nil, nil, 0, "", fmt.Errorf("wal: checkpoint %s: seq %d inside file named for %d", path, fileSeq, seq)
	}
	if s, err := line(); err != nil {
		return nil, nil, 0, "", fail("updates", err)
	} else if _, err := fmt.Sscanf(s, "updates %d", &updates); err != nil {
		return nil, nil, 0, "", fail("updates", err)
	}
	if s, err := line(); err != nil {
		return nil, nil, 0, "", fail("meta", err)
	} else if !strings.HasPrefix(s, "meta") {
		return nil, nil, 0, "", fail("meta", fmt.Errorf("got %q", s))
	} else {
		meta = strings.TrimPrefix(strings.TrimPrefix(s, "meta"), " ")
	}
	var nStates int
	if s, err := line(); err != nil {
		return nil, nil, 0, "", fail("states", err)
	} else if _, err := fmt.Sscanf(s, "states %d", &nStates); err != nil || nStates < 0 {
		return nil, nil, 0, "", fail("states", fmt.Errorf("bad count in %q (%v)", s, err))
	}
	states = make([]float64, nStates)
	for i := range states {
		s, err := line()
		if err != nil {
			return nil, nil, 0, "", fail(fmt.Sprintf("state %d", i), err)
		}
		states[i], err = parseState(s)
		if err != nil {
			return nil, nil, 0, "", fail(fmt.Sprintf("state %d", i), err)
		}
	}
	if s, err := line(); err != nil || s != "graph" {
		return nil, nil, 0, "", fail("graph marker", fmt.Errorf("got %q, err %v", s, err))
	}
	var gbuf bytes.Buffer
	for sc.Scan() {
		gbuf.WriteString(sc.Text())
		gbuf.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, nil, 0, "", fail("graph", err)
	}
	g, err = graph.ReadEdgeList(&gbuf)
	if err != nil {
		return nil, nil, 0, "", fail("graph", err)
	}
	if g.Cap() != nStates {
		return nil, nil, 0, "", fmt.Errorf("wal: checkpoint %s: %d states but graph capacity %d", path, nStates, g.Cap())
	}
	return g, states, updates, meta, nil
}

// formatState renders a state value in its shortest exact form. Inf and
// NaN appear for unreached vertices in shortest-path workloads, so they
// must round-trip too.
func formatState(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "+Inf"
	case math.IsInf(x, -1):
		return "-Inf"
	case math.IsNaN(x):
		return "NaN"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func parseState(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
