// Package wal is the durability layer of the streaming engine: an
// append-only write-ahead log of micro-batches plus periodic snapshot
// checkpoints, so a crashed process recovers by loading the latest valid
// checkpoint and replaying the WAL tail instead of rebuilding everything
// from nothing.
//
// # On-disk layout
//
// One directory per stream:
//
//	checkpoint-<seq>.ckpt   graph + state vector + counters at seq
//	wal-<seq>.log           batch records whose first seq is <seq>
//
// A new WAL segment is started at every checkpoint, so a segment named
// wal-<s>.log contains only records with seq >= s, and every record in
// segments older than the newest checkpoint is covered by it. Obsolete
// checkpoints and segments are pruned after each successful checkpoint.
//
// # Record framing
//
// Each WAL record is
//
//	[4B little-endian payload length]
//	[8B little-endian batch seq]
//	[4B IEEE CRC32 over the seq bytes followed by the payload]
//	[payload]
//
// where the payload is the micro-batch in delta's text wire format (one
// update per line, see delta.ParseUpdate). Recovery stops at the first
// record whose header or payload is truncated or whose CRC mismatches:
// a torn tail — the expected artifact of crashing mid-append — yields
// the longest valid prefix, and the discarded byte count is reported.
// Records never straddle segment files.
//
// # Fsync policy
//
// Appends go through a buffered writer that is flushed to the OS on
// every batch; SyncPolicy controls when fdatasync makes them storage-
// durable: SyncEveryBatch before each append returns (full durability,
// pays an fsync per micro-batch), SyncInterval at most once per
// Config.Interval (bounded loss window), SyncOff never (contents survive
// a process crash but not an OS crash).
//
// # Crash-consistency contract
//
// LogBatch(seq) returns only after the record is written (and synced,
// per policy); the stream publishes snapshot seq strictly afterwards, so
// recovery — checkpoint load, then tail replay in seq order — always
// reaches at least the last published snapshot. Checkpoints are written
// to a temp file and atomically renamed, so a crash mid-checkpoint
// leaves the previous one intact; a trailing CRC line guards the file's
// integrity on load.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
)

// SyncPolicy selects when appended records are fsynced to storage.
type SyncPolicy uint8

const (
	// SyncEveryBatch fsyncs before every LogBatch returns (default).
	SyncEveryBatch SyncPolicy = iota
	// SyncInterval fsyncs at most once per Config.Interval; a crash can
	// lose at most one interval's worth of acknowledged batches.
	SyncInterval
	// SyncOff never fsyncs: appends are flushed to the OS page cache
	// only. Survives a process kill, not a machine crash.
	SyncOff
)

// String names the policy for logs and metrics.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParseSyncPolicy parses the CLI spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncEveryBatch, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch|interval|off)", s)
}

// Config tunes a Log. The zero value gives sane defaults.
type Config struct {
	// Sync is the fsync policy (default SyncEveryBatch).
	Sync SyncPolicy
	// Interval is the SyncInterval period (0 = 100ms).
	Interval time.Duration
	// CheckpointEvery cuts a checkpoint after this many logged batches
	// (0 = 64; negative disables periodic checkpoints).
	CheckpointEvery int
	// Meta is a free-form workload tag ("algo=sssp system=layph ...")
	// stored in every checkpoint, so recovery can detect an engine
	// mismatch before serving wrong states.
	Meta string
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	return c
}

// Stats is a point-in-time summary of WAL activity.
type Stats struct {
	// Batches/Updates/Bytes count appended records, the unit updates in
	// them, and the framed bytes written.
	Batches, Updates, Bytes int64
	// Fsyncs counts fdatasync calls on the live segment.
	Fsyncs int64
	// Checkpoints counts checkpoints cut (including the Start one);
	// LastCheckpointSeq is the seq of the newest, and CheckpointSeconds
	// the cumulative wall-clock time spent writing them.
	Checkpoints       int64
	LastCheckpointSeq uint64
	CheckpointSeconds float64
	// Failures counts append/checkpoint errors surfaced to the stream.
	Failures int64
	// Policy echoes the configured fsync policy.
	Policy string
}

// Log is the append side of the durability layer. It implements the
// stream.Durable interface: LogBatch before each apply, AfterBatch (the
// checkpoint trigger) after each publish. All methods are safe for one
// writer goroutine plus concurrent Stats readers.
type Log struct {
	dir string
	cfg Config

	mu        sync.Mutex
	lock      *os.File // exclusive dir lock held from Open to Close
	f         *os.File
	segPath   string // path of the live segment
	bw        *bufWriter
	seq       uint64 // last appended seq
	lastSync  time.Time
	sinceCkpt int
	stats     Stats
}

// bufWriter is a small fixed wrapper so flushing and counting live in
// one place.
type bufWriter struct {
	buf []byte
	f   *os.File
}

func (b *bufWriter) write(p []byte) {
	b.buf = append(b.buf, p...)
}

func (b *bufWriter) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

const (
	recordHeaderBytes = 16
	// maxRecordBytes caps a record payload; recovery treats a bigger
	// declared length as corruption instead of allocating it.
	maxRecordBytes = 64 << 20
)

// Open prepares the durability directory: it creates dir if needed and,
// when durable state exists, loads the latest valid checkpoint plus the
// WAL tail into a Recovered (nil for a fresh directory). The caller
// replays the tail (Recovered.Tail) through its engine and then calls
// Start, which cuts a fresh checkpoint at the recovered position and
// begins a new segment; only then is the Log ready for LogBatch.
func Open(dir string, cfg Config) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// Take the directory lock before reading anything: a second live
	// stream appending to (or checkpointing) the same directory would
	// interleave records and corrupt both histories. The lock is advisory
	// per open file description, so it also rejects a second Open from
	// the same process, and the OS releases it when a crashed process
	// dies — crash recovery never meets a stale lock.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rec, err := Recover(dir)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	l := &Log{dir: dir, cfg: cfg.withDefaults(), lock: lock}
	l.stats.Policy = l.cfg.Sync.String()
	return l, rec, nil
}

// Start cuts a checkpoint of the current state (seq/updates counters,
// graph, converged states) and opens a fresh segment for records seq+1
// and up. For a fresh directory the caller passes its initial state
// (seq 0); after recovery it passes the replayed position. Pre-existing
// segments and older checkpoints are pruned — everything they held is
// covered by the new checkpoint.
func (l *Log) Start(seq, updates uint64, g *graph.Graph, states []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		return errors.New("wal: Start called twice")
	}
	if err := l.checkpointLocked(seq, updates, g, states); err != nil {
		return err
	}
	l.seq = seq
	l.sinceCkpt = 0
	return nil
}

// LogBatch appends one micro-batch record and makes it durable per the
// sync policy. seq must be contiguous (last seq + 1): the stream is the
// single writer and any gap is a programming error that would corrupt
// recovery, so it fails loudly.
func (l *Log) LogBatch(seq uint64, batch delta.Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.fail(errors.New("wal: LogBatch before Start"))
	}
	if seq != l.seq+1 {
		return l.fail(fmt.Errorf("wal: non-contiguous batch seq %d after %d", seq, l.seq))
	}
	var payload bytes.Buffer
	if err := delta.WriteUpdates(&payload, batch); err != nil {
		// A corrupt update must fail the append, not be silently
		// dropped: acking it would persist less than was accepted.
		return l.fail(fmt.Errorf("wal: encode batch %d: %w", seq, err))
	}
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	crc := crc32.ChecksumIEEE(hdr[4:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload.Bytes())
	binary.LittleEndian.PutUint32(hdr[12:16], crc)

	l.bw.write(hdr[:])
	l.bw.write(payload.Bytes())
	if err := l.bw.flush(); err != nil {
		return l.fail(fmt.Errorf("wal: append batch %d: %w", seq, err))
	}
	switch l.cfg.Sync {
	case SyncEveryBatch:
		if err := l.f.Sync(); err != nil {
			return l.fail(fmt.Errorf("wal: fsync batch %d: %w", seq, err))
		}
		l.stats.Fsyncs++
		l.lastSync = time.Now()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.cfg.Interval {
			if err := l.f.Sync(); err != nil {
				return l.fail(fmt.Errorf("wal: fsync batch %d: %w", seq, err))
			}
			l.stats.Fsyncs++
			l.lastSync = time.Now()
		}
	}
	l.seq = seq
	l.stats.Batches++
	l.stats.Updates += int64(len(batch))
	l.stats.Bytes += int64(recordHeaderBytes + payload.Len())
	return nil
}

// AfterBatch is the stream's post-publish hook: it counts batches toward
// the checkpoint trigger and cuts one when CheckpointEvery is reached.
func (l *Log) AfterBatch(seq, updates uint64, g *graph.Graph, states []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinceCkpt++
	if l.cfg.CheckpointEvery <= 0 || l.sinceCkpt < l.cfg.CheckpointEvery {
		return nil
	}
	if err := l.checkpointLocked(seq, updates, g, states); err != nil {
		// The WAL already holds every batch; a failed checkpoint only
		// lengthens the next recovery, so report and carry on logging
		// into the current segment.
		return err
	}
	l.sinceCkpt = 0
	return nil
}

// Checkpoint cuts a checkpoint at the given position outside the
// periodic schedule — e.g. the final checkpoint of a clean shutdown,
// after the stream has been closed (making the next start replay-free).
func (l *Log) Checkpoint(seq, updates uint64, g *graph.Graph, states []float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkpointLocked(seq, updates, g, states); err != nil {
		return err
	}
	l.sinceCkpt = 0
	return nil
}

// checkpointLocked writes checkpoint-<seq>.ckpt atomically, rotates to a
// fresh segment wal-<seq+1>.log, and prunes everything the new
// checkpoint covers. Must hold l.mu.
func (l *Log) checkpointLocked(seq, updates uint64, g *graph.Graph, states []float64) error {
	start := time.Now()
	if err := writeCheckpoint(l.dir, seq, updates, l.cfg.Meta, g, states); err != nil {
		return l.fail(err)
	}
	// Rotate: further records go to a segment strictly newer than the
	// checkpoint, so pruning stays segment-granular. When the live
	// segment already IS wal-<seq+1> (a checkpoint at an unchanged seq,
	// e.g. clean shutdown right after the last one), it holds no records
	// and is simply kept.
	target := segmentPath(l.dir, seq+1)
	if l.f == nil || l.segPath != target {
		if l.f != nil {
			if err := l.bw.flush(); err != nil {
				return l.fail(err)
			}
			if l.cfg.Sync != SyncOff {
				if err := l.f.Sync(); err != nil {
					return l.fail(err)
				}
				l.stats.Fsyncs++
			}
			if err := l.f.Close(); err != nil {
				return l.fail(err)
			}
			l.f = nil
		}
		// O_TRUNC: a pre-existing wal-<seq+1> can only hold torn garbage
		// (any valid record in it would have been replayed, putting the
		// recovered position past seq); truncating makes the torn-tail
		// discard permanent instead of appending live records behind it.
		f, err := os.OpenFile(target, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return l.fail(fmt.Errorf("wal: open segment: %w", err))
		}
		l.f = f
		l.segPath = target
		l.bw = &bufWriter{f: f}
	}
	l.lastSync = time.Now()
	if err := syncDir(l.dir); err != nil {
		return l.fail(err)
	}
	pruneObsolete(l.dir, seq)
	l.stats.Checkpoints++
	l.stats.LastCheckpointSeq = seq
	l.stats.CheckpointSeconds += time.Since(start).Seconds()
	return nil
}

// Close flushes and syncs the live segment and releases the file. It
// does not checkpoint; pair with Checkpoint for a clean shutdown.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Release the directory lock even when Start was never called (the
	// durable-open error paths Close a Log that has no live segment).
	var first error
	if l.lock != nil {
		if err := l.lock.Close(); err != nil {
			first = err
		}
		l.lock = nil
	}
	if l.f == nil {
		return first
	}
	if err := l.bw.flush(); err != nil && first == nil {
		first = err
	}
	if l.cfg.Sync != SyncOff {
		if err := l.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	l.f = nil
	return first
}

// Dir returns the durability directory.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the WAL counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func (l *Log) fail(err error) error {
	l.stats.Failures++
	return err
}

// --- directory helpers --------------------------------------------------

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", firstSeq))
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.ckpt", seq))
}

// pruneObsolete removes checkpoints older than seq and segments whose
// records are all covered by the checkpoint at seq (best-effort: a
// leftover file only wastes space, recovery skips covered records).
func pruneObsolete(dir string, seq uint64) {
	cks, segs, _ := scanDir(dir)
	for _, c := range cks {
		if c < seq {
			os.Remove(checkpointPath(dir, c))
		}
	}
	for _, s := range segs {
		if s <= seq {
			os.Remove(segmentPath(dir, s))
		}
	}
}

// scanDir lists checkpoint seqs and segment first-seqs, ascending.
func scanDir(dir string) (checkpoints, segments []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		var n uint64
		switch {
		case len(name) == len("checkpoint-0000000000000000.ckpt") &&
			name[:11] == "checkpoint-" && filepath.Ext(name) == ".ckpt":
			if _, err := fmt.Sscanf(name, "checkpoint-%d.ckpt", &n); err == nil {
				checkpoints = append(checkpoints, n)
			}
		case len(name) == len("wal-0000000000000000.log") &&
			name[:4] == "wal-" && filepath.Ext(name) == ".log":
			if _, err := fmt.Sscanf(name, "wal-%d.log", &n); err == nil {
				segments = append(segments, n)
			}
		}
	}
	sortU64(checkpoints)
	sortU64(segments)
	return checkpoints, segments, nil
}

func sortU64(x []uint64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// syncDir fsyncs a directory so renames and creates survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
