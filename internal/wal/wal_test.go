package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2.5)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 4, 7)
	g.DeleteVertex(5)
	return g
}

func edgeList(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func batchN(seq uint64, n int) delta.Batch {
	b := make(delta.Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, delta.Update{Kind: delta.AddEdge, U: uint32(seq % 4), V: uint32(i % 6), W: float64(seq) + 0.5})
	}
	return b
}

// openFresh starts a Log in a new temp dir at seq 0 with the given state.
func openFresh(t *testing.T, cfg Config, g *graph.Graph, states []float64) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir produced recovery %+v", rec)
	}
	if err := l.Start(0, 0, g, states); err != nil {
		t.Fatal(err)
	}
	return l, dir
}

// TestCheckpointTruncatesReplicaStates: a state vector longer than the
// graph's vertex space (Layph keeps proxy-vertex states past g.Cap())
// persists only the graph-aligned prefix, and a shorter one is an error.
func TestCheckpointTruncatesReplicaStates(t *testing.T) {
	g := testGraph(t)
	flat := []float64{0, 1, 2, 3, 4, 5, 100, 200} // 2 replica states past Cap
	dir := t.TempDir()
	if err := writeCheckpoint(dir, 3, 30, "", g, flat); err != nil {
		t.Fatal(err)
	}
	_, s2, _, _, err := readCheckpoint(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != g.Cap() {
		t.Fatalf("round-tripped %d states, want %d", len(s2), g.Cap())
	}
	for i := range s2 {
		if s2[i] != flat[i] {
			t.Fatalf("state %d = %v, want %v", i, s2[i], flat[i])
		}
	}
	if err := writeCheckpoint(dir, 4, 40, "", g, flat[:g.Cap()-1]); err == nil {
		t.Fatal("short state vector accepted")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g := testGraph(t)
	states := []float64{0, 1, 3.5, math.Inf(1), math.NaN(), -0.25}
	dir := t.TempDir()
	if err := writeCheckpoint(dir, 42, 900, "algo=sssp system=layph", g, states); err != nil {
		t.Fatal(err)
	}
	g2, s2, updates, meta, err := readCheckpoint(dir, 42)
	if err != nil {
		t.Fatal(err)
	}
	if updates != 900 || meta != "algo=sssp system=layph" {
		t.Fatalf("updates=%d meta=%q", updates, meta)
	}
	if len(s2) != len(states) {
		t.Fatalf("%d states, want %d", len(s2), len(states))
	}
	for i := range states {
		same := s2[i] == states[i] || (math.IsNaN(s2[i]) && math.IsNaN(states[i]))
		if !same {
			t.Fatalf("state %d: %v != %v", i, s2[i], states[i])
		}
	}
	if got, want := edgeList(t, g2), edgeList(t, g); got != want {
		t.Fatalf("graph round trip:\n%s\nwant:\n%s", got, want)
	}
}

func TestLogRecoverRoundTrip(t *testing.T) {
	g := testGraph(t)
	states := []float64{0, 1, 3.5, 4.5, 7, math.Inf(1)}
	l, dir := openFresh(t, Config{CheckpointEvery: -1}, g, states)
	var want []delta.Batch
	for seq := uint64(1); seq <= 5; seq++ {
		b := batchN(seq, 3)
		want = append(want, b)
		if err := l.LogBatch(seq, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("Recover returned nil for a populated dir")
	}
	if rec.CheckpointSeq != 0 || rec.CheckpointUpdates != 0 {
		t.Fatalf("checkpoint seq=%d updates=%d, want 0,0", rec.CheckpointSeq, rec.CheckpointUpdates)
	}
	if rec.DiscardedBytes != 0 {
		t.Fatalf("clean log discarded %d bytes", rec.DiscardedBytes)
	}
	if len(rec.Tail) != 5 {
		t.Fatalf("tail has %d records, want 5", len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Seq != uint64(i+1) {
			t.Fatalf("tail[%d].Seq = %d", i, r.Seq)
		}
		if len(r.Batch) != len(want[i]) {
			t.Fatalf("tail[%d]: %d updates, want %d", i, len(r.Batch), len(want[i]))
		}
		for j := range r.Batch {
			if r.Batch[j] != want[i][j] {
				t.Fatalf("tail[%d][%d] = %v, want %v", i, j, r.Batch[j], want[i][j])
			}
		}
	}
	if got, want := edgeList(t, rec.Graph), edgeList(t, g); got != want {
		t.Fatalf("recovered graph differs:\n%s\nwant:\n%s", got, want)
	}
}

// A checkpoint cut mid-stream rotates the segment, prunes covered files,
// and recovery replays only the records past it.
func TestCheckpointRotatesAndPrunes(t *testing.T) {
	g := testGraph(t)
	states := make([]float64, 6)
	l, dir := openFresh(t, Config{CheckpointEvery: 3, Sync: SyncOff}, g, states)
	for seq := uint64(1); seq <= 7; seq++ {
		if err := l.LogBatch(seq, batchN(seq, 2)); err != nil {
			t.Fatal(err)
		}
		// AfterBatch mirrors the stream hook: checkpoint every 3 batches.
		if err := l.AfterBatch(seq, seq*2, g, states); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	// Start's checkpoint plus the ones after seq 3 and 6.
	if st.Checkpoints != 3 || st.LastCheckpointSeq != 6 {
		t.Fatalf("stats %+v, want 3 checkpoints, last at 6", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cks, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0] != 6 {
		t.Fatalf("checkpoints on disk: %v, want [6]", cks)
	}
	if len(segs) != 1 || segs[0] != 7 {
		t.Fatalf("segments on disk: %v, want [7]", segs)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointSeq != 6 || rec.CheckpointUpdates != 12 {
		t.Fatalf("recovered at seq=%d updates=%d, want 6,12", rec.CheckpointSeq, rec.CheckpointUpdates)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 7 {
		t.Fatalf("tail %+v, want single record seq 7", rec.Tail)
	}
}

// Restart resumes appending after the recovered position: Start cuts a
// fresh checkpoint there and new batches land in a new segment.
func TestReopenAndContinue(t *testing.T) {
	g := testGraph(t)
	states := make([]float64, 6)
	l, dir := openFresh(t, Config{Sync: SyncOff, CheckpointEvery: -1}, g, states)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.LogBatch(seq, batchN(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, Config{Sync: SyncOff, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Tail) != 3 {
		t.Fatalf("recovery %+v, want 3-record tail", rec)
	}
	// Caller replays the tail, then restarts the log at the final seq.
	if err := l2.Start(3, 3, g, states); err != nil {
		t.Fatal(err)
	}
	if err := l2.LogBatch(4, batchN(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.CheckpointSeq != 3 || len(rec2.Tail) != 1 || rec2.Tail[0].Seq != 4 {
		t.Fatalf("second recovery: ckpt=%d tail=%+v", rec2.CheckpointSeq, rec2.Tail)
	}
}

func TestLogBatchSeqContiguity(t *testing.T) {
	g := testGraph(t)
	l, _ := openFresh(t, Config{Sync: SyncOff}, g, make([]float64, 6))
	defer l.Close()
	if err := l.LogBatch(1, batchN(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.LogBatch(3, batchN(3, 1)); err == nil || !strings.Contains(err.Error(), "non-contiguous") {
		t.Fatalf("seq 3 after 1 gave %v", err)
	}
	if err := l.LogBatch(1, batchN(1, 1)); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if l.Stats().Failures < 2 {
		t.Fatalf("failures = %d, want >= 2", l.Stats().Failures)
	}
	// The log is still usable at the correct next seq.
	if err := l.LogBatch(2, batchN(2, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestStartTwiceRejected(t *testing.T) {
	g := testGraph(t)
	l, _ := openFresh(t, Config{Sync: SyncOff}, g, make([]float64, 6))
	defer l.Close()
	if err := l.Start(0, 0, g, make([]float64, 6)); err == nil {
		t.Fatal("second Start accepted")
	}
}

// A batch that cannot be encoded (corrupt Kind) must fail the append —
// this is the delta.FormatUpdate bugfix observed end to end.
func TestLogBatchRejectsCorruptUpdate(t *testing.T) {
	g := testGraph(t)
	l, dir := openFresh(t, Config{Sync: SyncOff}, g, make([]float64, 6))
	bad := delta.Batch{{Kind: delta.Kind(9), U: 1, V: 2}}
	if err := l.LogBatch(1, bad); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("corrupt batch gave %v", err)
	}
	// Nothing was acked, nothing may be replayed.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 0 {
		t.Fatalf("rejected batch surfaced in tail: %+v", rec.Tail)
	}
}

func TestSyncPolicies(t *testing.T) {
	g := testGraph(t)
	states := make([]float64, 6)

	l, _ := openFresh(t, Config{Sync: SyncEveryBatch, CheckpointEvery: -1}, g, states)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.LogBatch(seq, batchN(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs < 4 {
		t.Fatalf("SyncEveryBatch fsyncs = %d, want >= 4", st.Fsyncs)
	}
	l.Close()

	l, _ = openFresh(t, Config{Sync: SyncOff, CheckpointEvery: -1}, g, states)
	base := l.Stats().Fsyncs
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.LogBatch(seq, batchN(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != base {
		t.Fatalf("SyncOff fsynced %d times during appends", st.Fsyncs-base)
	}
	l.Close()

	// SyncInterval with a huge interval behaves like off; with a zero-ish
	// elapsed clock the first append after the interval elapses syncs.
	l, _ = openFresh(t, Config{Sync: SyncInterval, Interval: time.Hour, CheckpointEvery: -1}, g, states)
	base = l.Stats().Fsyncs
	for seq := uint64(1); seq <= 4; seq++ {
		if err := l.LogBatch(seq, batchN(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs != base {
		t.Fatalf("SyncInterval(1h) fsynced %d times within the window", st.Fsyncs-base)
	}
	l.Close()
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	rec, err := Recover(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || rec != nil {
		t.Fatalf("missing dir: rec=%+v err=%v", rec, err)
	}
	rec, err = Recover(t.TempDir())
	if err != nil || rec != nil {
		t.Fatalf("empty dir: rec=%+v err=%v", rec, err)
	}
}

func TestSegmentsWithoutCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("orphan segment gave %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"batch", SyncEveryBatch}, {"interval", SyncInterval}, {"off", SyncOff}} {
		p, err := ParseSyncPolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Fatalf("String() = %q, want %q", p.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("always"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
