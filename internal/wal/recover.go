package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
)

// ErrSeqGap reports a hole in the replayable record sequence: the WAL
// tail skips a seq the checkpoint does not cover. Unlike a torn tail
// (expected after a crash, safely truncated) a gap means records were
// lost in the middle, so recovered state would silently diverge —
// recovery refuses instead.
var ErrSeqGap = errors.New("wal: sequence gap in log tail")

// Record is one replayable micro-batch from the WAL tail.
type Record struct {
	Seq   uint64
	Batch delta.Batch
}

// Recovered is everything a restart needs: the newest valid checkpoint
// plus the contiguous WAL tail past it, in replay order.
type Recovered struct {
	// Graph and States are the checkpointed materialized state.
	Graph  *graph.Graph
	States []float64
	// Meta is the workload tag stored at checkpoint time.
	Meta string
	// CheckpointSeq/CheckpointUpdates are the stream counters at the
	// checkpoint; replaying Tail advances them.
	CheckpointSeq     uint64
	CheckpointUpdates uint64
	// Tail holds the records with seq > CheckpointSeq, contiguous from
	// CheckpointSeq+1, ending at the last durable record.
	Tail []Record
	// DiscardedBytes counts trailing bytes dropped as a torn tail
	// (truncated header/payload or CRC mismatch in the final segment).
	DiscardedBytes int64
	// LoadDuration is the wall-clock time spent reading and verifying
	// the checkpoint and segments (excludes engine replay).
	LoadDuration time.Duration
}

// Recover reads the durability directory without mutating it: it loads
// the newest checkpoint that verifies, then scans every segment for
// records past it. Returns (nil, nil) when the directory holds no
// durable state. Checkpoints that fail verification are skipped in
// favor of older ones; only if none loads is the error surfaced.
func Recover(dir string) (*Recovered, error) {
	start := time.Now()
	cks, segs, err := scanDir(dir)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if len(cks) == 0 && len(segs) == 0 {
		return nil, nil
	}
	if len(cks) == 0 {
		return nil, fmt.Errorf("wal: %s has WAL segments but no checkpoint", dir)
	}
	rec := &Recovered{}
	var ckErr error
	loaded := false
	for i := len(cks) - 1; i >= 0; i-- {
		g, states, updates, meta, err := readCheckpoint(dir, cks[i])
		if err != nil {
			if ckErr == nil {
				ckErr = err
			}
			continue
		}
		rec.Graph, rec.States, rec.Meta = g, states, meta
		rec.CheckpointSeq, rec.CheckpointUpdates = cks[i], updates
		loaded = true
		break
	}
	if !loaded {
		return nil, fmt.Errorf("wal: no loadable checkpoint in %s: %w", dir, ckErr)
	}

	// Scan segments oldest-first. Records at or below the checkpoint seq
	// are covered by it and skipped; the rest must run contiguously from
	// CheckpointSeq+1. Only the newest segment may legitimately end in a
	// torn record; corruption in an older one implies the gap it would
	// create, which the contiguity check turns into ErrSeqGap.
	next := rec.CheckpointSeq + 1
	for i, s := range segs {
		records, discarded, err := readSegment(segmentPath(dir, s))
		if err != nil {
			return nil, err
		}
		if discarded > 0 && i == len(segs)-1 {
			rec.DiscardedBytes += discarded
		}
		for _, r := range records {
			if r.Seq < next {
				continue
			}
			if r.Seq > next {
				return nil, fmt.Errorf("%w: have %d, want %d (segment %s)",
					ErrSeqGap, r.Seq, next, segmentPath(dir, s))
			}
			rec.Tail = append(rec.Tail, r)
			next++
		}
	}
	rec.LoadDuration = time.Since(start)
	return rec, nil
}

// readSegment parses one WAL segment, returning every record up to the
// first invalid one and the byte count of whatever trailing region was
// discarded. A clean EOF at a record boundary discards nothing.
func readSegment(path string) (records []Record, discarded int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return records, 0, nil
		}
		if len(rest) < recordHeaderBytes {
			return records, int64(len(rest)), nil
		}
		payloadLen := binary.LittleEndian.Uint32(rest[0:4])
		seq := binary.LittleEndian.Uint64(rest[4:12])
		want := binary.LittleEndian.Uint32(rest[12:16])
		if payloadLen > maxRecordBytes {
			// A garbage length would otherwise read past any plausible
			// record; treat as torn from here.
			return records, int64(len(rest)), nil
		}
		end := recordHeaderBytes + int(payloadLen)
		if len(rest) < end {
			return records, int64(len(rest)), nil
		}
		payload := rest[recordHeaderBytes:end]
		crc := crc32.ChecksumIEEE(rest[4:12])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			return records, int64(len(rest)), nil
		}
		batch, err := delta.ReadUpdates(bytes.NewReader(payload))
		if err != nil {
			// CRC passed but the payload fails to parse: this is not a
			// torn write, it is an encoder/decoder mismatch. Fail loudly
			// rather than silently dropping an acknowledged batch.
			return nil, 0, fmt.Errorf("wal: segment %s: record seq %d: %w", path, seq, err)
		}
		records = append(records, Record{Seq: seq, Batch: batch})
		off += end
	}
}

// RecoveryInfo summarizes a completed recovery for metrics and logs.
type RecoveryInfo struct {
	// CheckpointSeq is where the loaded checkpoint stood; Seq/Updates
	// are the stream counters after tail replay (what the stream
	// resumed from).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Seq           uint64 `json:"seq"`
	Updates       uint64 `json:"updates"`
	// ReplayedBatches/ReplayedUpdates count the WAL tail pushed back
	// through the incremental engine.
	ReplayedBatches int64 `json:"replayed_batches"`
	ReplayedUpdates int64 `json:"replayed_updates"`
	// DiscardedBytes is the torn-tail region dropped, if any.
	DiscardedBytes int64 `json:"discarded_bytes"`
	// LoadMillis covers checkpoint+segment reading, ReplayMillis the
	// engine replay of the tail.
	LoadMillis   float64 `json:"load_ms"`
	ReplayMillis float64 `json:"replay_ms"`
	// StatesVerified is true when the rebuilt engine's converged states
	// matched the checkpoint's state vector (an end-to-end integrity
	// check recovery gets for free).
	StatesVerified bool `json:"states_verified"`
	// Meta is the workload tag from the checkpoint.
	Meta string `json:"meta,omitempty"`
}
