package wal

// Fault-injection tests: every corruption a crash (or bad disk) can
// leave behind must map to the documented recovery behavior — torn
// tails truncate to the last valid record, mid-history loss fails
// loudly as a sequence gap, and a damaged checkpoint falls back to an
// older one.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"strings"
	"testing"

	"layph/internal/delta"
)

// encodeRecord frames one record exactly as Log.LogBatch does — an
// independent reimplementation so the tests also pin the wire format.
func encodeRecord(t *testing.T, seq uint64, batch delta.Batch) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := delta.WriteUpdates(&payload, batch); err != nil {
		t.Fatal(err)
	}
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint64(hdr[4:12], seq)
	crc := crc32.ChecksumIEEE(hdr[4:12])
	crc = crc32.Update(crc, crc32.IEEETable, payload.Bytes())
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	return append(hdr[:], payload.Bytes()...)
}

// writeSegment hand-writes a segment file from framed records.
func writeSegment(t *testing.T, path string, recs ...[]byte) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		buf.Write(r)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// seededDir builds a dir with a seq-0 checkpoint and one segment holding
// records 1..n, then returns the segment path and per-record byte sizes.
func seededDir(t *testing.T, n int) (dir, seg string, recSizes []int) {
	t.Helper()
	dir = t.TempDir()
	g := testGraph(t)
	if err := writeCheckpoint(dir, 0, 0, "", g, make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	seg = segmentPath(dir, 1)
	var recs [][]byte
	for seq := 1; seq <= n; seq++ {
		r := encodeRecord(t, uint64(seq), batchN(uint64(seq), 2))
		recs = append(recs, r)
		recSizes = append(recSizes, len(r))
	}
	writeSegment(t, seg, recs...)
	return dir, seg, recSizes
}

// Truncation anywhere inside the final record — header or payload —
// drops exactly that record and reports the discarded bytes.
func TestTornTailTruncation(t *testing.T) {
	for _, cut := range []int{1, recordHeaderBytes - 1, recordHeaderBytes, recordHeaderBytes + 3} {
		dir, seg, sizes := seededDir(t, 3)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		lastStart := len(data) - sizes[2]
		torn := data[:lastStart+cut]
		if err := os.WriteFile(seg, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(rec.Tail) != 2 || rec.Tail[1].Seq != 2 {
			t.Fatalf("cut=%d: tail %+v, want seqs 1,2", cut, rec.Tail)
		}
		if rec.DiscardedBytes != int64(cut) {
			t.Fatalf("cut=%d: discarded %d bytes, want %d", cut, rec.DiscardedBytes, cut)
		}
	}
}

// A flipped byte in the final record's payload fails its CRC; the record
// and everything after it is discarded as a torn tail.
func TestCRCMismatchDiscardsTail(t *testing.T) {
	dir, seg, sizes := seededDir(t, 3)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(data) - sizes[2]
	data[lastStart+recordHeaderBytes] ^= 0x40 // first payload byte of record 3
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 2 {
		t.Fatalf("tail %+v, want 2 records", rec.Tail)
	}
	if rec.DiscardedBytes != int64(sizes[2]) {
		t.Fatalf("discarded %d, want %d", rec.DiscardedBytes, sizes[2])
	}
}

// A corrupt length field cannot be trusted to skip anywhere sane: the
// scan must stop rather than read garbage as a record boundary.
func TestGarbageLengthFieldStopsScan(t *testing.T) {
	dir, seg, sizes := seededDir(t, 2)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	secondStart := len(data) - sizes[1]
	binary.LittleEndian.PutUint32(data[secondStart:], 0xFFFFFFFF)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 1 {
		t.Fatalf("tail %+v, want just seq 1", rec.Tail)
	}
	if rec.DiscardedBytes != int64(sizes[1]) {
		t.Fatalf("discarded %d, want %d", rec.DiscardedBytes, sizes[1])
	}
}

// Corruption in a NON-final segment is not a torn tail: the records it
// destroys are followed by durable ones, so truncating would silently
// drop acknowledged batches from the middle of history. Recovery must
// refuse with ErrSeqGap.
func TestTornMidHistoryIsSeqGap(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	if err := writeCheckpoint(dir, 0, 0, "", g, make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	r1 := encodeRecord(t, 1, batchN(1, 2))
	r2 := encodeRecord(t, 2, batchN(2, 2))
	r3 := encodeRecord(t, 3, batchN(3, 2))
	// Segment wal-1 holds records 1..3 but record 3 is torn off mid-way;
	// segment wal-4 holds records 4..5 intact.
	writeSegment(t, segmentPath(dir, 1), r1, r2, r3[:len(r3)-5])
	writeSegment(t, segmentPath(dir, 4),
		encodeRecord(t, 4, batchN(4, 2)), encodeRecord(t, 5, batchN(5, 2)))
	_, err := Recover(dir)
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("mid-history tear gave %v, want ErrSeqGap", err)
	}
}

// A segment whose first needed record is past checkpoint+1 (e.g. a
// deleted or lost segment in between) is the same gap.
func TestMissingSegmentIsSeqGap(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	if err := writeCheckpoint(dir, 0, 0, "", g, make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, segmentPath(dir, 3), encodeRecord(t, 3, batchN(3, 2)))
	_, err := Recover(dir)
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("missing records 1-2 gave %v, want ErrSeqGap", err)
	}
}

// Records at or below the checkpoint seq are covered by it: stale
// segments replay nothing and duplicates are impossible by construction.
func TestRecordsCoveredByCheckpointSkipped(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	if err := writeCheckpoint(dir, 2, 4, "", g, make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, segmentPath(dir, 1),
		encodeRecord(t, 1, batchN(1, 2)), encodeRecord(t, 2, batchN(2, 2)),
		encodeRecord(t, 3, batchN(3, 2)))
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointSeq != 2 || len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 {
		t.Fatalf("ckpt=%d tail=%+v, want ckpt 2 and tail [3]", rec.CheckpointSeq, rec.Tail)
	}
}

// A corrupted newest checkpoint falls back to the previous one, and the
// tail re-extends accordingly. With no loadable checkpoint at all,
// recovery reports the verification failure.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	states := make([]float64, 6)
	if err := writeCheckpoint(dir, 0, 0, "", g, states); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(dir, 2, 4, "", g, states); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, segmentPath(dir, 1),
		encodeRecord(t, 1, batchN(1, 2)), encodeRecord(t, 2, batchN(2, 2)))
	writeSegment(t, segmentPath(dir, 3), encodeRecord(t, 3, batchN(3, 2)))

	// Healthy: newest checkpoint wins, only record 3 replays.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointSeq != 2 || len(rec.Tail) != 1 {
		t.Fatalf("healthy: ckpt=%d tail=%d", rec.CheckpointSeq, len(rec.Tail))
	}

	// Flip a byte inside checkpoint-2: recovery falls back to seq 0 and
	// replays all three records.
	path := checkpointPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointSeq != 0 || len(rec.Tail) != 3 {
		t.Fatalf("fallback: ckpt=%d tail=%d, want 0 and 3", rec.CheckpointSeq, len(rec.Tail))
	}

	// Corrupt the older one too: now nothing loads and the error names
	// the cause.
	path0 := checkpointPath(dir, 0)
	data0, err := os.ReadFile(path0)
	if err != nil {
		t.Fatal(err)
	}
	data0[len(data0)/2] ^= 0x01
	if err := os.WriteFile(path0, data0, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil || !strings.Contains(err.Error(), "no loadable checkpoint") {
		t.Fatalf("all-corrupt gave %v", err)
	}
}

// An empty batch is a legal record (heartbeat/no-op flush) and must
// round-trip without confusing the scanner.
func TestEmptyBatchRecord(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t)
	if err := writeCheckpoint(dir, 0, 0, "", g, make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
	writeSegment(t, segmentPath(dir, 1),
		encodeRecord(t, 1, delta.Batch{}), encodeRecord(t, 2, batchN(2, 1)))
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 2 || len(rec.Tail[0].Batch) != 0 || rec.Tail[1].Seq != 2 {
		t.Fatalf("tail %+v", rec.Tail)
	}
}
