//go:build !unix

package wal

import (
	"errors"
	"os"
	"path/filepath"
)

// ErrLocked reports that another live Log holds the WAL directory.
var ErrLocked = errors.New("wal: directory is locked by another live stream")

// lockDir on non-unix platforms opens the breadcrumb file without an OS
// lock: flock is unavailable, and an exclusive-create scheme would leave
// stale locks behind after a crash — the exact case the WAL exists for.
// Concurrent-open protection is therefore unix-only.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
}
