//go:build unix

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
)

// ErrLocked reports that another live Log (in this process or another)
// holds the WAL directory.
var ErrLocked = errors.New("wal: directory is locked by another live stream")

// lockDir takes a non-blocking exclusive flock on <dir>/LOCK. flock is
// bound to the open file description: a crashed process's lock vanishes
// with its fds (no stale-lock recovery dance), while a second Open —
// even from the same process — gets a fresh description and fails loudly.
// The file itself is left in place; only the lock matters.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	// Best-effort breadcrumb for operators inspecting the directory.
	f.Truncate(0)
	f.WriteString(strconv.Itoa(os.Getpid()) + "\n")
	return f, nil
}
