package dzig

import (
	"testing"

	"layph/internal/algo"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

func factory(g *graph.Graph, a algo.Algorithm) inc.System { return New(g, a) }

func TestEquivalenceSumAlgorithms(t *testing.T) {
	for name, mk := range enginetest.SumAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "dzig/"+name, factory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestIdentity(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	e := New(g, algo.NewPageRank(0.85, 1e-8))
	if e.Name() != "dzig" {
		t.Fatalf("name = %q", e.Name())
	}
	if len(e.States()) != 2 {
		t.Fatal("states")
	}
}

func TestRejectsMonotonic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for BFS")
		}
	}()
	New(graph.New(1), algo.NewBFS(0))
}
