// Package dzig reimplements the algorithmic strategy of DZiG (Mariappan,
// Che & Vora, EuroSys 2021): GraphBolt's dependency-driven synchronous
// incremental processing extended with sparsity-aware refinement. While the
// per-iteration changed set is sparse, value deltas are pushed along
// out-edges instead of re-pulling full in-lists; when it densifies past a
// threshold, processing falls back to GraphBolt-style pulls.
//
// The engine is the sparsity-aware mode of the graphbolt package; this
// package gives it the system identity the paper's comparison tables use.
package dzig

import (
	"layph/internal/algo"
	"layph/internal/graph"
	"layph/internal/graphbolt"
)

// Engine is a DZiG instance; see package graphbolt for the mechanics.
type Engine = graphbolt.Engine

// New builds a DZiG engine over g and runs the synchronous batch
// computation. It panics for idempotent algorithms (DZiG provides no
// SSSP/BFS implementations, as noted in the paper).
func New(g *graph.Graph, a algo.Algorithm) *Engine {
	return graphbolt.New(g, a, graphbolt.ModeSparseAware)
}
