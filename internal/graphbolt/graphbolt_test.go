package graphbolt

import (
	"testing"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/enginetest"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
)

func pullFactory(g *graph.Graph, a algo.Algorithm) inc.System { return New(g, a, ModePull) }
func sparseFactory(g *graph.Graph, a algo.Algorithm) inc.System {
	return New(g, a, ModeSparseAware)
}

func TestEquivalenceSumAlgorithmsPull(t *testing.T) {
	for name, mk := range enginetest.SumAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "graphbolt/"+name, pullFactory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceSumAlgorithmsSparse(t *testing.T) {
	for name, mk := range enginetest.SumAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "dzig/"+name, sparseFactory, mk, enginetest.DefaultConfig())
		})
	}
}

func TestEquivalenceWithVertexUpdates(t *testing.T) {
	cfg := enginetest.DefaultConfig()
	cfg.VertexUpdates = true
	for name, mk := range enginetest.SumAlgorithms() {
		t.Run("pull/"+name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "graphbolt/"+name, pullFactory, mk, cfg)
		})
		t.Run("sparse/"+name, func(t *testing.T) {
			enginetest.RunEquivalence(t, "dzig/"+name, sparseFactory, mk, cfg)
		})
	}
}

func TestRejectsMonotonic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for SSSP")
		}
	}()
	New(graph.New(1), algo.NewSSSP(0), ModePull)
}

func TestNames(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	if New(g, algo.NewPageRank(0.85, 1e-8), ModePull).Name() != "graphbolt" {
		t.Fatal("pull name")
	}
	if New(g, algo.NewPageRank(0.85, 1e-8), ModeSparseAware).Name() != "dzig" {
		t.Fatal("sparse name")
	}
}

func TestBatchMatchesAsyncEngine(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 300, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4, Seed: 4,
	})
	a := algo.NewPageRank(0.85, 1e-10)
	e := New(g, a, ModePull)
	want := engine.RunBatch(g, a, engine.Options{})
	if !algo.StatesClose(e.States(), want.X, 1e-6) {
		t.Fatalf("sync batch diverges from async engine: %v", algo.MaxStateDiff(e.States(), want.X))
	}
}

func TestSparseAwareFewerActivations(t *testing.T) {
	// DZiG's defining property: on a small delta its sparsity-aware
	// refinement activates far fewer edges than pull-based GraphBolt.
	mk := func() (*graph.Graph, *delta.Applied, algo.Algorithm) {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices: 600, MeanCommunity: 30, IntraDegree: 7, InterDegree: 0.4, Seed: 17,
		})
		a := algo.NewPageRank(0.85, 1e-8)
		return g, nil, a
	}
	gPull, _, aPull := mk()
	pull := New(gPull, aPull, ModePull)
	appliedPull := delta.Apply(gPull, delta.NewGenerator(3).EdgeBatch(gPull, 10, false))
	stPull := pull.Update(appliedPull)

	gSparse, _, aSparse := mk()
	sparse := New(gSparse, aSparse, ModeSparseAware)
	appliedSparse := delta.Apply(gSparse, delta.NewGenerator(3).EdgeBatch(gSparse, 10, false))
	stSparse := sparse.Update(appliedSparse)

	if stSparse.Activations >= stPull.Activations {
		t.Fatalf("dzig activations %d >= graphbolt %d on a 10-edge delta",
			stSparse.Activations, stPull.Activations)
	}
	if !algo.StatesClose(pull.States(), sparse.States(), 1e-6) {
		t.Fatalf("modes diverge: %v", algo.MaxStateDiff(pull.States(), sparse.States()))
	}
}

func TestRepeatedBatchesStayAccurate(t *testing.T) {
	// Error must not accumulate across many refinement rounds.
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 300, MeanCommunity: 25, IntraDegree: 5, InterDegree: 0.4, Weighted: true, Seed: 23,
	})
	a := algo.NewPHP(0, 0.8, 1e-10)
	e := New(g, a, ModeSparseAware)
	genr := delta.NewGenerator(7)
	for i := 0; i < 8; i++ {
		applied := delta.Apply(g, genr.EdgeBatch(g, 30, true))
		e.Update(applied)
	}
	want := engine.RunBatch(g, algo.NewPHP(0, 0.8, 1e-10), engine.Options{})
	if !algo.StatesClose(e.States(), want.X, 1e-6) {
		t.Fatalf("drift after 8 batches: %v", algo.MaxStateDiff(e.States(), want.X))
	}
}
