// Package graphbolt reimplements the algorithmic strategy of GraphBolt
// (Mariappan & Vora, EuroSys 2019): dependency-driven synchronous
// incremental processing for accumulative (sum-semiring) algorithms.
//
// The batch run memoizes the full per-iteration state sequence x_0, x_1, …,
// x_T of the synchronous (Jacobi) iteration
//
//	x_i(v) = m0(v) + Σ_{(u,v)∈E} w(u,v) · x_{i-1}(u).
//
// On an update, the engine walks the iterations in order, re-aggregating
// exactly the vertices whose inputs changed — structurally dirty vertices
// (an in-edge or an in-weight changed) at every iteration, plus the
// out-neighbors of vertices whose previous-iteration value changed —
// and refines the memoized sequence until it re-converges. Re-aggregation is
// pull-based over the vertex's whole in-edge list, which is GraphBolt's
// model and the reason for its high edge-activation counts on small deltas.
//
// ModeSparseAware adds DZiG's (Mariappan, Che & Vora, EuroSys 2021)
// sparsity-aware refinement: when the changed set is sparse, value *changes*
// are pushed along out-edges instead of re-pulling whole in-lists, which
// collapses the activation count for small batches while producing the same
// states (the iteration is linear).
//
// Like the original systems, only non-idempotent algorithms (PageRank, PHP)
// are supported.
package graphbolt

import (
	"fmt"
	"math"
	"time"

	"layph/internal/algo"
	"layph/internal/delta"
	"layph/internal/graph"
	"layph/internal/inc"
)

// Mode selects the refinement strategy.
type Mode int

const (
	// ModePull is classic GraphBolt: pull-based re-aggregation.
	ModePull Mode = iota
	// ModeSparseAware is DZiG: push value deltas while the frontier is
	// sparse, fall back to pulls when it densifies.
	ModeSparseAware
)

// DensityThreshold is the changed-set fraction above which ModeSparseAware
// falls back to pull-based refinement (DZiG's density switch).
const DensityThreshold = 0.2

// Engine is a GraphBolt/DZiG instance bound to one graph and one algorithm.
type Engine struct {
	g    *graph.Graph
	a    algo.Algorithm
	mode Mode
	eps  float64
	// levels[i][v] is the memoized synchronous state x_i(v).
	levels [][]float64
	// InitialStats records the cost of the initial batch run.
	InitialStats inc.Stats

	maxLevels int
}

// New builds the engine and runs the synchronous batch computation,
// memoizing every iteration's states. It panics for idempotent algorithms
// (GraphBolt provides no SSSP/BFS implementations, as noted in the paper).
func New(g *graph.Graph, a algo.Algorithm, mode Mode) *Engine {
	if a.Semiring().Idempotent() {
		panic(fmt.Sprintf("graphbolt: %s is not an accumulative (sum) algorithm", a.Name()))
	}
	e := &Engine{g: g, a: a, mode: mode, maxLevels: 1000}
	e.eps = a.Tolerance() * 0.01
	if e.eps < 1e-15 {
		e.eps = 1e-15
	}
	start := time.Now()
	x0 := make([]float64, g.Cap())
	g.Vertices(func(v graph.VertexID) { x0[v] = a.InitMessage(v) })
	e.levels = [][]float64{x0}
	var acts int64
	for len(e.levels) < e.maxLevels {
		prev := e.levels[len(e.levels)-1]
		next := make([]float64, g.Cap())
		worst := 0.0
		g.Vertices(func(v graph.VertexID) {
			next[v] = e.aggregate(v, prev, &acts)
			if d := math.Abs(next[v] - prev[v]); d > worst {
				worst = d
			}
		})
		e.levels = append(e.levels, next)
		if worst <= a.Tolerance() {
			break
		}
	}
	e.InitialStats = inc.Stats{
		Activations: acts,
		Rounds:      len(e.levels) - 1,
		Duration:    time.Since(start),
	}
	return e
}

// aggregate pulls v's full in-list against states prev.
func (e *Engine) aggregate(v graph.VertexID, prev []float64, acts *int64) float64 {
	val := e.a.InitMessage(v)
	for _, ie := range e.g.In(v) {
		u := ie.To
		xu := 0.0
		if int(u) < len(prev) {
			xu = prev[u]
		}
		if xu == 0 {
			continue
		}
		val += xu * e.a.EdgeWeight(e.g, u, graph.Edge{To: v, W: ie.W})
		*acts++
	}
	return val
}

// Name returns "graphbolt" or "dzig" depending on the mode.
func (e *Engine) Name() string {
	if e.mode == ModeSparseAware {
		return "dzig"
	}
	return "graphbolt"
}

// States returns the converged states (the last memoized iteration).
func (e *Engine) States() []float64 { return e.levels[len(e.levels)-1] }

// Update refines the memoized iteration sequence against the applied batch.
func (e *Engine) Update(applied *delta.Applied) inc.Stats {
	start := time.Now()
	var st inc.Stats
	n := e.g.Cap()
	for i := range e.levels {
		e.levels[i] = inc.GrowVectors(e.levels[i], n, 0)
	}

	// Structurally dirty targets: any vertex whose in-aggregation formula
	// changed — targets of added/removed edges plus all current out-targets
	// of sources whose out-lists (and hence per-edge weights) changed.
	dirty := make(map[graph.VertexID]struct{})
	for _, ed := range applied.AddedEdges {
		dirty[ed.To] = struct{}{}
	}
	for _, ed := range applied.RemovedEdges {
		dirty[ed.To] = struct{}{}
	}
	for u := range inc.TouchedSources(applied) {
		if !e.g.Alive(u) {
			continue
		}
		for _, oe := range e.g.Out(u) {
			dirty[oe.To] = struct{}{}
		}
	}
	// An added vertex's aggregation formula changed from nonexistent to
	// m0 + in-edges; even without in-edges it must be pulled once per level
	// so its root message materializes at every iteration.
	for _, v := range applied.AddedVertices {
		dirty[v] = struct{}{}
	}

	// Iteration 0 changes: root messages appear (added vertices) or vanish
	// (removed vertices).
	changed := make(map[graph.VertexID]float64) // vertex -> delta at current level
	x0 := e.levels[0]
	for _, v := range applied.AddedVertices {
		if d := e.a.InitMessage(v) - x0[v]; d != 0 {
			x0[v] += d
			changed[v] = d
		}
	}
	for _, v := range applied.RemovedVertices {
		if x0[v] != 0 {
			changed[v] = -x0[v]
			x0[v] = 0
		}
	}

	oldT := len(e.levels) - 1
	for i := 1; i < e.maxLevels; i++ {
		if i > oldT && len(changed) == 0 && len(dirty) == 0 {
			break
		}
		if i >= len(e.levels) {
			// Extend the memoized sequence: the old run had converged, so
			// its hypothetical next level equals its last one.
			e.levels = append(e.levels, append([]float64(nil), e.levels[len(e.levels)-1]...))
		}
		prev := e.levels[i-1]
		cur := e.levels[i]
		next := make(map[graph.VertexID]float64)

		// Affected set: dirty vertices every iteration, plus out-neighbors
		// of previously changed vertices.
		usePush := e.mode == ModeSparseAware &&
			len(changed) < int(DensityThreshold*float64(e.g.NumVertices()))

		pull := make(map[graph.VertexID]struct{}, len(dirty))
		for v := range dirty {
			pull[v] = struct{}{}
		}
		if usePush {
			// DZiG sparse path: push deltas from changed vertices; dirty
			// vertices still need full pulls.
			for u, du := range changed {
				if !e.g.Alive(u) {
					continue
				}
				for _, oe := range e.g.Out(u) {
					v := oe.To
					if _, isDirty := pull[v]; isDirty {
						continue
					}
					contrib := du * e.a.EdgeWeight(e.g, u, graph.Edge{To: v, W: oe.W})
					st.Activations++
					if contrib != 0 {
						next[v] += contrib
					}
				}
			}
			for v, d := range next {
				if math.Abs(d) <= e.eps {
					delete(next, v)
					continue
				}
				cur[v] += d
			}
		} else {
			for u := range changed {
				if !e.g.Alive(u) {
					continue
				}
				for _, oe := range e.g.Out(u) {
					pull[oe.To] = struct{}{}
				}
			}
		}
		for v := range pull {
			var newVal float64
			if e.g.Alive(v) {
				newVal = e.aggregate(v, prev, &st.Activations)
			}
			if d := newVal - cur[v]; math.Abs(d) > e.eps {
				cur[v] = newVal
				next[v] = d
			}
		}
		// Removed vertices hold no state at any level.
		for _, v := range applied.RemovedVertices {
			if cur[v] != 0 {
				next[v] = -cur[v]
				cur[v] = 0
			}
		}
		changed = next
		st.Rounds++

		if i > oldT && maxAbs(changed) <= e.a.Tolerance() {
			// Extended tail has re-converged.
			e.levels = e.levels[:i+1]
			break
		}
		if i == e.maxLevels-1 {
			break
		}
		if i == len(e.levels)-1 && len(changed) == 0 && i >= oldT {
			break
		}
	}
	st.Duration = time.Since(start)
	return st
}

func maxAbs(m map[graph.VertexID]float64) float64 {
	worst := 0.0
	for _, d := range m {
		if a := math.Abs(d); a > worst {
			worst = a
		}
	}
	return worst
}
