package stream

// Snapshot read helpers for serving layers: bounds-checked point reads
// and top-k selection over the immutable state vector. Everything here
// operates on the published copy, so callers (HTTP handlers, many of
// them concurrently) never touch engine state or locks.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"layph/internal/graph"
)

// VertexState pairs a vertex id with its state value in one snapshot.
type VertexState struct {
	V graph.VertexID `json:"v"`
	X float64        `json:"x"`
}

// vsWire is the JSON shape of a VertexState: x is a number, or one of
// the strings "Infinity"/"-Infinity"/"NaN" for the IEEE values JSON
// cannot carry (SSSP/BFS state unreachable vertices as +Inf).
type vsWire struct {
	V graph.VertexID `json:"v"`
	X any            `json:"x"`
}

// MarshalJSON implements json.Marshaler with the non-finite encoding
// above, so serving layers can return any state vector verbatim.
func (vs VertexState) MarshalJSON() ([]byte, error) {
	var x any = vs.X
	switch {
	case math.IsInf(vs.X, 1):
		x = "Infinity"
	case math.IsInf(vs.X, -1):
		x = "-Infinity"
	case math.IsNaN(vs.X):
		x = "NaN"
	}
	return json.Marshal(vsWire{V: vs.V, X: x})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (vs *VertexState) UnmarshalJSON(b []byte) error {
	var w vsWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	vs.V = w.V
	switch x := w.X.(type) {
	case float64:
		vs.X = x
	case string:
		switch x {
		case "Infinity":
			vs.X = math.Inf(1)
		case "-Infinity":
			vs.X = math.Inf(-1)
		case "NaN":
			vs.X = math.NaN()
		default:
			return fmt.Errorf("stream: bad state value %q", x)
		}
	default:
		return fmt.Errorf("stream: bad state value %v", w.X)
	}
	return nil
}

// State returns the snapshot state of v; ok is false when v lies beyond
// the state vector (the vertex did not exist at publication time).
func (sn *Snapshot) State(v graph.VertexID) (float64, bool) {
	if int(v) >= len(sn.States) {
		return 0, false
	}
	return sn.States[v], true
}

// Len returns the length of the snapshot's state vector.
func (sn *Snapshot) Len() int { return len(sn.States) }

// TopK returns up to k vertices with the best finite state values —
// smallest when largest is false (SSSP/BFS distances), biggest when true
// (PageRank/PHP mass) — ordered best first, ties broken by lower vertex
// id. Non-finite states (unreached vertices) are skipped. It runs in
// O(n log k) over the state vector, without mutating the snapshot.
func (sn *Snapshot) TopK(k int, largest bool) []VertexState {
	if k <= 0 {
		return nil
	}
	better := func(a, b VertexState) bool {
		if a.X != b.X {
			if largest {
				return a.X > b.X
			}
			return a.X < b.X
		}
		return a.V < b.V
	}
	// Slice-heap with the WORST kept entry at the root, so each new
	// candidate only competes with the current cutoff.
	heap := make([]VertexState, 0, k)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && better(heap[worst], heap[l]) {
				worst = l
			}
			if r < len(heap) && better(heap[worst], heap[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !better(heap[p], heap[i]) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for v, x := range sn.States {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		cand := VertexState{V: graph.VertexID(v), X: x}
		if len(heap) < k {
			heap = append(heap, cand)
			siftUp(len(heap) - 1)
			continue
		}
		if better(cand, heap[0]) {
			heap[0] = cand
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return better(heap[i], heap[j]) })
	return heap
}
