// Package stream turns the repository's one-shot ApplyBatch/Update
// lifecycle into a continuous ingestion pipeline: an ordered update log
// that accepts a stream of unit updates, micro-batches them, applies each
// micro-batch atomically through delta.Apply, and drives any inc.System
// (Layph or a baseline) through Update.
//
// Micro-batching semantics: a pending micro-batch is flushed when it
// reaches Config.MaxBatch updates (count trigger) or when Config.MaxDelay
// has elapsed since its first update arrived (time trigger), whichever
// comes first. Updates are applied strictly in arrival order; the worker
// goroutine is the only mutator of the graph and the system once the
// stream is running.
//
// Snapshot semantics: after every flushed micro-batch the worker publishes
// an immutable Snapshot (a copy of the converged state vector plus
// sequence counters). Query returns the most recently published snapshot,
// so readers never observe a half-applied batch and never race with the
// engine's in-place state updates.
//
// Backpressure: the log is a bounded queue of Config.QueueCap updates.
// Under the Block policy Push blocks until space frees up; under Drop it
// fails fast with ErrQueueFull and counts the update as dropped.
//
// Shutdown: Drain blocks until everything pushed before it has been
// applied and published; Close drains and then stops the worker. Push
// after Close returns ErrClosed.
//
// Durability: with Config.Durability set (see internal/wal), every
// micro-batch is handed to the hook BEFORE it is applied and published —
// write-ahead logging — so any state visible through Query survives a
// crash. The durable boundary is the published snapshot: updates acked by
// Push but still queued or pending when the process dies are lost, which
// is exactly the pre-crash behaviour a client observes from an unflushed
// micro-batch.
package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/metrics"
)

// Policy selects the backpressure behaviour of Push on a full queue.
type Policy uint8

const (
	// Block makes Push wait until queue space frees up (lossless).
	Block Policy = iota
	// Drop makes Push fail immediately with ErrQueueFull (lossy, bounded
	// latency for the producer).
	Drop
)

// Errors returned by Push and Drain.
var (
	// ErrClosed reports an operation on a closed stream.
	ErrClosed = errors.New("stream: closed")
	// ErrQueueFull reports a dropped update under the Drop policy.
	ErrQueueFull = errors.New("stream: queue full")
)

// Durable is the durability hook of a stream (implemented by wal.Log).
// Both methods run on the worker goroutine, serialized with every apply.
type Durable interface {
	// LogBatch persists one micro-batch BEFORE it is applied to the graph
	// and before its snapshot publishes. seq is the snapshot sequence
	// number the batch will produce. A non-nil error means the batch is
	// NOT durable: the stream keeps it pending and retries rather than
	// publishing state that a crash would lose.
	LogBatch(seq uint64, batch delta.Batch) error
	// AfterBatch runs after the batch's snapshot has been published, with
	// exclusive access to the graph and the (immutable) published states;
	// wal.Log uses it to cut periodic checkpoints. Errors are recorded as
	// sticky but do not stall the stream — the WAL already holds the
	// batch, so a failed checkpoint only lengthens future recovery.
	AfterBatch(seq, updates uint64, g *graph.Graph, states []float64) error
}

// Config tunes a Stream. The zero value gives sane defaults.
type Config struct {
	// MaxBatch is the count trigger: a pending micro-batch of this many
	// updates is flushed immediately (0 = 1024).
	MaxBatch int
	// MaxDelay is the time trigger: a non-empty pending micro-batch older
	// than this is flushed even if under-full (0 = 50ms; negative
	// disables the time trigger).
	MaxDelay time.Duration
	// QueueCap bounds the update log between producers and the worker
	// (0 = 4*MaxBatch).
	QueueCap int
	// Policy is the backpressure policy on a full queue (default Block).
	Policy Policy
	// Window is how many recent batches the rolling throughput/latency
	// metrics cover (0 = 64).
	Window int
	// OnBatch, when non-nil, is invoked on the worker goroutine after
	// each micro-batch is applied and its snapshot published. It must be
	// fast; it stalls ingestion while it runs.
	OnBatch func(BatchResult)
	// Durability, when non-nil, receives every micro-batch before it is
	// applied (LogBatch) and after its snapshot publishes (AfterBatch).
	// The write-ahead-log contract: a snapshot is never published unless
	// its batch has been logged first, so everything visible through
	// Query survives a crash.
	Durability Durable
	// StartSeq and StartUpdates seed the initial snapshot's counters, so
	// a stream resumed from a recovered checkpoint continues the sequence
	// instead of restarting at zero.
	StartSeq, StartUpdates uint64
	// StartStats pre-loads the lifetime engine aggregate (Metrics.Engine),
	// letting recovery fold the WAL tail's replay work into /metrics.
	StartStats inc.Stats
	// Relayer, when non-nil (and carrying a Build hook), enables the
	// adaptive re-layering controller: layering-quality signals from each
	// update feed drift thresholds, and decayed quality launches a
	// background full re-layer that is atomically swapped in at a batch
	// boundary. See RelayerConfig.
	Relayer *RelayerConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 50 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
		if c.QueueCap > 65536 {
			c.QueueCap = 65536
		}
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// Snapshot is an immutable, consistent view of the system state between
// micro-batches. States must not be mutated by readers.
type Snapshot struct {
	// Seq counts published snapshots (0 = initial batch computation).
	Seq uint64
	// Updates is the cumulative number of streamed updates applied.
	Updates uint64
	// States is the converged state vector as of this snapshot.
	States []float64
	// At is the publication time.
	At time.Time
}

// BatchResult describes one flushed micro-batch to the OnBatch hook.
type BatchResult struct {
	// Seq is the sequence number of the snapshot this batch produced.
	Seq uint64
	// Size is the number of unit updates in the micro-batch.
	Size int
	// Applied is false when the batch netted out to nothing on the graph
	// (e.g. deleting edges that were never added), in which case the
	// engine was not invoked.
	Applied bool
	// Stats is the engine's update record (zero when !Applied).
	Stats inc.Stats
	// Snap is the snapshot published for this batch.
	Snap *Snapshot
}

// Metrics is a point-in-time summary of stream health.
type Metrics struct {
	// Accepted and Dropped count Push outcomes; Applied counts updates
	// flushed into the graph (accepted but not yet flushed updates are
	// still queued or pending).
	Accepted, Dropped, Applied int64
	// Batches counts flushed micro-batches.
	Batches int64
	// Throughput is rolling applied updates per second over the recent
	// batch window.
	Throughput float64
	// MeanBatchLatency is the mean apply+update time per micro-batch over
	// the window.
	MeanBatchLatency time.Duration
	// LogFailures counts failed Durable.LogBatch/AfterBatch calls (0
	// without a durability hook). The first failure is kept as a sticky
	// error, readable via DurabilityErr.
	LogFailures int64
	// Engine aggregates the per-batch inc.Stats over the stream lifetime
	// (including Config.StartStats, i.e. recovery replay work).
	Engine inc.Stats
	// Relayer reports the adaptive re-layering controller's state
	// (Relayer.Enabled is false when no relayer is configured).
	Relayer RelayerMetrics
}

type item struct {
	upd   delta.Update
	flush chan struct{} // non-nil: drain barrier, no update payload
	stop  bool          // close request
}

// Stream is an ordered micro-batching ingestion pipeline feeding one
// incremental engine. Construct with New; Push may be called from any
// number of goroutines.
type Stream struct {
	g   *graph.Graph
	sys inc.System
	cfg Config

	in     chan item
	done   chan struct{} // closed when the worker exits
	closed atomic.Bool
	// pmu orders producer sends against Close: Push/Drain hold the read
	// side around their channel send, Close takes the write side before
	// enqueuing the stop token, so every acknowledged send is in the
	// queue ahead of the stop and is flushed before the worker exits.
	pmu sync.RWMutex

	snap atomic.Pointer[Snapshot]

	accepted    metrics.Counter
	dropped     metrics.Counter
	applied     metrics.Counter
	batches     metrics.Counter
	logFailures metrics.Counter
	window      *metrics.Rolling

	mu     sync.Mutex // guards agg, durErr, rlm, and g/sys swaps
	agg    inc.Stats
	durErr error // first durability failure, sticky

	// rl is the drift controller's worker-owned state (nil when disabled);
	// rlm is the metrics copy it publishes under mu for readers.
	rl  *relayerState
	rlm RelayerMetrics
}

// New starts a stream over g driving sys. The system must already have
// run its initial batch computation on g (every constructor in this
// repository does), and after New neither g nor sys may be touched by the
// caller except through the stream.
func New(g *graph.Graph, sys inc.System, cfg Config) *Stream {
	if g == nil || sys == nil {
		panic("stream: nil graph or system")
	}
	cfg = cfg.withDefaults()
	s := &Stream{
		g: g, sys: sys, cfg: cfg,
		in:     make(chan item, cfg.QueueCap),
		done:   make(chan struct{}),
		window: metrics.NewRolling(cfg.Window),
		agg:    cfg.StartStats,
	}
	if cfg.Relayer != nil && cfg.Relayer.Build != nil {
		s.rl = &relayerState{
			cfg:     cfg.Relayer.withDefaults(),
			resultC: make(chan relayerResult, 1),
		}
		s.rl.m.Enabled = true
		s.rlm = s.rl.m
	}
	s.snap.Store(&Snapshot{
		Seq: cfg.StartSeq, Updates: cfg.StartUpdates,
		States: copyStates(sys.States()), At: time.Now(),
	})
	go s.loop()
	return s
}

// Push appends one update to the log. Under the Block policy it waits for
// queue space; under Drop it returns ErrQueueFull when the queue is full.
// Push returns ErrClosed once Close has been called.
func (s *Stream) Push(u delta.Update) error {
	s.pmu.RLock()
	defer s.pmu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.cfg.Policy == Drop {
		select {
		case s.in <- item{upd: u}:
			s.accepted.Add(1)
			return nil
		default:
			s.dropped.Add(1)
			return ErrQueueFull
		}
	}
	select {
	case s.in <- item{upd: u}:
		s.accepted.Add(1)
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// Query returns the latest published snapshot. It never blocks and the
// returned snapshot is immutable.
func (s *Stream) Query() *Snapshot {
	return s.snap.Load()
}

// Drain blocks until every update pushed before the call has been applied
// and its snapshot published. It does not stop the stream. On a stream
// with a durability hook, Drain surfaces the sticky durability error: a
// returned error means the stream is degraded and some drained updates
// may not be durable (or even applied) yet.
func (s *Stream) Drain() error {
	barrier := make(chan struct{})
	s.pmu.RLock()
	if s.closed.Load() {
		s.pmu.RUnlock()
		return ErrClosed
	}
	select {
	case s.in <- item{flush: barrier}:
		s.pmu.RUnlock()
	case <-s.done:
		s.pmu.RUnlock()
		return ErrClosed
	}
	select {
	case <-barrier:
		return s.DurabilityErr()
	case <-s.done:
		return ErrClosed
	}
}

// DurabilityErr returns the first durability-hook failure, if any. It is
// sticky: once the write-ahead log has failed, the stream is degraded
// (publication stalls on the unloggable batch) and should be restarted.
func (s *Stream) DurabilityErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durErr
}

func (s *Stream) recordDurErr(err error) {
	s.logFailures.Add(1)
	s.mu.Lock()
	if s.durErr == nil {
		s.durErr = err
	}
	s.mu.Unlock()
}

// Graph exposes the graph the stream mutates. It must not be touched
// while the stream is running (the worker goroutine owns it, and with a
// relayer configured the identity changes at swap boundaries); durability
// helpers use it after Close to cut a final checkpoint.
func (s *Stream) Graph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g
}

// Close drains the queue, flushes the pending micro-batch, publishes the
// final snapshot and stops the worker. It is idempotent; only the first
// call performs the drain.
func (s *Stream) Close() error {
	if s.closed.Swap(true) {
		<-s.done
		return nil
	}
	// Wait for in-flight Push/Drain sends to land so the stop token is
	// ordered behind every acknowledged update.
	s.pmu.Lock()
	s.pmu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	select {
	case s.in <- item{stop: true}:
	case <-s.done:
	}
	<-s.done
	return nil
}

// Closed reports whether Close has been called. Serving layers use it to
// fail pushes fast while the final drain runs.
func (s *Stream) Closed() bool { return s.closed.Load() }

// Metrics returns a point-in-time summary of counters and rolling rates.
func (s *Stream) Metrics() Metrics {
	s.mu.Lock()
	agg := s.agg
	rlm := s.rlm
	s.mu.Unlock()
	return Metrics{
		Accepted:         s.accepted.Value(),
		Dropped:          s.dropped.Value(),
		Applied:          s.applied.Value(),
		Batches:          s.batches.Value(),
		Throughput:       s.window.Rate(),
		MeanBatchLatency: s.window.MeanDuration(),
		LogFailures:      s.logFailures.Value(),
		Engine:           agg,
		Relayer:          rlm,
	}
}

// System exposes the driven engine (for Name etc.). The engine's live
// state must not be read while the stream is running (a relayer swap also
// changes the identity); use Query.
func (s *Stream) System() inc.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys
}

func (s *Stream) loop() {
	defer close(s.done)
	var pending delta.Batch
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	var timerC <-chan time.Time

	// flush logs (when durable), applies and publishes the pending batch.
	// final marks the shutdown flush, where an unloggable batch is dropped
	// with a sticky error (crash-equivalent) instead of retried forever.
	flush := func(final bool) {
		if timerC != nil {
			timer.Stop()
			timerC = nil
		}
		if len(pending) == 0 {
			return
		}
		prev := s.snap.Load()
		// Write-ahead: the batch must be durable before it is applied and
		// before its snapshot becomes visible. On failure the batch stays
		// pending — later updates keep accumulating behind it and the
		// queue's backpressure reaches the producers — and the time
		// trigger retries, in case the log recovers (disk full, ...).
		if s.cfg.Durability != nil {
			if err := s.cfg.Durability.LogBatch(prev.Seq+1, pending); err != nil {
				s.recordDurErr(err)
				if final {
					pending = nil
					return
				}
				if s.cfg.MaxDelay > 0 {
					timer.Reset(s.cfg.MaxDelay)
					timerC = timer.C
				}
				return
			}
		}
		batch := pending
		pending = nil
		start := time.Now()
		applied := delta.Apply(s.g, batch)
		var st inc.Stats
		if !applied.Empty() {
			st = s.sys.Update(applied)
		}
		elapsed := time.Since(start)

		states := prev.States
		if !applied.Empty() {
			states = copyStates(s.sys.States())
		}
		snap := &Snapshot{
			Seq:     prev.Seq + 1,
			Updates: prev.Updates + uint64(len(batch)),
			States:  states,
			At:      time.Now(),
		}
		s.snap.Store(snap)
		if s.cfg.Durability != nil {
			if err := s.cfg.Durability.AfterBatch(snap.Seq, snap.Updates, s.g, snap.States); err != nil {
				s.recordDurErr(err)
			}
		}

		s.applied.Add(int64(len(batch)))
		s.batches.Add(1)
		s.window.Observe(int64(len(batch)), elapsed)
		s.mu.Lock()
		s.agg.Add(st)
		s.mu.Unlock()
		if s.rl != nil && !final {
			s.relayerStep(batch, st, !applied.Empty(), snap)
		}
		if s.cfg.OnBatch != nil {
			s.cfg.OnBatch(BatchResult{
				Seq: snap.Seq, Size: len(batch),
				Applied: !applied.Empty(), Stats: st, Snap: snap,
			})
		}
	}

	for {
		select {
		case it := <-s.in:
			switch {
			case it.stop:
				// Scoop up items that raced with Close into the buffered
				// queue behind the stop token, then do the final flush.
				var barriers []chan struct{}
				for scooping := true; scooping; {
					select {
					case late := <-s.in:
						switch {
						case late.stop:
						case late.flush != nil:
							barriers = append(barriers, late.flush)
						default:
							pending = append(pending, late.upd)
						}
					default:
						scooping = false
					}
				}
				flush(true)
				for _, b := range barriers {
					close(b)
				}
				return
			case it.flush != nil:
				flush(false)
				close(it.flush)
			default:
				pending = append(pending, it.upd)
				if len(pending) >= s.cfg.MaxBatch {
					flush(false)
				} else if len(pending) == 1 && s.cfg.MaxDelay > 0 {
					timer.Reset(s.cfg.MaxDelay)
					timerC = timer.C
				}
			}
		case <-timerC:
			timerC = nil
			flush(false)
		}
	}
}

func copyStates(x []float64) []float64 {
	cp := make([]float64, len(x))
	copy(cp, x)
	return cp
}
