package stream

import (
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"layph/internal/algo"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/ingress"
)

func testGraph(seed int64) *graph.Graph {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 600, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: seed,
	})
	return g
}

// updateSeq pre-generates a valid sequence of n unit updates (deletions
// target edges that exist when reached).
func updateSeq(g *graph.Graph, n int, seed int64) []delta.Update {
	return delta.NewGenerator(seed).UnitSequence(g, n, true)
}

func hashStates(x []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// stubSys is an inc.System whose Update blocks until release is closed,
// used to exercise backpressure without a real engine.
type stubSys struct {
	release chan struct{}
	x       []float64
}

func (s *stubSys) Name() string      { return "stub" }
func (s *stubSys) States() []float64 { return s.x }
func (s *stubSys) Update(*delta.Applied) inc.Stats {
	<-s.release
	return inc.Stats{Rounds: 1}
}

func TestCountTrigger(t *testing.T) {
	g := testGraph(1)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	results := make(chan BatchResult, 16)
	s := New(g, sys, Config{
		MaxBatch: 10, MaxDelay: -1, // time trigger off
		OnBatch: func(r BatchResult) { results <- r },
	})
	seq := updateSeq(g, 25, 2)
	for _, u := range seq {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.Size != 10 {
				t.Fatalf("batch %d: size %d, want 10 (count trigger)", i, r.Size)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("count-triggered batch never flushed")
		}
	}
	select {
	case r := <-results:
		t.Fatalf("unexpected extra batch of size %d before drain", r.Size)
	case <-time.After(50 * time.Millisecond):
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	r := <-results
	if r.Size != 5 {
		t.Fatalf("drained remainder: size %d, want 5", r.Size)
	}
	if snap := s.Query(); snap.Seq != 3 || snap.Updates != 25 {
		t.Fatalf("snapshot seq=%d updates=%d, want 3/25", snap.Seq, snap.Updates)
	}
	s.Close()
}

func TestTimeTrigger(t *testing.T) {
	g := testGraph(3)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	results := make(chan BatchResult, 4)
	s := New(g, sys, Config{
		MaxBatch: 1 << 20, MaxDelay: 20 * time.Millisecond,
		OnBatch: func(r BatchResult) { results <- r },
	})
	defer s.Close()
	for _, u := range updateSeq(g, 3, 4) {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case r := <-results:
		if r.Size != 3 {
			t.Fatalf("time-triggered batch size %d, want 3", r.Size)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("time trigger never fired")
	}
}

func TestDrainOnClose(t *testing.T) {
	g := testGraph(5)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	s := New(g, sys, Config{MaxBatch: 1 << 20, MaxDelay: -1})
	seq := updateSeq(g, 100, 6)
	for _, u := range seq {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := s.Query()
	if snap.Updates != 100 {
		t.Fatalf("close flushed %d updates, want all 100", snap.Updates)
	}
	m := s.Metrics()
	if m.Applied != 100 || m.Accepted != 100 {
		t.Fatalf("metrics applied=%d accepted=%d, want 100/100", m.Applied, m.Accepted)
	}
	if err := s.Push(delta.Update{Kind: delta.AddEdge, U: 0, V: 1, W: 1}); err != ErrClosed {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if err := s.Drain(); err != ErrClosed {
		t.Fatalf("drain after close: %v, want ErrClosed", err)
	}
	// Second close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotConsistencyUnderConcurrentPushQuery(t *testing.T) {
	g := testGraph(7)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	published := sync.Map{} // seq -> states hash
	s := New(g, sys, Config{
		MaxBatch: 20, MaxDelay: time.Millisecond,
		OnBatch: func(r BatchResult) { published.Store(r.Seq, hashStates(r.Snap.States)) },
	})
	published.Store(uint64(0), hashStates(s.Query().States))

	type obs struct {
		seq  uint64
		hash uint64
	}
	const readers = 4
	observed := make([][]obs, readers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Query()
				if snap.Seq < last {
					t.Errorf("reader %d: snapshot seq went backwards (%d after %d)", i, snap.Seq, last)
					return
				}
				last = snap.Seq
				observed[i] = append(observed[i], obs{snap.Seq, hashStates(snap.States)})
			}
		}(i)
	}

	for _, u := range updateSeq(g, 2000, 8) {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	checked := 0
	for i, seen := range observed {
		for _, o := range seen {
			want, ok := published.Load(o.seq)
			if !ok {
				t.Fatalf("reader %d observed unpublished snapshot seq %d", i, o.seq)
			}
			if want.(uint64) != o.hash {
				t.Fatalf("reader %d: snapshot %d content differs from published state (torn read)", i, o.seq)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("readers made no observations")
	}
}

func TestStreamedEqualsOneShot(t *testing.T) {
	g := testGraph(9)
	pristine := g.Clone()
	seq := updateSeq(g, 1500, 10)

	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	s := New(g, sys, Config{MaxBatch: 97, MaxDelay: -1}) // odd size: uneven boundaries
	for _, u := range seq {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	streamed := s.Query().States

	// One-shot: same sequence as a single batch through a fresh engine.
	oneShot := ingress.New(pristine, algo.NewSSSP(0), engine.Options{Workers: 2})
	applied := delta.Apply(pristine, delta.Batch(seq))
	oneShot.Update(applied)

	n := g.Cap()
	if !algo.StatesClose(streamed[:n], oneShot.States()[:n], 1e-9) {
		t.Fatal("streamed states differ from one-shot ApplyBatch+Update")
	}
	// And both must match a from-scratch restart on the final graph.
	restart := engine.RunBatch(g, algo.NewSSSP(0), engine.Options{Workers: 2}).X
	if !algo.StatesClose(streamed[:n], restart[:n], 1e-9) {
		t.Fatal("streamed states differ from restart baseline")
	}
}

func TestBackpressureDrop(t *testing.T) {
	g := graph.New(1000)
	stub := &stubSys{release: make(chan struct{}), x: make([]float64, 1000)}
	s := New(g, stub, Config{MaxBatch: 1, MaxDelay: -1, QueueCap: 2, Policy: Drop})
	var dropped int
	for i := 0; i < 10; i++ {
		u := delta.Update{Kind: delta.AddEdge, U: graph.VertexID(i), V: graph.VertexID(i + 1), W: 1}
		if err := s.Push(u); err == ErrQueueFull {
			dropped++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if dropped == 0 {
		t.Fatal("no pushes dropped despite blocked worker and QueueCap=2")
	}
	close(stub.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Dropped != int64(dropped) {
		t.Fatalf("dropped counter %d, want %d", m.Dropped, dropped)
	}
	if m.Applied != m.Accepted {
		t.Fatalf("applied %d != accepted %d after close", m.Applied, m.Accepted)
	}
}

func TestBackpressureBlock(t *testing.T) {
	g := graph.New(1000)
	stub := &stubSys{release: make(chan struct{}), x: make([]float64, 1000)}
	s := New(g, stub, Config{MaxBatch: 1, MaxDelay: -1, QueueCap: 1, Policy: Block})
	// First pushes: one taken by the worker (now blocked in Update), one
	// parked in the queue.
	for i := 0; i < 2; i++ {
		u := delta.Update{Kind: delta.AddEdge, U: graph.VertexID(i), V: graph.VertexID(i + 1), W: 1}
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- s.Push(delta.Update{Kind: delta.AddEdge, U: 5, V: 6, W: 1})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("push returned (%v) while the queue was full; Block must wait", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(stub.release)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked push never completed after the worker resumed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Applied != 3 {
		t.Fatalf("applied %d updates, want 3", m.Applied)
	}
}

func TestMetricsRollup(t *testing.T) {
	g := testGraph(11)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	s := New(g, sys, Config{MaxBatch: 50, MaxDelay: -1})
	for _, u := range updateSeq(g, 500, 12) {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Batches != 10 {
		t.Fatalf("batches %d, want 10", m.Batches)
	}
	if m.Throughput <= 0 {
		t.Fatalf("throughput %v, want > 0", m.Throughput)
	}
	if m.MeanBatchLatency <= 0 {
		t.Fatalf("latency %v, want > 0", m.MeanBatchLatency)
	}
	if m.Engine.Duration <= 0 {
		t.Fatal("aggregated engine stats empty")
	}
}

// Graceful-shutdown ordering: an update whose Push returned nil is
// acknowledged and must be flushed into the final snapshot even when
// Close races with the push — lost acks would let an HTTP client see a
// 200 for an update the daemon then silently dropped. Many pushers hammer
// a tiny queue while Close lands mid-stream; afterwards the accepted,
// applied, and snapshot counters must all agree exactly.
func TestCloseDuringInFlightPushesKeepsAcknowledged(t *testing.T) {
	rounds := 25
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		g := testGraph(int64(20 + round))
		sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
		s := New(g, sys, Config{MaxBatch: 16, MaxDelay: -1, QueueCap: 8})
		seq := updateSeq(g, 600, int64(round))

		const pushers = 6
		var acked atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < pushers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := p; i < len(seq); i += pushers {
					switch err := s.Push(seq[i]); err {
					case nil:
						acked.Add(1)
					case ErrClosed:
						return
					default:
						t.Errorf("push: %v", err)
						return
					}
				}
			}(p)
		}
		// Let some pushes land, then close mid-flight.
		for s.Metrics().Accepted < 50 {
			time.Sleep(50 * time.Microsecond)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		m := s.Metrics()
		snap := s.Query()
		if m.Accepted != acked.Load() {
			t.Fatalf("round %d: accepted counter %d != acknowledged pushes %d", round, m.Accepted, acked.Load())
		}
		if m.Applied != acked.Load() {
			t.Fatalf("round %d: applied %d != acknowledged %d (acked update dropped on Close)", round, m.Applied, acked.Load())
		}
		if snap.Updates != uint64(acked.Load()) {
			t.Fatalf("round %d: final snapshot covers %d updates, want %d", round, snap.Updates, acked.Load())
		}
	}
}

// Drain racing Close must never report success for updates that were not
// flushed: whichever of the two wins, a nil Drain implies every prior
// acknowledged push is in the final snapshot.
func TestDrainRacingClose(t *testing.T) {
	g := testGraph(31)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 2})
	s := New(g, sys, Config{MaxBatch: 32, MaxDelay: -1, QueueCap: 16})
	seq := updateSeq(g, 400, 32)
	var acked atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, u := range seq {
			if err := s.Push(u); err != nil {
				return
			}
			acked.Add(1)
		}
	}()
	drained := make(chan error, 1)
	go func() {
		defer wg.Done()
		time.Sleep(200 * time.Microsecond)
		drained <- s.Drain()
	}()
	time.Sleep(400 * time.Microsecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-drained; err != nil && err != ErrClosed {
		t.Fatalf("drain: %v", err)
	}
	if m := s.Metrics(); m.Applied != acked.Load() {
		t.Fatalf("applied %d != acknowledged %d", m.Applied, acked.Load())
	}
}

func TestSnapshotReadHelpers(t *testing.T) {
	snap := &Snapshot{States: []float64{3, math.Inf(1), 0, 7, 3, math.NaN(), 1}}
	if x, ok := snap.State(3); !ok || x != 7 {
		t.Fatalf("State(3) = %v,%v", x, ok)
	}
	if _, ok := snap.State(graph.VertexID(len(snap.States))); ok {
		t.Fatal("State beyond vector must report !ok")
	}
	if snap.Len() != 7 {
		t.Fatalf("Len = %d", snap.Len())
	}
	wantMin := []VertexState{{V: 2, X: 0}, {V: 6, X: 1}, {V: 0, X: 3}, {V: 4, X: 3}}
	if got := snap.TopK(4, false); !equalVS(got, wantMin) {
		t.Fatalf("TopK(4,min) = %v, want %v", got, wantMin)
	}
	wantMax := []VertexState{{V: 3, X: 7}, {V: 0, X: 3}, {V: 4, X: 3}}
	if got := snap.TopK(3, true); !equalVS(got, wantMax) {
		t.Fatalf("TopK(3,max) = %v, want %v", got, wantMax)
	}
	// k beyond the finite population returns only finite entries.
	if got := snap.TopK(100, false); len(got) != 5 {
		t.Fatalf("TopK(100) kept %d entries, want 5 finite", len(got))
	}
	if got := snap.TopK(0, false); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
}

func equalVS(a, b []VertexState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The parallel-execution counters of a pool-backed engine must survive
// the stream's per-batch Stats aggregation: SubgraphsParallel sums and
// PoolUtilization stays a ratio (duration-weighted mean), so rolling
// `layph serve` reports can surface both.
func TestMetricsCarryParallelCounters(t *testing.T) {
	g := testGraph(13)
	sys := core.New(g, algo.NewSSSP(0), core.Options{Workers: 4})
	s := New(g, sys, Config{MaxBatch: 100, MaxDelay: -1})
	for _, u := range updateSeq(g, 600, 14) {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Engine.SubgraphsParallel == 0 {
		t.Fatal("SubgraphsParallel not aggregated across micro-batches")
	}
	if m.Engine.PoolUtilization <= 0 || m.Engine.PoolUtilization > 1 {
		t.Fatalf("PoolUtilization not a ratio after aggregation: %v", m.Engine.PoolUtilization)
	}
}

// --- durability hook ----------------------------------------------------

// recordingDurable captures every hook invocation in order, optionally
// failing the first failLog LogBatch calls.
type recordingDurable struct {
	mu      sync.Mutex
	events  []string // "log <seq>" / "after <seq>"
	logged  []uint64
	updates int
	after   []uint64
	failLog int
	errLog  error
}

func (d *recordingDurable) LogBatch(seq uint64, b delta.Batch) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failLog > 0 {
		d.failLog--
		return d.errLog
	}
	d.events = append(d.events, "log")
	d.logged = append(d.logged, seq)
	d.updates += len(b)
	return nil
}

func (d *recordingDurable) AfterBatch(seq, updates uint64, g *graph.Graph, states []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = append(d.events, "after")
	d.after = append(d.after, seq)
	return nil
}

// Every published snapshot must be preceded by a LogBatch of its batch:
// the logged seqs are contiguous from StartSeq+1, each AfterBatch follows
// its LogBatch, and the logged update total equals the applied total.
func TestDurableLogsBeforePublish(t *testing.T) {
	g := testGraph(11)
	seq := updateSeq(g, 2000, 12)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 1})
	dur := &recordingDurable{}
	var published []uint64
	s := New(g, sys, Config{
		MaxBatch: 128, MaxDelay: -1, Durability: dur,
		OnBatch: func(br BatchResult) {
			// OnBatch runs on the worker after publish: the batch's seq
			// must already be in the durable log.
			dur.mu.Lock()
			n := len(dur.logged)
			last := uint64(0)
			if n > 0 {
				last = dur.logged[n-1]
			}
			dur.mu.Unlock()
			if last < br.Seq {
				t.Errorf("snapshot %d published before its batch was logged (last logged %d)", br.Seq, last)
			}
			published = append(published, br.Seq)
		},
	})
	for _, u := range seq {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s.Close()

	dur.mu.Lock()
	defer dur.mu.Unlock()
	if len(dur.logged) == 0 {
		t.Fatal("nothing logged")
	}
	for i, sq := range dur.logged {
		if sq != uint64(i+1) {
			t.Fatalf("logged seq[%d] = %d, want %d (contiguous from 1)", i, sq, i+1)
		}
	}
	if dur.updates != len(seq) {
		t.Fatalf("logged %d updates, want %d", dur.updates, len(seq))
	}
	if len(dur.after) != len(dur.logged) {
		t.Fatalf("%d AfterBatch calls vs %d LogBatch calls", len(dur.after), len(dur.logged))
	}
	for i := 0; i+1 < len(dur.events); i += 2 {
		if dur.events[i] != "log" || dur.events[i+1] != "after" {
			t.Fatalf("hook order %v at %d: want strict log/after alternation", dur.events[i:i+2], i)
		}
	}
	if m := s.Metrics(); m.LogFailures != 0 {
		t.Fatalf("LogFailures = %d on a healthy log", m.LogFailures)
	}
}

// A failing write-ahead log must stall publication (no snapshot advances
// past durable state) and surface as a sticky error, and a recovered log
// must then flush the accumulated batch.
func TestDurableLogFailureStallsThenRecovers(t *testing.T) {
	g := testGraph(13)
	seq := updateSeq(g, 300, 14)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 1})
	dur := &recordingDurable{failLog: 2, errLog: errFull}
	s := New(g, sys, Config{MaxBatch: 64, MaxDelay: 5 * time.Millisecond, Durability: dur})
	for _, u := range seq[:100] {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	// The first two flush attempts fail; the time trigger retries until
	// the "disk" recovers, then everything pushed lands in one batch.
	deadline := time.Now().Add(5 * time.Second)
	for s.Query().Seq == 0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot never advanced after log recovery")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.DurabilityErr(); err == nil {
		t.Fatal("sticky durability error not recorded")
	}
	if m := s.Metrics(); m.LogFailures < 2 {
		t.Fatalf("LogFailures = %d, want >= 2", m.LogFailures)
	}
	// Drain reports the degraded state even though the batch now flushed.
	if err := s.Drain(); err == nil {
		t.Fatal("Drain returned nil on a degraded stream")
	}
	dur.mu.Lock()
	logged := dur.updates
	dur.mu.Unlock()
	if logged != 100 {
		t.Fatalf("logged %d updates after recovery, want 100", logged)
	}
	snap := s.Query()
	if snap.Updates != 100 {
		t.Fatalf("snapshot updates = %d, want 100", snap.Updates)
	}
	s.Close()
}

var errFull = errFullT{}

type errFullT struct{}

func (errFullT) Error() string { return "wal: disk full (injected)" }

// StartSeq/StartUpdates/StartStats resume a recovered stream's counters
// instead of restarting from zero.
func TestStartCountersResume(t *testing.T) {
	g := testGraph(15)
	seq := updateSeq(g, 200, 16)
	sys := ingress.New(g, algo.NewSSSP(0), engine.Options{Workers: 1})
	start := inc.Stats{Activations: 77, Rounds: 3, ReplayedBatches: 5}
	s := New(g, sys, Config{
		MaxBatch: 100, MaxDelay: -1,
		StartSeq: 42, StartUpdates: 9000, StartStats: start,
	})
	defer s.Close()
	if snap := s.Query(); snap.Seq != 42 || snap.Updates != 9000 {
		t.Fatalf("initial snapshot seq=%d updates=%d, want 42/9000", snap.Seq, snap.Updates)
	}
	for _, u := range seq[:100] {
		if err := s.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := s.Query()
	if snap.Seq != 43 || snap.Updates != 9100 {
		t.Fatalf("post-batch snapshot seq=%d updates=%d, want 43/9100", snap.Seq, snap.Updates)
	}
	m := s.Metrics()
	if m.Engine.ReplayedBatches != 5 || m.Engine.Activations < 77 {
		t.Fatalf("engine aggregate %+v did not fold in StartStats", m.Engine)
	}
}
