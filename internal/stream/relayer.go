package stream

import (
	"time"

	"layph/internal/delta"
	"layph/internal/graph"
	"layph/internal/inc"
)

// RelayerConfig configures the adaptive re-layering controller (set as
// Config.Relayer). After every applied micro-batch the controller folds the
// engine's layering-quality signal (inc.Stats: touched-subgraph ratio,
// skeleton fraction, shortcut hit rate) into exponentially-weighted moving
// averages; when quality decays past the thresholds it launches a full
// re-layer — Build on a clone of the live graph — in the background, keeps
// streaming on the old engine while recording the applied micro-batches,
// then replays that tail on the fresh engine and atomically swaps it in at
// a deterministic batch boundary (SwapLagBatches after the trigger). The incremental half of adaptivity (per-batch subgraph
// splits/merges) lives in the engine itself (core.Options.
// AdaptiveCommunities); the controller is the backstop that bounds drift
// the incremental adjustment cannot repair, and a full re-layer is the
// point where dead community ids are reclaimed.
type RelayerConfig struct {
	// Build constructs a fresh engine over a snapshot graph: full community
	// re-detection, layer construction and the initial batch run. Required.
	// It runs on a background goroutine and must not share state with the
	// live engine.
	Build func(*graph.Graph) inc.System

	// TouchedRatioThreshold triggers a full re-layer when the EWMA of the
	// per-update touched-subgraph ratio exceeds it (0 = 0.35). A drifted
	// layering forces updates into ever more subgraphs.
	TouchedRatioThreshold float64
	// SkeletonGrowthFactor triggers when the skeleton fraction exceeds the
	// post-(re)layer baseline by this factor (0 = 1.5): community drift
	// dissolves dense subgraphs and the skeleton — the global-iteration
	// working set — swells.
	SkeletonGrowthFactor float64
	// DeadCommunityFraction triggers when the fraction of allocated
	// community ids without members exceeds it (0 = 0.5). Incremental
	// adjustment keeps ids stable, so dead ids accumulate until a full
	// re-layer compacts them; engines expose the gauge via
	// CommunityStats() (live, ids int).
	DeadCommunityFraction float64
	// MinShortcutHitRate, when positive, triggers when the EWMA shortcut
	// hit rate (improving replays / replays, idempotent schemes) falls
	// below it. Default 0 = disabled; the hit rate is primarily a
	// diagnostic.
	MinShortcutHitRate float64
	// Alpha is the EWMA smoothing factor (0 = 0.2).
	Alpha float64
	// MinBatches is the cooldown: applied batches that must pass after a
	// (re)build before the next trigger evaluation (0 = 16).
	MinBatches int
	// SwapLagBatches fixes the batch boundary the swap lands on: exactly
	// this many applied micro-batches after the trigger (0 = 8). The
	// background build has that window to complete; if it is still running
	// at the boundary the worker waits for it there. Pinning the boundary
	// to the update sequence — instead of "whenever the build happens to
	// finish" — is what keeps the determinism contract intact with the
	// relayer enabled: which layering serves which batch is a pure function
	// of the input stream, never of scheduling, so min-scheme runs stay
	// byte-identical across repeats.
	SwapLagBatches int
}

func (c RelayerConfig) withDefaults() RelayerConfig {
	if c.TouchedRatioThreshold == 0 {
		c.TouchedRatioThreshold = 0.35
	}
	if c.SkeletonGrowthFactor == 0 {
		c.SkeletonGrowthFactor = 1.5
	}
	if c.DeadCommunityFraction == 0 {
		c.DeadCommunityFraction = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.MinBatches == 0 {
		c.MinBatches = 16
	}
	if c.SwapLagBatches <= 0 {
		c.SwapLagBatches = 8
	}
	return c
}

// RelayerMetrics is the /metrics-visible state of the drift controller.
type RelayerMetrics struct {
	// Enabled reports whether a relayer is configured on the stream.
	Enabled bool
	// FullRelayers counts completed background re-layer swaps; InFlight
	// reports a build currently running.
	FullRelayers int64
	InFlight     bool
	// ReplayedBatches counts micro-batches replayed onto fresh engines
	// before their swaps (cumulative).
	ReplayedBatches int64
	// TouchedRatioEWMA / ShortcutHitEWMA are the smoothed quality signals;
	// SkeletonFraction is the last observed raw value and SkeletonBaseline
	// the post-(re)layer reference it is compared against.
	TouchedRatioEWMA float64
	ShortcutHitEWMA  float64
	SkeletonFraction float64
	SkeletonBaseline float64
	// MembershipMoves accumulates the engine's adaptive migration count.
	MembershipMoves int64
	// LiveCommunities / CommunityIDs mirror the engine's CommunityStats at
	// the last trigger evaluation (0/0 when the engine does not expose it).
	LiveCommunities int
	CommunityIDs    int
	// LastSwapSeq is the snapshot sequence the latest swap landed on;
	// LastTrigger names the threshold that fired it.
	LastSwapSeq uint64
	LastTrigger string
}

type relayerResult struct {
	g   *graph.Graph
	sys inc.System
}

// relayerState is worker-goroutine-owned; Metrics() reads the copy the
// worker publishes under Stream.mu after every step.
type relayerState struct {
	cfg     RelayerConfig
	resultC chan relayerResult
	// tail holds the micro-batches applied to the live engine since the
	// in-flight build's graph clone was taken; they are replayed on the
	// fresh engine before the swap so it lands at the same logical
	// position.
	tail     []delta.Batch
	inFlight bool
	// swapDue counts down the applied batches remaining until the
	// deterministic swap boundary (meaningful only while inFlight).
	swapDue    int
	sinceBuild int
	ewmaSeeded bool
	baseSeeded bool
	m          RelayerMetrics
}

// relayerStep runs on the worker after each flushed micro-batch: collect
// the tail while a build is in flight (swapping at the deterministic
// boundary), fold the quality signal, and evaluate the triggers.
func (s *Stream) relayerStep(batch delta.Batch, st inc.Stats, applied bool, snap *Snapshot) {
	rl := s.rl
	if rl.inFlight {
		rl.tail = append(rl.tail, batch)
		if applied {
			rl.swapDue--
		}
		if rl.swapDue <= 0 {
			// The deterministic boundary: block for the build if it is
			// still running (the SwapLagBatches window is its headroom), so
			// the swap position depends only on the update sequence.
			s.relayerSwap(<-rl.resultC, snap)
		}
	}
	if applied {
		rl.sinceBuild++
		a := rl.cfg.Alpha
		if !rl.ewmaSeeded {
			rl.ewmaSeeded = true
			rl.m.TouchedRatioEWMA = st.TouchedSubgraphRatio
			rl.m.ShortcutHitEWMA = st.ShortcutHitRate
		} else {
			rl.m.TouchedRatioEWMA += a * (st.TouchedSubgraphRatio - rl.m.TouchedRatioEWMA)
			rl.m.ShortcutHitEWMA += a * (st.ShortcutHitRate - rl.m.ShortcutHitEWMA)
		}
		rl.m.SkeletonFraction = st.SkeletonFraction
		if !rl.baseSeeded {
			rl.baseSeeded = true
			rl.m.SkeletonBaseline = st.SkeletonFraction
		}
		rl.m.MembershipMoves += st.MembershipMoves
		s.relayerMaybeTrigger()
	}
	s.mu.Lock()
	s.rlm = rl.m
	s.mu.Unlock()
}

func (s *Stream) relayerMaybeTrigger() {
	rl := s.rl
	if rl.inFlight || rl.sinceBuild < rl.cfg.MinBatches {
		return
	}
	reason := ""
	switch {
	case rl.m.TouchedRatioEWMA > rl.cfg.TouchedRatioThreshold:
		reason = "touched-ratio"
	case rl.baseSeeded && rl.m.SkeletonBaseline > 0 &&
		rl.m.SkeletonFraction > rl.m.SkeletonBaseline*rl.cfg.SkeletonGrowthFactor:
		reason = "skeleton-growth"
	case rl.cfg.MinShortcutHitRate > 0 && rl.ewmaSeeded &&
		rl.m.ShortcutHitEWMA < rl.cfg.MinShortcutHitRate:
		reason = "shortcut-hit-rate"
	default:
		if cs, ok := s.sys.(interface{ CommunityStats() (int, int) }); ok {
			live, ids := cs.CommunityStats()
			rl.m.LiveCommunities, rl.m.CommunityIDs = live, ids
			if ids > 0 && float64(ids-live)/float64(ids) > rl.cfg.DeadCommunityFraction {
				reason = "dead-communities"
			}
		}
	}
	if reason == "" {
		return
	}
	rl.m.LastTrigger = reason
	rl.m.InFlight = true
	rl.inFlight = true
	rl.swapDue = rl.cfg.SwapLagBatches
	rl.tail = nil
	// The clone is taken at a batch boundary, so the background build sees
	// a consistent graph it exclusively owns; everything applied to the
	// live engine from here on is recorded in the tail.
	g2 := s.g.Clone()
	build := rl.cfg.Build
	go func() {
		// resultC is buffered: if the stream closes before the build lands,
		// the send completes and the result is simply dropped.
		rl.resultC <- relayerResult{g: g2, sys: build(g2)}
	}()
}

// relayerSwap replays the tail on the freshly built engine and swaps it
// into the stream. Runs on the worker at a batch boundary: producers keep
// queueing, no published snapshot ever mixes old and new engines, and the
// swapped-in states are re-published under the current sequence number
// (idempotent schemes converge to the identical fixpoint; non-idempotent
// ones agree within the engine tolerance).
func (s *Stream) relayerSwap(res relayerResult, snap *Snapshot) {
	rl := s.rl
	for _, b := range rl.tail {
		if ap := delta.Apply(res.g, b); !ap.Empty() {
			res.sys.Update(ap)
		}
		rl.m.ReplayedBatches++
	}
	rl.tail = nil
	rl.inFlight = false
	rl.sinceBuild = 0
	rl.baseSeeded = false
	rl.m.InFlight = false
	rl.m.FullRelayers++
	rl.m.LastSwapSeq = snap.Seq
	s.mu.Lock()
	s.g = res.g
	s.sys = res.sys
	s.mu.Unlock()
	s.snap.Store(&Snapshot{
		Seq:     snap.Seq,
		Updates: snap.Updates,
		States:  copyStates(res.sys.States()),
		At:      time.Now(),
	})
}
