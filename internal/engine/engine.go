// Package engine implements the parallel asynchronous accumulative iterative
// engine of Equation (1)/(2): repeated application of the message-generation
// operation F over out-edges and the aggregation G per destination vertex
// until no significant messages remain.
//
// The engine operates on a Frame — a semiring-weighted projection of a graph
// under an algorithm — rather than on the graph directly, so the same runner
// serves four roles: the batch "Restart" baseline, the propagation core of
// the incremental baseline engines, Layph's local per-subgraph fixpoints
// (shortcut deduction and message upload), and Layph's global iteration on
// the upper-layer skeleton (whose edges are shortcuts, not graph edges).
package engine

import (
	"math"
	"runtime"
	"sync"

	"layph/internal/algo"
	"layph/internal/graph"
)

// WEdge is a directed edge annotated with its semiring weight (the value F
// composes messages with via ⊗).
type WEdge struct {
	To graph.VertexID
	W  float64
}

// Frame is the message-passing structure: per-vertex out-lists of
// semiring-weighted edges over a dense ID space.
//
// Two storages are supported. Row-list form fills Out — one slice per
// vertex — and is what the incremental engines maintain in place. Flat
// (CSR) form fills Off/Edges — all rows packed into one contiguous edge
// array indexed by offsets — which batch runs prefer because the hot loop
// then walks a single cache-friendly array. Readers go through Row, which
// serves whichever storage is populated (flat wins when both are set).
type Frame struct {
	Out [][]WEdge

	// Flat storage: row v is Edges[Off[v]:Off[v+1]]; len(Off) = N+1.
	Off   []int32
	Edges []WEdge
}

// Row returns v's weighted out-edges from whichever storage the frame uses.
func (f *Frame) Row(v graph.VertexID) []WEdge {
	if f.Off != nil {
		return f.Edges[f.Off[v]:f.Off[v+1]]
	}
	return f.Out[v]
}

// Thaw converts a flat frame to row-list form so rows can be replaced in
// place (incremental engines refresh per-source rows between runs). Rows
// initially alias the packed edge array (capacity-clamped, so appends
// reallocate instead of clobbering neighbors). No-op on row-list frames.
func (f *Frame) Thaw() {
	if f.Off == nil {
		return
	}
	n := len(f.Off) - 1
	f.Out = make([][]WEdge, n)
	for v := 0; v < n; v++ {
		lo, hi := f.Off[v], f.Off[v+1]
		if lo < hi {
			f.Out[v] = f.Edges[lo:hi:hi]
		}
	}
	f.Off, f.Edges = nil, nil
}

// N returns the size of the frame's ID space.
func (f *Frame) N() int {
	if f.Off != nil {
		return len(f.Off) - 1
	}
	return len(f.Out)
}

// NumEdges returns the total weighted-edge count.
func (f *Frame) NumEdges() int {
	if f.Off != nil {
		return len(f.Edges)
	}
	n := 0
	for _, l := range f.Out {
		n += len(l)
	}
	return n
}

// BuildFrame projects g under a in flat form: every live edge u→v becomes a
// WEdge with weight a.EdgeWeight, packed contiguously through the graph's
// CSR view. Dead vertices get empty rows.
func BuildFrame(g *graph.Graph, a algo.Algorithm) *Frame {
	g.EnsureCSR()
	n := g.Cap()
	off := make([]int32, n+1)
	edges := make([]WEdge, 0, g.NumEdges())
	for u := 0; u < n; u++ {
		off[u] = int32(len(edges))
		if !g.Alive(graph.VertexID(u)) {
			continue
		}
		for _, e := range g.CSROut(graph.VertexID(u)) {
			edges = append(edges, WEdge{To: e.To, W: a.EdgeWeight(g, graph.VertexID(u), e)})
		}
	}
	off[n] = int32(len(edges))
	return &Frame{Off: off, Edges: edges}
}

// InitVectors returns x0 and m0 vectors sized to g's ID space per the
// algorithm's definitions; tombstoned vertices get the semiring zero for both.
func InitVectors(g *graph.Graph, a algo.Algorithm) (x0, m0 []float64) {
	sr := a.Semiring()
	x0 = make([]float64, g.Cap())
	m0 = make([]float64, g.Cap())
	for i := range x0 {
		x0[i] = sr.Zero()
		m0[i] = sr.Zero()
	}
	g.Vertices(func(v graph.VertexID) {
		x0[v] = a.InitState(v)
		m0[v] = a.InitMessage(v)
	})
	return x0, m0
}

// NoParent marks the absence of a dependency parent.
const NoParent = graph.VertexID(math.MaxUint32)

// Options tunes a Run.
type Options struct {
	// Workers is the parallelism degree (default GOMAXPROCS).
	Workers int
	// MaxRounds bounds the outer loop as a safety net (default 1_000_000).
	MaxRounds int
	// Tolerance is the message-significance threshold for non-idempotent
	// semirings: pending aggregates with |m| <= Tolerance do not activate.
	Tolerance float64
	// TrackParents maintains, for idempotent semirings, the dependency
	// parent of every state (the in-neighbor whose message set it). The
	// memoization-path incremental engines require it.
	TrackParents bool
	// InitialActive overrides the initial active set. When nil, every vertex
	// whose m0 differs from the semiring zero is active. Vertices in the
	// initial set propagate even if their pending message does not improve
	// their state (needed to re-seed propagation from reset frontiers).
	InitialActive []graph.VertexID
	// TrackChanged collects the set of vertices whose state changed during
	// the run (deduplicated) into Result.Changed.
	TrackChanged bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 1_000_000
}

// Result is the outcome of a Run.
type Result struct {
	// X holds the converged vertex states.
	X []float64
	// Parent holds dependency parents when Options.TrackParents was set.
	Parent []graph.VertexID
	// Activations counts F applications that emitted a non-zero message
	// (the paper's "edge activations", Figures 1 and 6).
	Activations int64
	// Rounds is the number of synchronized propagation rounds executed.
	Rounds int
	// Changed lists the vertices whose state changed, when
	// Options.TrackChanged was set.
	Changed []graph.VertexID
}

// Run executes the fixpoint over the frame. x0 and m0 must have length
// f.N(); they are not mutated. The returned Result owns its slices.
//
// Semantics per round: every active vertex applies its pending aggregated
// message to its state with ⊕ (idempotent semirings keep the better value and
// record the parent; non-idempotent ones accumulate the delta), then emits
// F(val, w) = val ⊗ w along each out-edge, where val is the new state for
// idempotent semirings and the applied delta otherwise. Messages are folded
// per destination with ⊕ and the next active set is the set of vertices whose
// pending aggregate is still significant.
func Run(f *Frame, sr algo.Semiring, x0, m0 []float64, opt Options) *Result {
	n := f.N()
	if len(x0) != n || len(m0) != n {
		panic("engine: x0/m0 length mismatch")
	}
	zero := sr.Zero()
	idem := sr.Idempotent()

	x := append([]float64(nil), x0...)
	pending := append([]float64(nil), m0...)
	pendingFrom := make([]graph.VertexID, 0)
	var parent []graph.VertexID
	if opt.TrackParents && idem {
		parent = make([]graph.VertexID, n)
		pendingFrom = make([]graph.VertexID, n)
		for i := range parent {
			parent[i] = NoParent
			pendingFrom[i] = NoParent
		}
	}

	var active []graph.VertexID
	if opt.InitialActive != nil {
		active = append(active, opt.InitialActive...)
	} else if idem {
		for v := 0; v < n; v++ {
			if pending[v] != zero {
				active = append(active, graph.VertexID(v))
			}
		}
	} else {
		// Non-idempotent: sub-tolerance seeds are ignorable by definition
		// and would otherwise trigger full processing rounds.
		for v := 0; v < n; v++ {
			if math.Abs(pending[v]) > opt.Tolerance {
				active = append(active, graph.VertexID(v))
			}
		}
	}

	workers := opt.workers()
	if workers > len(active) && len(active) > 0 {
		workers = len(active)
	}
	if workers < 1 {
		workers = 1
	}
	bufs := make([]*msgBuffer, workers)
	for i := range bufs {
		bufs[i] = newMsgBuffer(n, parent != nil)
	}
	var changed []bool
	if opt.TrackChanged {
		changed = make([]bool, n)
	}
	// seen/seenList track which vertices received messages this round in
	// first-touch order, so the next active set — and therefore the whole
	// run, message folding included — is reproducible for a fixed worker
	// count (and allocation-free per round, unlike a map).
	seen := make([]bool, n)
	var seenList []graph.VertexID

	res := &Result{Rounds: 0}
	var wg sync.WaitGroup
	for rounds := 0; len(active) > 0 && rounds < opt.maxRounds(); rounds++ {
		res.Rounds++
		// Process phase: partition the active list, apply pending messages,
		// emit F over out-edges into per-worker buffers.
		w := workers
		if w > len(active) {
			w = len(active)
		}
		chunk := (len(active) + w - 1) / w
		acts := make([]int64, w)
		for wi := 0; wi < w; wi++ {
			lo := wi * chunk
			if lo >= len(active) {
				break
			}
			hi := lo + chunk
			if hi > len(active) {
				hi = len(active)
			}
			wg.Add(1)
			go func(wi, lo, hi int) {
				defer wg.Done()
				buf := bufs[wi]
				var emitted int64
				for _, v := range active[lo:hi] {
					var val float64
					if idem {
						cand := pending[v]
						if sr.Plus(x[v], cand) != x[v] {
							x[v] = sr.Plus(x[v], cand)
							if parent != nil {
								parent[v] = pendingFrom[v]
							}
							if changed != nil {
								changed[v] = true
							}
						}
						val = x[v]
					} else {
						val = pending[v]
						pending[v] = zero
						x[v] += val
						if changed != nil && val != zero {
							changed[v] = true
						}
					}
					if val == zero {
						continue
					}
					for _, e := range f.Row(v) {
						msg := sr.Times(val, e.W)
						if msg == zero {
							continue
						}
						emitted++
						buf.fold(sr, e.To, msg, v)
					}
				}
				acts[wi] = emitted
			}(wi, lo, hi)
		}
		wg.Wait()
		for _, a := range acts {
			res.Activations += a
		}

		// Merge phase: fold worker buffers into pending in fixed buffer
		// order, rebuild the active set in first-touch order.
		active = active[:0]
		seenList = seenList[:0]
		for _, buf := range bufs {
			for _, v := range buf.touched {
				val := buf.vals[v]
				if idem {
					if sr.Plus(pending[v], val) != pending[v] {
						pending[v] = val
						if parent != nil {
							pendingFrom[v] = buf.from[v]
						}
					}
				} else {
					pending[v] += val
				}
				if !seen[v] {
					seen[v] = true
					seenList = append(seenList, v)
				}
				buf.clear(v, zero)
			}
			buf.touched = buf.touched[:0]
		}
		for _, v := range seenList {
			seen[v] = false
			if significant(sr, idem, x[v], pending[v], opt.Tolerance) {
				active = append(active, v)
			}
		}
	}

	if changed != nil {
		for v, c := range changed {
			if c {
				res.Changed = append(res.Changed, graph.VertexID(v))
			}
		}
	}
	res.X = x
	res.Parent = parent
	return res
}

func significant(sr algo.Semiring, idem bool, x, pending, tol float64) bool {
	if idem {
		return sr.Plus(x, pending) != x
	}
	return math.Abs(pending) > tol
}

type msgBuffer struct {
	vals    []float64
	from    []graph.VertexID
	inUse   []bool
	touched []graph.VertexID
}

func newMsgBuffer(n int, trackFrom bool) *msgBuffer {
	b := &msgBuffer{
		vals:  make([]float64, n),
		inUse: make([]bool, n),
	}
	if trackFrom {
		b.from = make([]graph.VertexID, n)
	}
	return b
}

func (b *msgBuffer) fold(sr algo.Semiring, v graph.VertexID, msg float64, src graph.VertexID) {
	if !b.inUse[v] {
		b.inUse[v] = true
		b.vals[v] = msg
		if b.from != nil {
			b.from[v] = src
		}
		b.touched = append(b.touched, v)
		return
	}
	folded := sr.Plus(b.vals[v], msg)
	if b.from != nil && folded != b.vals[v] {
		b.from[v] = src
	}
	b.vals[v] = folded
}

func (b *msgBuffer) clear(v graph.VertexID, zero float64) {
	b.vals[v] = zero
	b.inUse[v] = false
}

// RunBatch executes the algorithm on the graph from scratch — the paper's
// "Restart" baseline. Convergence tolerance is taken from the algorithm.
func RunBatch(g *graph.Graph, a algo.Algorithm, opt Options) *Result {
	f := BuildFrame(g, a)
	x0, m0 := InitVectors(g, a)
	if opt.Tolerance == 0 {
		opt.Tolerance = a.Tolerance()
	}
	return Run(f, a.Semiring(), x0, m0, opt)
}
