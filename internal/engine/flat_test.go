package engine

import (
	"math/rand"
	"testing"

	"layph/internal/algo"
	"layph/internal/graph"
)

func randomFrameGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for e := 0; e < n*5; e++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, 1+9*rng.Float64())
		}
	}
	return g
}

// TestFlatFrameMatchesRowFrame pins that the flat (CSR) frame is an exact
// projection: same rows, and Run produces identical results on both forms.
func TestFlatFrameMatchesRowFrame(t *testing.T) {
	g := randomFrameGraph(3, 80)
	g.DeleteVertex(7) // dead rows must stay empty
	a := algo.NewSSSP(0)

	flat := BuildFrame(g, a)
	if flat.Off == nil {
		t.Fatal("BuildFrame did not produce a flat frame")
	}
	rows := &Frame{Out: make([][]WEdge, flat.N())}
	for v := 0; v < flat.N(); v++ {
		rows.Out[v] = append([]WEdge(nil), flat.Row(graph.VertexID(v))...)
	}
	if flat.N() != rows.N() || flat.NumEdges() != rows.NumEdges() {
		t.Fatalf("shape mismatch: N %d/%d E %d/%d", flat.N(), rows.N(), flat.NumEdges(), rows.NumEdges())
	}

	x0, m0 := InitVectors(g, a)
	rf := Run(flat, a.Semiring(), x0, m0, Options{Workers: 2})
	rr := Run(rows, a.Semiring(), x0, m0, Options{Workers: 2})
	if !algo.StatesClose(rf.X, rr.X, 0) {
		t.Fatalf("flat vs row states differ: %v", algo.MaxStateDiff(rf.X, rr.X))
	}
	if rf.Activations != rr.Activations || rf.Rounds != rr.Rounds {
		t.Fatalf("flat run counters differ: %d/%d rounds %d/%d",
			rf.Activations, rr.Activations, rf.Rounds, rr.Rounds)
	}
}

// TestFrameThaw pins that thawing keeps rows identical and makes them
// independently replaceable.
func TestFrameThaw(t *testing.T) {
	g := randomFrameGraph(4, 40)
	a := algo.NewPageRank(0.85, 1e-9)
	f := BuildFrame(g, a)
	want := make([][]WEdge, f.N())
	for v := range want {
		want[v] = append([]WEdge(nil), f.Row(graph.VertexID(v))...)
	}
	f.Thaw()
	if f.Off != nil || f.Edges != nil {
		t.Fatal("thaw left flat storage populated")
	}
	for v := range want {
		got := f.Row(graph.VertexID(v))
		if len(got) != len(want[v]) {
			t.Fatalf("row %d length changed across thaw", v)
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("row %d edge %d changed across thaw", v, i)
			}
		}
	}
	// Appending to a thawed row must not clobber the neighboring row.
	var v0 graph.VertexID
	for v := range want {
		if len(want[v]) > 0 {
			v0 = graph.VertexID(v)
			break
		}
	}
	next := f.Row(v0 + 1)
	nextCopy := append([]WEdge(nil), next...)
	f.Out[v0] = append(f.Out[v0], WEdge{To: 0, W: 99})
	for i := range nextCopy {
		if f.Row(v0 + 1)[i] != nextCopy[i] {
			t.Fatal("append to thawed row clobbered neighbor")
		}
	}
}
