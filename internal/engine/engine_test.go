package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"layph/internal/algo"
	"layph/internal/gen"
	"layph/internal/graph"
)

// dijkstra is an independent reference implementation for SSSP correctness.
func dijkstra(g *graph.Graph, src graph.VertexID) []float64 {
	dist := make([]float64, g.Cap())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if !g.Alive(src) {
		return dist
	}
	dist[src] = 0
	visited := make([]bool, g.Cap())
	for {
		best := graph.VertexID(0)
		bestD := math.Inf(1)
		found := false
		for v := 0; v < g.Cap(); v++ {
			if !visited[v] && dist[v] < bestD {
				best, bestD, found = graph.VertexID(v), dist[v], true
			}
		}
		if !found {
			return dist
		}
		visited[best] = true
		for _, e := range g.Out(best) {
			if d := bestD + e.W; d < dist[e.To] {
				dist[e.To] = d
			}
		}
	}
}

// powerIteration is an independent reference implementation for PageRank.
func powerIteration(g *graph.Graph, d float64, iters int) []float64 {
	n := g.Cap()
	pr := make([]float64, n)
	g.Vertices(func(v graph.VertexID) { pr[v] = 1 - d })
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		g.Vertices(func(v graph.VertexID) { next[v] = 1 - d })
		g.Edges(func(u, v graph.VertexID, w float64) {
			next[v] += d * pr[u] / float64(g.OutDegree(u))
		})
		pr = next
	}
	return pr
}

func TestSSSPAgainstDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := gen.CommunityGraph(gen.CommunityConfig{
			Vertices: 200, MeanCommunity: 25, IntraDegree: 5, InterDegree: 0.4, Weighted: true, Seed: seed,
		})
		src := graph.VertexID(int(uint64(seed)) % g.Cap())
		res := RunBatch(g, algo.NewSSSP(src), Options{Workers: 4})
		want := dijkstra(g, src)
		if !algo.StatesClose(res.X, want, 1e-9) {
			t.Logf("seed %d src %d: max diff %v", seed, src, algo.MaxStateDiff(res.X, want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSHopCounts(t *testing.T) {
	g := graph.New(6)
	// 0 -> 1 -> 2 -> 3, 0 -> 4 (heavy weight must be ignored), 5 unreachable
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 10)
	g.AddEdge(0, 4, 100)
	res := RunBatch(g, algo.NewBFS(0), Options{})
	want := []float64{0, 1, 2, 3, 1, math.Inf(1)}
	if !algo.StatesClose(res.X, want, 0) {
		t.Fatalf("bfs = %v, want %v", res.X, want)
	}
}

func TestPageRankAgainstPowerIteration(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 300, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.4, Seed: 11,
	})
	res := RunBatch(g, algo.NewPageRank(0.85, 1e-9), Options{Workers: 4})
	want := powerIteration(g, 0.85, 200)
	if !algo.StatesClose(res.X, want, 1e-5) {
		t.Fatalf("pagerank mismatch: max diff %v", algo.MaxStateDiff(res.X, want))
	}
}

func TestPHPBasics(t *testing.T) {
	// Chain 0 -> 1 -> 2 with weights; PHP from 0 decays by d*w/W at each hop.
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 1)
	res := RunBatch(g, algo.NewPHP(0, 0.8, 1e-12), Options{})
	// x0 = 1 (root message), x1 = 0.8, x2 = 0.64.
	want := []float64{1, 0.8, 0.64}
	if !algo.StatesClose(res.X, want, 1e-9) {
		t.Fatalf("php = %v, want %v", res.X, want)
	}
}

func TestPHPCycleConverges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	res := RunBatch(g, algo.NewPHP(0, 0.5, 1e-10), Options{})
	// Geometric: x0 = 1/(1-0.25), x1 = 0.5/(1-0.25).
	want := []float64{1 / 0.75, 0.5 / 0.75}
	if !algo.StatesClose(res.X, want, 1e-6) {
		t.Fatalf("php cycle = %v, want %v", res.X, want)
	}
}

func TestParentTracking(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	res := RunBatch(g, algo.NewSSSP(0), Options{TrackParents: true})
	if res.Parent == nil {
		t.Fatal("no parents tracked")
	}
	if res.Parent[0] != NoParent {
		t.Fatalf("source parent = %v", res.Parent[0])
	}
	if res.Parent[1] != 0 {
		t.Fatalf("parent[1] = %v, want 0", res.Parent[1])
	}
	if res.Parent[2] != 1 {
		t.Fatalf("parent[2] = %v, want 1 (via shorter path)", res.Parent[2])
	}
	if res.Parent[3] != 2 {
		t.Fatalf("parent[3] = %v, want 2", res.Parent[3])
	}
}

func TestActivationsCounted(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	res := RunBatch(g, algo.NewSSSP(0), Options{})
	// Source relaxes (0,1); vertex 1 relaxes (1,2). Exactly 2 activations.
	if res.Activations != 2 {
		t.Fatalf("activations = %d, want 2", res.Activations)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	g, _ := gen.CommunityGraph(gen.CommunityConfig{
		Vertices: 400, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.4, Weighted: true, Seed: 21,
	})
	base := RunBatch(g, algo.NewSSSP(0), Options{Workers: 1})
	for _, w := range []int{2, 4, 8} {
		r := RunBatch(g, algo.NewSSSP(0), Options{Workers: w})
		if !algo.StatesClose(base.X, r.X, 1e-12) {
			t.Fatalf("workers=%d diverges: %v", w, algo.MaxStateDiff(base.X, r.X))
		}
	}
	basePR := RunBatch(g, algo.NewPageRank(0.85, 1e-10), Options{Workers: 1})
	for _, w := range []int{2, 8} {
		r := RunBatch(g, algo.NewPageRank(0.85, 1e-10), Options{Workers: w})
		if !algo.StatesClose(basePR.X, r.X, 1e-6) {
			t.Fatalf("pagerank workers=%d diverges: %v", w, algo.MaxStateDiff(basePR.X, r.X))
		}
	}
}

func TestInitialActiveOverride(t *testing.T) {
	// Force-activating a vertex with no pending message re-propagates its
	// state (reset-frontier re-seeding).
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sr := algo.Tropical{}
	f := BuildFrame(g, algo.NewSSSP(0))
	x0 := []float64{0, math.Inf(1), math.Inf(1)}
	m0 := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	res := Run(f, sr, x0, m0, Options{InitialActive: []graph.VertexID{0}})
	want := []float64{0, 1, 2}
	if !algo.StatesClose(res.X, want, 0) {
		t.Fatalf("states = %v, want %v", res.X, want)
	}
}

func TestRunOnDeadVertexGraph(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.DeleteVertex(2)
	res := RunBatch(g, algo.NewSSSP(0), Options{})
	if !math.IsInf(res.X[2], 1) || !math.IsInf(res.X[3], 1) {
		t.Fatalf("dead/unreachable states: %v", res.X)
	}
	if res.X[1] != 1 {
		t.Fatalf("x1 = %v", res.X[1])
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(0)
	res := RunBatch(g, algo.NewPageRank(0.85, 1e-6), Options{})
	if len(res.X) != 0 || res.Rounds != 0 {
		t.Fatalf("empty graph result: %+v", res)
	}
}

func TestMismatchedVectorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(&Frame{Out: make([][]WEdge, 3)}, algo.Tropical{}, []float64{0}, []float64{0}, Options{})
}

func TestMaxRoundsBounds(t *testing.T) {
	// Two-cycle with damping 1 never converges; MaxRounds must stop it.
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	res := RunBatch(g, algo.NewPHP(0, 1.0, 0), Options{MaxRounds: 50})
	if res.Rounds != 50 {
		t.Fatalf("rounds = %d, want 50", res.Rounds)
	}
}

func TestFrameNumEdges(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	f := BuildFrame(g, algo.NewBFS(0))
	if f.N() != 3 || f.NumEdges() != 2 {
		t.Fatalf("frame N=%d E=%d", f.N(), f.NumEdges())
	}
}

func TestRandomGraphsSSSPvsDijkstraLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(100)
		g := graph.New(n)
		for e := 0; e < n*4; e++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if u != v {
				g.AddEdge(u, v, 1+9*rng.Float64())
			}
		}
		src := graph.VertexID(rng.Intn(n))
		res := RunBatch(g, algo.NewSSSP(src), Options{Workers: 3})
		if !algo.StatesClose(res.X, dijkstra(g, src), 1e-9) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}
