package layph

// Benchmarks: one per table/figure of the paper's evaluation (Section VI).
// Each benchmark measures the incremental-update path of one (system,
// algorithm, dataset) cell; `go test -bench . -benchmem` therefore
// regenerates the raw material behind every figure, and
// `go run ./cmd/layph-bench -experiment all` prints the paper-shaped tables.
//
// The reported custom metrics are:
//
//	activations/op — edge activations per update batch (Figures 1 and 6)

import (
	"fmt"
	"testing"

	"layph/internal/bench"
	"layph/internal/delta"
	"layph/internal/gen"
)

// benchScale keeps the full matrix affordable; cmd/layph-bench exposes the
// scale as a flag for larger runs.
const benchScale = 0.1

// benchBatch is the paper's default |ΔG|.
const benchBatch = 5000

func benchUpdates(b *testing.B, p gen.Preset, algoName string, kind bench.SystemKind, batchSize int) {
	b.Helper()
	wl := bench.NewWorkload(p, benchScale, 1, batchSize, 42)
	g := wl.Graph.Clone()
	mk := bench.Algorithms()[algoName]
	sys := benchBuild(kind, g, mk)
	genr := delta.NewGenerator(7)
	b.ResetTimer()
	var acts int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := genr.EdgeBatch(g, batchSize, true)
		b.StartTimer()
		applied := delta.Apply(g, batch)
		st := sys.Update(applied)
		acts += st.Activations
	}
	b.ReportMetric(float64(acts)/float64(b.N), "activations/op")
}

func benchBuild(kind bench.SystemKind, g *Graph, mk bench.AlgoMaker) System {
	switch kind {
	case bench.Restart:
		return &restartAdapter{g: g, mk: mk}
	case bench.KickStarter:
		return NewKickStarter(g, mk(), 0)
	case bench.RisGraph:
		return NewRisGraph(g, mk(), 0)
	case bench.GraphBolt:
		return NewGraphBolt(g, mk())
	case bench.DZiG:
		return NewDZiG(g, mk())
	case bench.Ingress:
		return NewIngress(g, mk(), 0)
	case bench.Layph:
		return NewLayph(g, mk(), Config{})
	case bench.LayphNoRepl:
		return NewLayph(g, mk(), Config{DisableReplication: true})
	}
	panic("unknown kind")
}

type restartAdapter struct {
	g  *Graph
	mk bench.AlgoMaker
	x  []float64
}

func (r *restartAdapter) Name() string      { return "restart" }
func (r *restartAdapter) States() []float64 { return r.x }
func (r *restartAdapter) Update(*Applied) Stats {
	r.x = Run(r.g, r.mk(), 0)
	return Stats{}
}

// --- Figure 1: activations + runtime, SSSP and PR on UK, |ΔG|=5000 ------

func BenchmarkFig1_SSSP(b *testing.B) {
	for _, kind := range bench.MinSystems {
		b.Run(string(kind), func(b *testing.B) {
			benchUpdates(b, gen.PresetUK, "SSSP", kind, benchBatch)
		})
	}
}

func BenchmarkFig1_PageRank(b *testing.B) {
	for _, kind := range bench.SumSystems {
		b.Run(string(kind), func(b *testing.B) {
			benchUpdates(b, gen.PresetUK, "PR", kind, benchBatch)
		})
	}
}

// --- Figures 5 and 6: the full comparison matrix -------------------------
// (time is the benchmark result; activations/op is the Figure 6 series)

func BenchmarkFig5_Matrix(b *testing.B) {
	for _, algoName := range []string{"SSSP", "BFS", "PR", "PHP"} {
		for _, p := range gen.AllPresets {
			for _, kind := range bench.SystemsFor(algoName) {
				if kind == bench.Restart {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/%s", algoName, p, kind), func(b *testing.B) {
					benchUpdates(b, p, algoName, kind, benchBatch)
				})
			}
		}
	}
}

// --- Figure 5e: vertex updates -------------------------------------------

func BenchmarkFig5e_VertexUpdates(b *testing.B) {
	for _, kind := range []bench.SystemKind{bench.Ingress, bench.Layph} {
		b.Run(string(kind), func(b *testing.B) {
			wl := bench.NewVertexWorkload(gen.PresetUK, benchScale, 1, 1000, 42)
			g := wl.Graph.Clone()
			sys := benchBuild(kind, g, bench.Algorithms()["PR"])
			genr := delta.NewGenerator(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch := genr.VertexBatch(g, 500, 500, 4, true)
				b.StartTimer()
				sys.Update(delta.Apply(g, batch))
			}
		})
	}
}

// --- Figure 7: Layph phase breakdown --------------------------------------

func BenchmarkFig7_Breakdown(b *testing.B) {
	for _, algoName := range []string{"SSSP", "BFS", "PR", "PHP"} {
		b.Run(algoName, func(b *testing.B) {
			wl := bench.NewWorkload(gen.PresetUK, benchScale, 1, benchBatch, 42)
			g := wl.Graph.Clone()
			l := NewLayph(g, bench.Algorithms()[algoName](), Config{})
			genr := delta.NewGenerator(7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch := genr.EdgeBatch(g, benchBatch, true)
				b.StartTimer()
				l.Update(delta.Apply(g, batch))
			}
			b.StopTimer()
			for _, name := range l.LastPhases.Names() {
				b.ReportMetric(l.LastPhases.Fractions()[name], name+"-frac")
			}
		})
	}
}

// --- Figure 8: replication ablation ---------------------------------------

func BenchmarkFig8_ReplicationSSSP(b *testing.B) {
	for _, kind := range []bench.SystemKind{bench.Ingress, bench.LayphNoRepl, bench.Layph} {
		b.Run(string(kind), func(b *testing.B) {
			benchUpdates(b, gen.PresetUK, "SSSP", kind, benchBatch)
		})
	}
}

func BenchmarkFig8_ReplicationPageRank(b *testing.B) {
	for _, kind := range []bench.SystemKind{bench.Ingress, bench.LayphNoRepl, bench.Layph} {
		b.Run(string(kind), func(b *testing.B) {
			benchUpdates(b, gen.PresetUK, "PR", kind, benchBatch)
		})
	}
}

// --- Figure 9: thread scaling ---------------------------------------------

func BenchmarkFig9_Threads(b *testing.B) {
	for _, algoName := range []string{"SSSP", "PR"} {
		for _, th := range []int{1, 2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/threads=%d", algoName, th), func(b *testing.B) {
				wl := bench.NewWorkload(gen.PresetUK, benchScale, 1, benchBatch, 42)
				g := wl.Graph.Clone()
				l := NewLayph(g, bench.Algorithms()[algoName](), Config{Threads: th})
				genr := delta.NewGenerator(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					batch := genr.EdgeBatch(g, benchBatch, true)
					b.StartTimer()
					l.Update(delta.Apply(g, batch))
				}
			})
		}
	}
}

// --- Figure 10: batch-size sweep -------------------------------------------

func BenchmarkFig10_BatchSize(b *testing.B) {
	for _, algoName := range []string{"SSSP", "PR"} {
		for _, bs := range []int{10, 100, 1000, 10000} {
			for _, kind := range []bench.SystemKind{bench.Ingress, bench.Layph} {
				b.Run(fmt.Sprintf("%s/batch=%d/%s", algoName, bs, kind), func(b *testing.B) {
					benchUpdates(b, gen.PresetUK, algoName, kind, bs)
				})
			}
		}
	}
}

// --- Figure 11: offline cost amortization ----------------------------------

func BenchmarkFig11b_Amortization(b *testing.B) {
	// Measures the offline phase itself; the amortization table is printed
	// by `layph-bench -experiment fig11b`.
	wl := bench.NewWorkload(gen.PresetUK, benchScale, 1, benchBatch, 42)
	mk := bench.Algorithms()["SSSP"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := wl.Graph.Clone()
		l := NewLayph(g, mk(), Config{})
		_ = l.OfflineStats
	}
}
