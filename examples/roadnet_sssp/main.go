// Road-network scenario: continuously re-weighted edges (traffic) over a
// district-structured road graph, with Layph maintaining shortest travel
// times from a depot. An edge-weight change is, as in the paper, a deletion
// followed by an insertion with the new weight.
//
// The example contrasts Layph with the Ingress baseline on the same update
// stream and reports time and edge activations per round.
package main

import (
	"fmt"
	"math/rand"

	"layph"
)

func main() {
	// Districts = dense subgraphs; arterials = sparse cross links.
	build := func() *layph.Graph {
		return layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
			Vertices:      8000,
			MeanCommunity: 60,
			IntraDegree:   6,
			InterDegree:   0.2,
			Weighted:      true,
			Seed:          99,
		})
	}
	const depot = 0

	gL := build()
	gI := build()
	lay := layph.NewLayph(gL, layph.SSSP(depot), layph.Config{})
	ing := layph.NewIngress(gI, layph.SSSP(depot), 0)

	rng := rand.New(rand.NewSource(5))
	reweight := func(g *layph.Graph, n int) layph.Batch {
		var b layph.Batch
		g.Vertices(func(v layph.VertexID) {
			if len(b) >= 2*n || g.OutDegree(v) == 0 || rng.Intn(10) > 0 {
				return
			}
			e := g.Out(v)[rng.Intn(g.OutDegree(v))]
			// Traffic: multiply the travel time by 1x..3x.
			b = append(b,
				layph.Update{Kind: layph.DelEdge, U: v, V: e.To},
				layph.Update{Kind: layph.AddEdge, U: v, V: e.To, W: e.W * (1 + 2*rng.Float64())})
		})
		return b
	}

	fmt.Println("round  layph-time  layph-acts  ingress-time  ingress-acts")
	for round := 1; round <= 5; round++ {
		b := reweight(gL, 400)
		stL := lay.Update(layph.ApplyBatch(gL, b))
		stI := ing.Update(layph.ApplyBatch(gI, b))
		fmt.Printf("%5d  %10v  %10d  %12v  %12d\n",
			round, stL.Duration.Round(1000), stL.Activations,
			stI.Duration.Round(1000), stI.Activations)
		if !layph.StatesClose(lay.States()[:gL.Cap()], ing.States()[:gI.Cap()], 1e-9) {
			panic("engines disagree")
		}
	}
	fmt.Println("both engines agree on all travel times ✓")
}
