// Web-graph scenario: incremental PageRank over a crawl that keeps
// discovering and dropping links — the paper's motivating workload (the
// English Wikipedia grows by ~580 articles a day against 6.4M existing
// ones). Layph's layered graph confines each day's ranking refresh to the
// skeleton plus the handful of site-level subgraphs the edits touch.
package main

import (
	"fmt"
	"sort"

	"layph"
)

func main() {
	g := layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
		Vertices:      15000,
		MeanCommunity: 45, // "sites": densely interlinked page clusters
		IntraDegree:   10,
		InterDegree:   0.25,
		HubFraction:   0.005,
		HubDegree:     40,
		Seed:          2005,
	})
	fmt.Printf("crawl snapshot: %d pages, %d links\n", g.NumVertices(), g.NumEdges())

	sys := layph.NewLayph(g, layph.PageRank(0.85, 1e-8), layph.Config{})

	top := func(k int) []int {
		x := sys.States()
		idx := make([]int, g.Cap())
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return x[idx[a]] > x[idx[b]] })
		return idx[:k]
	}
	fmt.Printf("initial top-5 pages: %v\n", top(5))

	gen := layph.NewBatchGenerator(11)
	for day := 1; day <= 4; day++ {
		// A day of crawling: new links found, dead links dropped, a few new
		// pages and page deletions.
		batch := gen.EdgeBatch(g, 600, false)
		batch = append(batch, gen.VertexBatch(g, 20, 20, 5, false)...)
		applied := layph.ApplyBatch(g, batch)
		st := sys.Update(applied)
		fmt.Printf("day %d: rank refresh in %v (%d activations); top-5 now %v\n",
			day, st.Duration, st.Activations, top(5))
	}

	// Validate the final ranking against a full recomputation.
	want := layph.Run(g, layph.PageRank(0.85, 1e-8), 0)
	if !layph.StatesClose(sys.States()[:g.Cap()], want, 1e-4) {
		panic("incremental ranking diverged")
	}
	fmt.Println("final ranking verified against full recomputation ✓")
}
