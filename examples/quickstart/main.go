// Quickstart: build a small graph, run incremental SSSP with Layph, change
// the graph, and verify the incrementally maintained distances against a
// full recomputation.
package main

import (
	"fmt"

	"layph"
)

func main() {
	// A small weighted road-like graph: two dense neighbourhoods joined by
	// a few arterial links.
	g := layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
		Vertices:      2000,
		MeanCommunity: 40,
		IntraDegree:   8,
		InterDegree:   0.3,
		Weighted:      true,
		Seed:          1,
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Offline phase: layer the graph and run SSSP from vertex 0 once.
	sys := layph.NewLayph(g, layph.SSSP(0), layph.Config{})
	fmt.Printf("offline done; distance to vertex 42: %.2f\n", sys.States()[42])

	// Online phase: mutate the graph, update incrementally.
	gen := layph.NewBatchGenerator(7)
	for round := 1; round <= 3; round++ {
		batch := gen.EdgeBatch(g, 200, true)
		applied := layph.ApplyBatch(g, batch)
		stats := sys.Update(applied)
		fmt.Printf("round %d: updated in %v with %d edge activations (%d resets)\n",
			round, stats.Duration, stats.Activations, stats.Resets)

		// Cross-check against a from-scratch run (the Restart baseline).
		want := layph.Run(g, layph.SSSP(0), 0)
		if !layph.StatesClose(sys.States()[:g.Cap()], want, 1e-9) {
			panic("incremental result diverged from restart!")
		}
	}
	fmt.Printf("final distance to vertex 42: %.2f\n", sys.States()[42])
	fmt.Println("all rounds verified against full recomputation ✓")
}
