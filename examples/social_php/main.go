// Social-network scenario: penalized hitting probability (PHP) from a seed
// user over an evolving follower graph — the proximity measure the paper
// evaluates on the Sinaweibo dataset. Social graphs are Layph's hardest
// regime (few, very large communities), and this example surfaces that: the
// skeleton is a larger fraction of the graph than in the web-graph example,
// and per-update gains are correspondingly smaller.
package main

import (
	"fmt"

	"layph"
)

func main() {
	// Social regime: large loose communities, strong hubs (celebrities).
	g := layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
		Vertices:      12000,
		MeanCommunity: 700,
		MaxCommunity:  2500,
		IntraDegree:   4,
		InterDegree:   0.8,
		HubFraction:   0.02,
		HubDegree:     60,
		Weighted:      true, // tie strength
		Seed:          58,
	})
	const seedUser = 0
	fmt.Printf("follower graph: %d users, %d ties\n", g.NumVertices(), g.NumEdges())

	sys := layph.NewLayph(g, layph.PHP(seedUser, 0.8, 1e-6), layph.Config{})
	base := layph.NewIngress(g.Clone(), layph.PHP(seedUser, 0.8, 1e-6), 0)

	gen := layph.NewBatchGenerator(3)
	gen2 := layph.NewBatchGenerator(3) // identical stream for the baseline
	fmt.Println("wave  layph-time  ingress-time  proximity(user 77)")
	for wave := 1; wave <= 4; wave++ {
		// A wave of follows/unfollows.
		b := gen.EdgeBatch(g, 500, true)
		stL := sys.Update(layph.ApplyBatch(g, b))

		bg := base.(interface{ Graph() *layph.Graph }).Graph()
		b2 := gen2.EdgeBatch(bg, 500, true)
		stI := base.Update(layph.ApplyBatch(bg, b2))

		fmt.Printf("%4d  %10v  %12v  %.6f\n",
			wave, stL.Duration.Round(1000), stI.Duration.Round(1000), sys.States()[77])
	}

	want := layph.Run(g, layph.PHP(seedUser, 0.8, 1e-6), 0)
	if !layph.StatesClose(sys.States()[:g.Cap()], want, 1e-4) {
		panic("incremental proximity diverged")
	}
	fmt.Println("final proximities verified against full recomputation ✓")
}
