// Streaming scenario: a live feed of road-network traffic updates flows
// into Layph through the micro-batching pipeline while a concurrent
// reader serves shortest-travel-time queries from consistent snapshots —
// the served-system shape the batch examples only approximate.
//
// A producer goroutine pushes unit edge updates (re-weights, closures,
// new links) into layph.NewStream; the stream flushes micro-batches by
// count or time window and publishes an immutable snapshot after each
// one. The reader never blocks ingestion and never sees a half-applied
// batch. At the end the streamed result is validated against a
// from-scratch restart on the final graph.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"layph"
)

func main() {
	g := layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
		Vertices:      6000,
		MeanCommunity: 50,
		IntraDegree:   6,
		InterDegree:   0.25,
		Weighted:      true,
		Seed:          21,
	})
	const depot = 0
	// The producer plans updates against its own clone (the live graph
	// belongs to the stream worker once ingestion starts).
	plan := g.Clone()
	sys := layph.NewLayph(g, layph.SSSP(depot), layph.Config{})
	st := layph.NewStream(g, sys, layph.StreamConfig{
		MaxBatch: 256,
		MaxDelay: 5 * time.Millisecond,
	})

	// Producer: 20k updates of live traffic — mostly re-weights (delete +
	// re-insert with a new travel time), some permanent closures.
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		rng := rand.New(rand.NewSource(4))
		push := func(u layph.Update) {
			layph.ApplyBatch(plan, layph.Batch{u})
			if err := st.Push(u); err != nil {
				panic(err)
			}
		}
		for pushed := 0; pushed < 20000; {
			u := layph.VertexID(rng.Intn(plan.Cap()))
			outs := plan.Out(u)
			if len(outs) == 0 {
				continue
			}
			e := outs[rng.Intn(len(outs))]
			push(layph.Update{Kind: layph.DelEdge, U: u, V: e.To})
			pushed++
			if rng.Intn(10) > 0 { // 90%: re-insert with new travel time
				push(layph.Update{Kind: layph.AddEdge, U: u, V: e.To, W: e.W * (0.5 + 2*rng.Float64())})
				pushed++
			}
		}
	}()

	// Reader: periodic queries served from consistent snapshots while
	// updates keep flowing.
	fmt.Println("     seq   updates      rate/s   batch-lat   dist(depot->42)")
	for done := false; !done; {
		select {
		case <-producerDone:
			done = true
		case <-time.After(20 * time.Millisecond):
		}
		snap := st.Query()
		m := st.Metrics()
		fmt.Printf("%8d  %8d  %10.0f  %10v  %16.4g\n",
			snap.Seq, snap.Updates, m.Throughput,
			m.MeanBatchLatency.Round(time.Microsecond), snap.States[42])
	}

	if err := st.Drain(); err != nil {
		panic(err)
	}
	final := st.Query()
	st.Close()

	want := layph.Run(g, layph.SSSP(depot), 0)
	if !layph.StatesClose(final.States[:g.Cap()], want[:g.Cap()], 1e-6) {
		panic("streamed states diverge from restart")
	}
	m := st.Metrics()
	fmt.Printf("\nstreamed %d updates in %d micro-batches; engine: %d activations, %v update time\n",
		m.Applied, m.Batches, m.Engine.Activations, m.Engine.Duration.Round(time.Millisecond))
	fmt.Println("streamed result matches from-scratch restart ✓")
}
