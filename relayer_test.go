package layph

import (
	"testing"
	"time"
)

// pushAll feeds a batch into the stream as unit updates and drains it.
func pushAll(t *testing.T, st *Stream, b Batch) {
	t.Helper()
	for _, u := range b {
		if err := st.Push(u); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// driftRound generates one community-migration churn round against the
// driver graph (which tracks the stream's logical graph state).
func driftRound(gen *BatchGenerator, driver *Graph) Batch {
	b := gen.MigrationBatch(driver, 15, 4, true)
	b = append(b, gen.EdgeBatch(driver, 40, true)...)
	return b
}

// TestStreamRelayerSwapsUnderDrift runs the full pipeline: an adaptive
// Layph engine behind a stream with the drift controller enabled, under
// community-migration churn. It asserts that (a) at least one background
// full re-layer completes and is swapped in mid-stream, (b) every drained
// snapshot — before, across and after swaps — matches the restart oracle
// on the same logical graph (the atomic-swap consistency check), and (c)
// the relayer metrics are coherent.
func TestStreamRelayerSwapsUnderDrift(t *testing.T) {
	cfg := Config{Threads: 2, AdaptiveCommunities: true}
	g := GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 600, MeanCommunity: 30, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 11,
	})
	driver := g.Clone()
	rc := LayphRelayer(SSSP(0), cfg)
	rc.MinBatches = 2
	rc.SkeletonGrowthFactor = 1.05
	st := NewStream(g, NewLayph(g, SSSP(0), cfg), StreamConfig{
		MaxBatch: 64, MaxDelay: -1, Relayer: rc,
	})
	defer st.Close()

	gen := NewBatchGenerator(23)
	check := func(round int) {
		snap := st.Query()
		want := Run(driver, SSSP(0), 2)
		if len(snap.States) < driver.Cap() {
			t.Fatalf("round %d: snapshot too short", round)
		}
		if !StatesClose(snap.States[:driver.Cap()], want, 1e-6) {
			t.Fatalf("round %d: snapshot diverged from restart oracle", round)
		}
	}
	for i := 0; i < 10; i++ {
		b := driftRound(gen, driver)
		ApplyBatch(driver, b)
		pushAll(t, st, b)
		check(i)
	}
	// The drift rounds push skeleton fraction past the (aggressive)
	// threshold; keep streaming small batches until the background build
	// lands and is swapped in.
	deadline := time.Now().Add(30 * time.Second)
	for st.Metrics().Relayer.FullRelayers == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no full re-layer completed; relayer metrics: %+v", st.Metrics().Relayer)
		}
		b := gen.EdgeBatch(driver, 20, true)
		ApplyBatch(driver, b)
		pushAll(t, st, b)
		check(-1)
	}
	// Post-swap: the stream must keep absorbing updates consistently on
	// the fresh engine.
	for i := 0; i < 3; i++ {
		b := driftRound(gen, driver)
		ApplyBatch(driver, b)
		pushAll(t, st, b)
		check(100 + i)
	}
	m := st.Metrics().Relayer
	if !m.Enabled || m.FullRelayers < 1 {
		t.Fatalf("relayer metrics incoherent: %+v", m)
	}
	if m.LastTrigger == "" {
		t.Fatal("swap completed without a recorded trigger reason")
	}
	if m.TouchedRatioEWMA < 0 || m.TouchedRatioEWMA > 1 || m.SkeletonFraction <= 0 {
		t.Fatalf("quality gauges out of range: %+v", m)
	}
}

// TestStreamRelayerMinDeterminism pins the determinism contract with the
// relayer enabled: background build *completion* is scheduling-dependent,
// but the swap lands exactly SwapLagBatches applied batches after the
// (deterministic) trigger, so which layering serves which batch is a pure
// function of the input stream — identical inputs at a fixed thread count
// must produce byte-identical drained snapshots and the same swap count.
func TestStreamRelayerMinDeterminism(t *testing.T) {
	run := func() ([]float64, int64) {
		cfg := Config{Threads: 4, AdaptiveCommunities: true}
		g := GenerateCommunityGraph(CommunityGraphConfig{
			Vertices: 500, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
			Weighted: true, Seed: 31,
		})
		driver := g.Clone()
		rc := LayphRelayer(SSSP(0), cfg)
		rc.MinBatches = 1
		rc.SkeletonGrowthFactor = 1.01
		rc.SwapLagBatches = 2
		st := NewStream(g, NewLayph(g, SSSP(0), cfg), StreamConfig{
			MaxBatch: 32, MaxDelay: -1, Relayer: rc,
		})
		gen := NewBatchGenerator(77)
		for i := 0; i < 8; i++ {
			b := driftRound(gen, driver)
			ApplyBatch(driver, b)
			pushAll(t, st, b)
		}
		snap := st.Query()
		out := append([]float64(nil), snap.States[:driver.Cap()]...)
		swaps := st.Metrics().Relayer.FullRelayers
		st.Close()
		return out, swaps
	}
	want, wantSwaps := run()
	if wantSwaps < 1 {
		t.Fatalf("determinism run never swapped (FullRelayers=%d); thresholds too lax for the schedule", wantSwaps)
	}
	for rep := 0; rep < 2; rep++ {
		got, swaps := run()
		if swaps != wantSwaps {
			t.Fatalf("rep %d: %d swaps, want %d (swap boundary not deterministic)", rep, swaps, wantSwaps)
		}
		if len(got) != len(want) {
			t.Fatalf("rep %d: length %d != %d", rep, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("rep %d: vertex %d = %v, want %v (byte-identical contract broken with relayer on)", rep, v, got[v], want[v])
			}
		}
	}
}

// TestStreamRelayerDisabledMetrics pins the off state: a stream without a
// relayer reports Enabled=false and never swaps.
func TestStreamRelayerDisabledMetrics(t *testing.T) {
	g := demoGraph()
	st := NewStream(g, NewLayph(g, SSSP(0), Config{Threads: 2}), StreamConfig{MaxBatch: 32, MaxDelay: -1})
	defer st.Close()
	gen := NewBatchGenerator(3)
	pushAll(t, st, gen.EdgeBatch(g, 40, true))
	m := st.Metrics().Relayer
	if m.Enabled || m.FullRelayers != 0 || m.InFlight {
		t.Fatalf("relayer should be disabled: %+v", m)
	}
}
