package layph

// Durability facade: OpenStream wraps NewStream with a write-ahead log
// and checkpoints (internal/wal), so a crashed process restarts from its
// last published snapshot instead of recomputing from scratch.

import (
	"fmt"
	"time"

	"layph/internal/inc"
	"layph/internal/stream"
	"layph/internal/wal"
)

// WAL is the write-ahead log + checkpoint store behind a durable stream.
type WAL = wal.Log

// WALConfig tunes the log: fsync policy, checkpoint cadence, workload
// meta tag.
type WALConfig = wal.Config

// WALStats is a point-in-time summary of WAL activity.
type WALStats = wal.Stats

// WALSyncPolicy selects when appended batches are fsynced.
type WALSyncPolicy = wal.SyncPolicy

// Fsync policies for WALConfig.Sync.
const (
	// SyncEveryBatch fsyncs before each micro-batch publishes (default;
	// full durability).
	SyncEveryBatch = wal.SyncEveryBatch
	// SyncInterval fsyncs at most once per WALConfig.Interval.
	SyncInterval = wal.SyncInterval
	// SyncOff never fsyncs (survives a process kill, not an OS crash).
	SyncOff = wal.SyncOff
)

// RecoveryInfo summarizes a completed crash recovery.
type RecoveryInfo = wal.RecoveryInfo

// ErrWALSeqGap reports unrecoverable mid-history WAL loss.
var ErrWALSeqGap = wal.ErrSeqGap

// ErrWALLocked reports that another live stream already holds the
// durability directory (exclusive per-directory lock).
var ErrWALLocked = wal.ErrLocked

// recoveryVerifyTol is the tolerance for comparing the rebuilt engine's
// converged states against the checkpoint's state vector. Min-semiring
// workloads match exactly; sum-semiring ones within accumulation noise.
const recoveryVerifyTol = 1e-4

// DurableStreamConfig configures OpenStream.
type DurableStreamConfig struct {
	// Dir is the durability directory (created if missing). One stream
	// per directory.
	Dir string
	// WAL tunes the log; WAL.Meta should identify the workload
	// ("algo=sssp ..."): recovery refuses a directory whose checkpoint
	// was written under a different non-empty tag, because replaying an
	// SSSP log into a PageRank engine would serve garbage silently.
	WAL WALConfig
	// Stream tunes the micro-batcher. Durability and Start* fields are
	// overwritten by OpenStream.
	Stream StreamConfig
}

// DurableStream is a Stream bound to its WAL.
type DurableStream struct {
	// Stream is the live pipeline; Push/Query/Drain as usual.
	Stream *Stream
	// Log is the underlying WAL (for Stats).
	Log *WAL
	// Recovery describes the crash recovery that produced this stream,
	// nil when the directory was fresh.
	Recovery *RecoveryInfo
}

// OpenStream opens (or resumes) a durable stream in cfg.Dir.
//
// On a fresh directory it behaves like NewStream over freshGraph plus
// write-ahead logging: build constructs the engine on freshGraph (running
// the initial batch computation), a seq-0 checkpoint is cut, and every
// micro-batch is logged before its snapshot publishes.
//
// On a directory with durable state, freshGraph is IGNORED: the latest
// valid checkpoint's graph is loaded, build constructs the engine on it,
// the engine's converged states are verified against the checkpointed
// vector (Recovery.StatesVerified), the WAL tail is replayed through the
// incremental path, a fresh checkpoint is cut at the recovered position,
// and the stream resumes serving with its seq/update counters intact.
func OpenStream(freshGraph *Graph, build func(*Graph) System, cfg DurableStreamConfig) (*DurableStream, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("layph: OpenStream needs a durability directory")
	}
	l, rec, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return nil, err
	}
	scfg := cfg.Stream
	scfg.StartSeq, scfg.StartUpdates, scfg.StartStats = 0, 0, inc.Stats{}

	if rec == nil {
		if freshGraph == nil {
			return nil, fmt.Errorf("layph: OpenStream on fresh dir %s needs a graph", cfg.Dir)
		}
		sys := build(freshGraph)
		if err := l.Start(0, 0, freshGraph, sys.States()); err != nil {
			l.Close()
			return nil, err
		}
		scfg.Durability = l
		return &DurableStream{Stream: stream.New(freshGraph, sys, scfg), Log: l}, nil
	}

	if rec.Meta != "" && cfg.WAL.Meta != "" && rec.Meta != cfg.WAL.Meta {
		l.Close()
		return nil, fmt.Errorf("layph: durability dir %s was written by workload %q, refusing to resume as %q",
			cfg.Dir, rec.Meta, cfg.WAL.Meta)
	}

	// Rebuild the engine on the checkpointed graph (this reruns the
	// initial batch computation) and check its fixpoint against the
	// checkpointed states — a free end-to-end integrity test. Only the
	// graph-aligned prefix is compared: an engine may keep internal
	// replica states past g.Cap() (Layph's proxies), which are derived,
	// not checkpointed.
	g := rec.Graph
	sys := build(g)
	sysStates := sys.States()
	verified := len(sysStates) >= len(rec.States) &&
		StatesClose(sysStates[:len(rec.States)], rec.States, recoveryVerifyTol)
	info := &RecoveryInfo{
		CheckpointSeq:  rec.CheckpointSeq,
		DiscardedBytes: rec.DiscardedBytes,
		LoadMillis:     float64(rec.LoadDuration) / float64(time.Millisecond),
		StatesVerified: verified,
		Meta:           rec.Meta,
	}

	// Replay the tail through the incremental path, exactly as the live
	// stream would have applied it.
	replayStart := time.Now()
	var agg inc.Stats
	seq, updates := rec.CheckpointSeq, rec.CheckpointUpdates
	for _, r := range rec.Tail {
		applied := ApplyBatch(g, r.Batch)
		var st inc.Stats
		if !applied.Empty() {
			st = sys.Update(applied)
		}
		st.ReplayedBatches = 1
		agg.Add(st)
		seq = r.Seq
		updates += uint64(len(r.Batch))
		info.ReplayedUpdates += int64(len(r.Batch))
	}
	info.ReplayedBatches = int64(len(rec.Tail))
	info.ReplayMillis = float64(time.Since(replayStart)) / float64(time.Millisecond)
	info.Seq, info.Updates = seq, updates

	// Re-checkpoint at the recovered position: the next crash replays
	// nothing we just replayed, and the old segments are pruned.
	if err := l.Start(seq, updates, g, sys.States()); err != nil {
		l.Close()
		return nil, err
	}
	scfg.Durability = l
	scfg.StartSeq, scfg.StartUpdates, scfg.StartStats = seq, updates, agg
	return &DurableStream{Stream: stream.New(g, sys, scfg), Log: l, Recovery: info}, nil
}

// Close shuts the pipeline down cleanly: the stream drains and stops,
// a final checkpoint is cut at the last published snapshot (so the next
// OpenStream replays nothing), and the log is closed. The first error
// encountered — including a sticky durability error from the stream's
// lifetime — is returned.
func (d *DurableStream) Close() error {
	first := d.Stream.DurabilityErr()
	if err := d.Stream.Close(); err != nil && first == nil {
		first = err
	}
	snap := d.Stream.Query()
	if err := d.Log.Checkpoint(snap.Seq, snap.Updates, d.Stream.Graph(), snap.States); err != nil && first == nil {
		first = err
	}
	if err := d.Log.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
