package layph

import (
	"strings"
	"testing"
)

func demoGraph() *Graph {
	return GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 400, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 7,
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := demoGraph()
	sys := NewLayph(g, SSSP(0), Config{Threads: 2})
	gen := NewBatchGenerator(1)
	for i := 0; i < 3; i++ {
		batch := gen.EdgeBatch(g, 40, true)
		applied := ApplyBatch(g, batch)
		st := sys.Update(applied)
		if st.Duration <= 0 {
			t.Fatal("no duration recorded")
		}
		want := Run(g, SSSP(0), 2)
		if !StatesClose(sys.States()[:g.Cap()], want, 1e-6) {
			t.Fatalf("batch %d: incremental != restart", i)
		}
	}
}

func TestAllSystemConstructors(t *testing.T) {
	g := demoGraph()
	minSystems := []System{
		NewLayph(g.Clone(), SSSP(0), Config{}),
		NewIngress(g.Clone(), SSSP(0), 2),
		NewKickStarter(g.Clone(), SSSP(0), 2),
		NewRisGraph(g.Clone(), SSSP(0), 2),
	}
	sumSystems := []System{
		NewLayph(g.Clone(), PageRank(0.85, 1e-8), Config{}),
		NewIngress(g.Clone(), PageRank(0.85, 1e-8), 2),
		NewGraphBolt(g.Clone(), PageRank(0.85, 1e-8)),
		NewDZiG(g.Clone(), PageRank(0.85, 1e-8)),
	}
	names := map[string]bool{}
	for _, s := range append(minSystems, sumSystems...) {
		if len(s.States()) < g.Cap() {
			t.Fatalf("%s: short state vector", s.Name())
		}
		names[s.Name()] = true
	}
	for _, want := range []string{"layph", "ingress", "kickstarter", "risgraph", "graphbolt", "dzig"} {
		if !names[want] {
			t.Fatalf("missing system %q (got %v)", want, names)
		}
	}
}

func TestAlgorithmsExposed(t *testing.T) {
	for _, a := range []Algorithm{SSSP(0), BFS(0), PageRank(0.85, 1e-6), PHP(0, 0.8, 1e-6)} {
		if a.Name() == "" || a.Semiring() == nil {
			t.Fatalf("bad algorithm %T", a)
		}
	}
}

func TestReadEdgeListExposed(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2\n1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestManualBatch(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	sys := NewIngress(g, BFS(0), 1)
	applied := ApplyBatch(g, Batch{
		{Kind: AddEdge, U: 1, V: 2, W: 1},
	})
	sys.Update(applied)
	if sys.States()[2] != 2 {
		t.Fatalf("x2 = %v", sys.States()[2])
	}
	UndoBatch(g, applied)
	if _, ok := g.HasEdge(1, 2); ok {
		t.Fatal("undo failed")
	}
}
