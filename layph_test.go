package layph

import (
	"strings"
	"testing"

	"layph/internal/algo"
	"layph/internal/enginetest"
	"layph/internal/graph"
	"layph/internal/inc"
)

func demoGraph() *Graph {
	return GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 400, MeanCommunity: 25, IntraDegree: 6, InterDegree: 0.4,
		Weighted: true, Seed: 7,
	})
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := demoGraph()
	sys := NewLayph(g, SSSP(0), Config{Threads: 2})
	gen := NewBatchGenerator(1)
	for i := 0; i < 3; i++ {
		batch := gen.EdgeBatch(g, 40, true)
		applied := ApplyBatch(g, batch)
		st := sys.Update(applied)
		if st.Duration <= 0 {
			t.Fatal("no duration recorded")
		}
		want := Run(g, SSSP(0), 2)
		if !StatesClose(sys.States()[:g.Cap()], want, 1e-6) {
			t.Fatalf("batch %d: incremental != restart", i)
		}
	}
}

func TestAllSystemConstructors(t *testing.T) {
	g := demoGraph()
	minSystems := []System{
		NewLayph(g.Clone(), SSSP(0), Config{}),
		NewIngress(g.Clone(), SSSP(0), 2),
		NewKickStarter(g.Clone(), SSSP(0), 2),
		NewRisGraph(g.Clone(), SSSP(0), 2),
	}
	sumSystems := []System{
		NewLayph(g.Clone(), PageRank(0.85, 1e-8), Config{}),
		NewIngress(g.Clone(), PageRank(0.85, 1e-8), 2),
		NewGraphBolt(g.Clone(), PageRank(0.85, 1e-8)),
		NewDZiG(g.Clone(), PageRank(0.85, 1e-8)),
	}
	names := map[string]bool{}
	for _, s := range append(minSystems, sumSystems...) {
		if len(s.States()) < g.Cap() {
			t.Fatalf("%s: short state vector", s.Name())
		}
		names[s.Name()] = true
	}
	for _, want := range []string{"layph", "ingress", "kickstarter", "risgraph", "graphbolt", "dzig"} {
		if !names[want] {
			t.Fatalf("missing system %q (got %v)", want, names)
		}
	}
}

// differentialConfig sizes the cross-engine fuzzer for the CI budget:
// full size normally, trimmed under -short (the race-detector job).
func differentialConfig() enginetest.DifferentialConfig {
	if testing.Short() {
		return enginetest.ShortDifferentialConfig()
	}
	return enginetest.DefaultDifferentialConfig()
}

// layphFactory builds Layph at a fixed thread count for the fuzzer; the
// Threads=1 twin is the sequential determinism baseline, Threads=8
// exercises the parallel lower layer.
func layphFactory(threads int) enginetest.Factory {
	return func(g *graph.Graph, a algo.Algorithm) inc.System {
		return NewLayph(g, a, Config{Threads: threads})
	}
}

// TestDifferentialFuzzMin cross-checks Layph (sequential and parallel)
// against Restart and the min-scheme baselines (Ingress, KickStarter,
// RisGraph) on random add/del edge+vertex sequences, after every batch.
func TestDifferentialFuzzMin(t *testing.T) {
	engines := []enginetest.NamedFactory{
		{Name: "layph-t1", New: layphFactory(1)},
		{Name: "layph-t8", New: layphFactory(8)},
		{Name: "ingress", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewIngress(g, a, 2) }},
		{Name: "kickstarter", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewKickStarter(g, a, 2) }},
		{Name: "risgraph", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewRisGraph(g, a, 2) }},
	}
	for name, mk := range enginetest.MinAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunDifferential(t, engines, mk, differentialConfig())
		})
	}
}

// TestDifferentialFuzzSum is the sum-scheme counterpart: Layph vs Restart
// vs Ingress, GraphBolt and DZiG on PageRank/PHP.
func TestDifferentialFuzzSum(t *testing.T) {
	engines := []enginetest.NamedFactory{
		{Name: "layph-t1", New: layphFactory(1)},
		{Name: "layph-t8", New: layphFactory(8)},
		{Name: "ingress", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewIngress(g, a, 2) }},
		{Name: "graphbolt", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewGraphBolt(g, a) }},
		{Name: "dzig", New: func(g *graph.Graph, a algo.Algorithm) inc.System { return NewDZiG(g, a) }},
	}
	for name, mk := range enginetest.SumAlgorithms() {
		t.Run(name, func(t *testing.T) {
			enginetest.RunDifferential(t, engines, mk, differentialConfig())
		})
	}
}

// TestDifferentialFuzzCSR drives Layph (sequential and parallel) through
// the CSR stress schedule: a near-zero compaction threshold makes the
// flat-view overlay compact several times mid-stream, heavy vertex churn
// deletes vertices whose rows are still baked into the flat arrays
// (tombstoned deletes), and the forced per-batch compaction makes Layph's
// entry proxies rewire against freshly rebuilt arrays. CheckCSR pins
// view/live coherence after every batch; states are still cross-checked
// against the restart oracle as usual.
func TestDifferentialFuzzCSR(t *testing.T) {
	engines := []enginetest.NamedFactory{
		{Name: "layph-t1", New: layphFactory(1)},
		{Name: "layph-t8", New: layphFactory(8)},
	}
	algos := map[string]enginetest.AlgoMaker{
		"sssp":     enginetest.MinAlgorithms()["sssp"],
		"pagerank": enginetest.SumAlgorithms()["pagerank"],
	}
	for name, mk := range algos {
		t.Run(name, func(t *testing.T) {
			enginetest.RunDifferential(t, engines, mk, enginetest.CSRDifferentialConfig())
		})
	}
}

// layphAdaptiveFactory is layphFactory with adaptive community migration
// switched on: every update runs the incremental adjustment and migrates
// subgraph memberships in place.
func layphAdaptiveFactory(threads int) enginetest.Factory {
	return func(g *graph.Graph, a algo.Algorithm) inc.System {
		return NewLayph(g, a, Config{Threads: threads, AdaptiveCommunities: true})
	}
}

// TestDifferentialFuzzDrift drives the community-migration churn schedule:
// every batch rewires a vertex cluster into a different community
// neighborhood, so a frozen layering drifts while the adaptive engines
// split/merge subgraphs each batch. Adaptive Layph (sequential and
// parallel) and frozen Layph are all checked against the restart oracle
// after every batch.
func TestDifferentialFuzzDrift(t *testing.T) {
	engines := []enginetest.NamedFactory{
		{Name: "layph-adaptive-t1", New: layphAdaptiveFactory(1)},
		{Name: "layph-adaptive-t8", New: layphAdaptiveFactory(8)},
		{Name: "layph-frozen-t1", New: layphFactory(1)},
	}
	cfg := enginetest.DriftDifferentialConfig()
	if testing.Short() {
		cfg.Batches = 4
	}
	algos := map[string]enginetest.AlgoMaker{
		"sssp":     enginetest.MinAlgorithms()["sssp"],
		"pagerank": enginetest.SumAlgorithms()["pagerank"],
	}
	for name, mk := range algos {
		t.Run(name, func(t *testing.T) {
			enginetest.RunDifferential(t, engines, mk, cfg)
		})
	}
}

// TestAdaptiveMinDeterminism pins the determinism contract with adaptive
// communities enabled: at a fixed thread count, identical drift-churn
// inputs must produce byte-identical min-scheme states, run to run —
// including the incremental adjustment's move order and the forced
// subgraph rebuilds it causes.
func TestAdaptiveMinDeterminism(t *testing.T) {
	run := func() []float64 {
		g := demoGraph()
		sys := NewLayph(g, SSSP(0), Config{Threads: 4, AdaptiveCommunities: true})
		gen := NewBatchGenerator(99)
		for i := 0; i < 6; i++ {
			batch := gen.MigrationBatch(g, 12, 4, true)
			batch = append(batch, gen.EdgeBatch(g, 40, true)...)
			sys.Update(ApplyBatch(g, batch))
		}
		return append([]float64(nil), sys.States()[:g.Cap()]...)
	}
	want := run()
	for rep := 0; rep < 3; rep++ {
		got := run()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("rep %d: vertex %d = %v, want %v (byte-identical contract broken)", rep, v, got[v], want[v])
			}
		}
	}
}

func TestAlgorithmsExposed(t *testing.T) {
	for _, a := range []Algorithm{SSSP(0), BFS(0), PageRank(0.85, 1e-6), PHP(0, 0.8, 1e-6)} {
		if a.Name() == "" || a.Semiring() == nil {
			t.Fatalf("bad algorithm %T", a)
		}
	}
}

func TestReadEdgeListExposed(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 2\n1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestManualBatch(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	sys := NewIngress(g, BFS(0), 1)
	applied := ApplyBatch(g, Batch{
		{Kind: AddEdge, U: 1, V: 2, W: 1},
	})
	sys.Update(applied)
	if sys.States()[2] != 2 {
		t.Fatalf("x2 = %v", sys.States()[2])
	}
	UndoBatch(g, applied)
	if _, ok := g.HasEdge(1, 2); ok {
		t.Fatal("undo failed")
	}
}
