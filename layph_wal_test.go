package layph

// Crash-recovery acceptance test: a seeded update stream runs through a
// durable pipeline, and at EVERY micro-batch boundary the durability
// directory is snapshotted exactly as a kill -9 would leave it. Each
// crash image is then recovered with OpenStream and its served states
// must equal a from-scratch Restart run on the same prefix of updates.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"layph/internal/engine"
	"layph/internal/gen"
)

// copyDir snapshots a durability directory (flat, as wal keeps it).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRecoveryAtEveryBatchBoundary(t *testing.T) {
	nUpdates, batchSize, ckptEvery := 10000, 500, 8
	if testing.Short() {
		nUpdates, batchSize, ckptEvery = 2000, 500, 3
	}

	mkGraph := func() *Graph {
		return GenerateCommunityGraph(CommunityGraphConfig{
			Vertices: 1000, MeanCommunity: 30, IntraDegree: 7, InterDegree: 0.4,
			Weighted: true, Seed: 91,
		})
	}
	build := func(g *Graph) System {
		return NewLayph(g, SSSP(0), Config{Threads: 1})
	}

	g := mkGraph()
	seq := NewBatchGenerator(92).UnitSequence(g, nUpdates, true)

	dir := t.TempDir()
	images := t.TempDir()
	ds, err := OpenStream(g, build, DurableStreamConfig{
		Dir: dir,
		WAL: WALConfig{Sync: SyncOff, CheckpointEvery: ckptEvery, Meta: "algo=sssp system=layph"},
		// MaxDelay off: batches flush exactly on the count trigger, so
		// the boundary structure below is deterministic.
		Stream: StreamConfig{MaxBatch: batchSize, MaxDelay: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Recovery != nil {
		t.Fatalf("fresh dir reported recovery %+v", ds.Recovery)
	}

	// Drive the stream one micro-batch at a time; after each published
	// boundary, snapshot the WAL directory as crash image #seq.
	nBatches := nUpdates / batchSize
	for b := 0; b < nBatches; b++ {
		for _, u := range seq[b*batchSize : (b+1)*batchSize] {
			if err := ds.Stream.Push(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := ds.Stream.Drain(); err != nil {
			t.Fatal(err)
		}
		snap := ds.Stream.Query()
		if snap.Seq != uint64(b+1) || snap.Updates != uint64((b+1)*batchSize) {
			t.Fatalf("after batch %d: seq=%d updates=%d", b, snap.Seq, snap.Updates)
		}
		copyDir(t, dir, filepath.Join(images, fmt.Sprintf("crash-%03d", b+1)))
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: replay the same prefix onto a fresh copy of the graph
	// and Restart-compute the states at each boundary.
	refG := mkGraph()
	for b := 1; b <= nBatches; b++ {
		ApplyBatch(refG, Batch(seq[(b-1)*batchSize:b*batchSize]))
		want := engine.RunBatch(refG, SSSP(0), engine.Options{Workers: 1}).X

		img := filepath.Join(images, fmt.Sprintf("crash-%03d", b))
		rds, err := OpenStream(nil, build, DurableStreamConfig{
			Dir:    img,
			WAL:    WALConfig{Sync: SyncOff, CheckpointEvery: ckptEvery, Meta: "algo=sssp system=layph"},
			Stream: StreamConfig{MaxBatch: batchSize, MaxDelay: -1},
		})
		if err != nil {
			t.Fatalf("recover crash image %d: %v", b, err)
		}
		if rds.Recovery == nil {
			t.Fatalf("crash image %d recovered without recovery info", b)
		}
		if !rds.Recovery.StatesVerified {
			t.Fatalf("crash image %d: checkpoint states failed verification", b)
		}
		rsnap := rds.Stream.Query()
		if rsnap.Seq != uint64(b) || rsnap.Updates != uint64(b*batchSize) {
			t.Fatalf("crash image %d resumed at seq=%d updates=%d", b, rsnap.Seq, rsnap.Updates)
		}
		// The recovered tail length is the distance to the last checkpoint.
		if wantTail := int64(b % ckptEvery); rds.Recovery.ReplayedBatches != wantTail {
			t.Fatalf("crash image %d replayed %d batches, want %d", b, rds.Recovery.ReplayedBatches, wantTail)
		}
		if !StatesClose(rsnap.States, want, 1e-6) {
			t.Fatalf("crash image %d: recovered states diverge from Restart reference", b)
		}
		if err := rds.Close(); err != nil {
			t.Fatalf("close recovered stream %d: %v", b, err)
		}
	}

	// A recovered stream must also keep serving: recover the final image
	// once more and push fresh updates through it.
	final := filepath.Join(images, fmt.Sprintf("crash-%03d", nBatches))
	rds, err := OpenStream(nil, build, DurableStreamConfig{
		Dir:    final,
		WAL:    WALConfig{Sync: SyncOff, CheckpointEvery: ckptEvery, Meta: "algo=sssp system=layph"},
		Stream: StreamConfig{MaxBatch: 100, MaxDelay: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	more := NewBatchGenerator(93).UnitSequence(rds.Stream.Graph(), 100, true)
	for _, u := range more {
		if err := rds.Stream.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := rds.Stream.Drain(); err != nil {
		t.Fatal(err)
	}
	post := rds.Stream.Query()
	if post.Seq != uint64(nBatches)+1 || post.Updates != uint64(nUpdates+100) {
		t.Fatalf("post-recovery stream at seq=%d updates=%d", post.Seq, post.Updates)
	}
	ApplyBatch(refG, Batch(more))
	want := engine.RunBatch(refG, SSSP(0), engine.Options{Workers: 1}).X
	if !StatesClose(post.States, want, 1e-6) {
		t.Fatal("post-recovery pushes diverge from Restart reference")
	}
	if err := rds.Close(); err != nil {
		t.Fatal(err)
	}

	// And a clean Close leaves a replay-free image behind.
	rds2, err := OpenStream(nil, build, DurableStreamConfig{
		Dir:    final,
		WAL:    WALConfig{Sync: SyncOff, Meta: "algo=sssp system=layph"},
		Stream: StreamConfig{MaxBatch: 100, MaxDelay: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rds2.Recovery.ReplayedBatches != 0 {
		t.Fatalf("clean shutdown still replayed %d batches", rds2.Recovery.ReplayedBatches)
	}
	if !StatesClose(rds2.Stream.Query().States, want, 1e-6) {
		t.Fatal("clean-restart states diverge")
	}
	if err := rds2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryWithProxyVertices: Layph appends proxy/replica
// vertices past g.Cap() in its flat ID space, so its States() vector is
// longer than the graph. Checkpoints must persist only the real
// vertices (proxies are derived and rebuilt by NewLayph on recovery) —
// a flat-vector checkpoint used to fail its own round-trip with
// "N states but graph capacity M".
func TestCrashRecoveryWithProxyVertices(t *testing.T) {
	g := gen.Build(gen.PresetUK, 0.02)
	build := func(g *Graph) System {
		return NewLayph(g, SSSP(0), Config{Threads: 1})
	}
	if probe := build(g.Clone()); len(probe.States()) <= g.Cap() {
		t.Fatalf("preset no longer produces proxy vertices (states=%d cap=%d); pick another graph",
			len(probe.States()), g.Cap())
	}

	dir := t.TempDir()
	cfg := DurableStreamConfig{
		Dir:    dir,
		WAL:    WALConfig{Sync: SyncOff, CheckpointEvery: 2, Meta: "algo=sssp system=layph"},
		Stream: StreamConfig{MaxBatch: 200, MaxDelay: -1},
	}
	ds, err := OpenStream(g, build, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewBatchGenerator(95).UnitSequence(g, 1000, true)
	for _, u := range seq {
		if err := ds.Stream.Push(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Stream.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := ds.Stream.Query()
	img := t.TempDir()
	copyDir(t, dir, img) // crash image with 5 batches, checkpoint at 4
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Dir = img
	rds, err := OpenStream(nil, build, cfg)
	if err != nil {
		t.Fatalf("recover proxy-bearing stream: %v", err)
	}
	if rds.Recovery == nil || !rds.Recovery.StatesVerified {
		t.Fatalf("recovery info %+v: checkpoint states failed verification", rds.Recovery)
	}
	rsnap := rds.Stream.Query()
	if rsnap.Seq != snap.Seq || rsnap.Updates != snap.Updates {
		t.Fatalf("recovered at seq=%d updates=%d, want seq=%d updates=%d",
			rsnap.Seq, rsnap.Updates, snap.Seq, snap.Updates)
	}
	// The recovered engine serves the same states for the real vertices.
	// Proxy tails may differ in length/order across rebuilds, so compare
	// the graph-aligned prefix only.
	cap := rds.Stream.Graph().Cap()
	if !StatesClose(rsnap.States[:cap], snap.States[:cap], 1e-6) {
		t.Fatal("recovered real-vertex states diverge from pre-crash snapshot")
	}
	if err := rds.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStreamMetaMismatchRefused: resuming a directory under a
// different workload tag must fail instead of serving garbage.
func TestOpenStreamMetaMismatchRefused(t *testing.T) {
	g := GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 200, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.4,
		Weighted: true, Seed: 94,
	})
	dir := t.TempDir()
	build := func(g *Graph) System { return NewIngress(g, SSSP(0), 1) }
	ds, err := OpenStream(g, build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=sssp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStream(nil, build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=pagerank"},
	})
	if err == nil {
		t.Fatal("meta mismatch accepted")
	}
	// Same tag (or an empty one) resumes fine.
	ds2, err := OpenStream(nil, build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=sssp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStreamDirLocked verifies the exclusive-directory contract at
// the facade level: while a durable stream is live, a second OpenStream
// on the same directory fails with ErrWALLocked; after Close it succeeds.
func TestOpenStreamDirLocked(t *testing.T) {
	g := GenerateCommunityGraph(CommunityGraphConfig{
		Vertices: 200, MeanCommunity: 20, IntraDegree: 5, InterDegree: 0.4,
		Weighted: true, Seed: 95,
	})
	dir := t.TempDir()
	build := func(g *Graph) System { return NewIngress(g, SSSP(0), 1) }
	ds, err := OpenStream(g, build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=sssp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(g.Clone(), build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=sssp"},
	}); !errors.Is(err, ErrWALLocked) {
		t.Fatalf("second OpenStream: got err %v, want ErrWALLocked", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := OpenStream(nil, build, DurableStreamConfig{
		Dir: dir, WAL: WALConfig{Sync: SyncOff, Meta: "algo=sssp"},
	})
	if err != nil {
		t.Fatalf("OpenStream after Close: %v", err)
	}
	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
}
