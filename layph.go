// Package layph is a from-scratch Go reproduction of "Layph: Making Change
// Propagation Constraint in Incremental Graph Processing by Layering Graph"
// (ICDE 2023).
//
// Layph accelerates incremental graph computation by splitting the graph
// into two layers: a small upper-layer skeleton (boundary vertices of dense
// subgraphs, outliers, and shortcuts that teleport messages across dense
// subgraphs) and a lower layer of disjoint dense subgraphs. When the graph
// changes, iterative computation is confined to the skeleton plus the few
// subgraphs actually touched by the update batch.
//
// The package exposes:
//
//   - the graph substrate (NewGraph, ReadEdgeList, generators),
//   - the four paper workloads in asynchronous accumulative form
//     (SSSP, BFS, PageRank, PHP),
//   - batch execution (Run — the "Restart" baseline),
//   - Layph itself (NewLayph) and the five baseline incremental engines the
//     paper compares against (NewIngress, NewKickStarter, NewRisGraph,
//     NewGraphBolt, NewDZiG), all behind the System interface,
//   - update-stream helpers (NewBatchGenerator, ApplyBatch),
//   - a continuous streaming pipeline (NewStream) that micro-batches a
//     live feed of unit updates, drives any System incrementally, and
//     serves consistent read snapshots between batches.
//
// Quick start:
//
//	g := layph.GenerateCommunityGraph(layph.CommunityGraphConfig{
//		Vertices: 10000, MeanCommunity: 40, IntraDegree: 8,
//		InterDegree: 0.3, Weighted: true, Seed: 1,
//	})
//	sys := layph.NewLayph(g, layph.SSSP(0), layph.Config{})
//	gen := layph.NewBatchGenerator(42)
//	batch := gen.EdgeBatch(g, 5000, true)
//	applied := layph.ApplyBatch(g, batch)
//	stats := sys.Update(applied)
//	fmt.Println(stats.Duration, stats.Activations, sys.States()[7])
package layph

import (
	"context"
	"io"
	"time"

	"layph/internal/algo"
	"layph/internal/community"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/engine"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/graphbolt"
	"layph/internal/inc"
	"layph/internal/ingress"
	"layph/internal/kickstarter"
	"layph/internal/risgraph"
	"layph/internal/server"
	"layph/internal/shard"
	"layph/internal/stream"
)

// Graph is the mutable directed weighted graph all engines operate on.
type Graph = graph.Graph

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// Algorithm is a vertex-centric computation in the paper's accumulative
// model (message generation F, aggregation G, initial states and messages).
type Algorithm = algo.Algorithm

// System is an incremental engine: construct on a graph (runs the batch
// computation), then alternate ApplyBatch and Update.
type System = inc.System

// Stats describes one incremental update run.
type Stats = inc.Stats

// Batch is an ordered sequence of unit graph updates (ΔG).
type Batch = delta.Batch

// Update is one unit update within a batch.
type Update = delta.Update

// Applied records the net effect of a batch on a graph.
type Applied = delta.Applied

// Update kinds for constructing batches by hand.
const (
	AddEdge   = delta.AddEdge
	DelEdge   = delta.DelEdge
	AddVertex = delta.AddVertex
	DelVertex = delta.DelVertex
)

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadEdgeList parses "u v [w]" edge-list text into a graph.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// CommunityGraphConfig parameterizes GenerateCommunityGraph.
type CommunityGraphConfig = gen.CommunityConfig

// GenerateCommunityGraph builds a deterministic synthetic graph with planted
// dense communities — the structure Layph exploits.
func GenerateCommunityGraph(cfg CommunityGraphConfig) *Graph {
	g, _ := gen.CommunityGraph(cfg)
	return g
}

// SSSP returns single-source shortest paths rooted at source.
func SSSP(source VertexID) Algorithm { return algo.NewSSSP(source) }

// BFS returns hop distance from source.
func BFS(source VertexID) Algorithm { return algo.NewBFS(source) }

// PageRank returns PageRank with damping d and tolerance tol (the paper
// uses d=0.85, tol=1e-6).
func PageRank(d, tol float64) Algorithm { return algo.NewPageRank(d, tol) }

// PHP returns penalized hitting probability from source with decay d.
func PHP(source VertexID, d, tol float64) Algorithm { return algo.NewPHP(source, d, tol) }

// CC returns connected-component labels by min-label propagation: each
// vertex converges to the smallest vertex id that reaches it (the weakly
// connected component label on graphs with symmetric edges). It runs on
// the same min-semiring machinery as SSSP/BFS, so every min-scheme engine
// supports it.
func CC() Algorithm { return algo.NewCC() }

// Run executes the algorithm on the graph from scratch and returns the
// converged states — the paper's "Restart" baseline.
func Run(g *Graph, a Algorithm, threads int) []float64 {
	return engine.RunBatch(g, a, engine.Options{Workers: threads}).X
}

// Config tunes Layph construction (zero value = paper defaults).
type Config struct {
	// Threads is the parallelism of both layers (0 = GOMAXPROCS): the
	// worker count of the global upper-layer iteration and the size of
	// the shared pool that refines independent touched subgraphs
	// concurrently. Threads=1 runs strictly sequentially.
	//
	// Determinism contract: for a fixed Threads value, identical inputs
	// produce byte-identical state vectors for monotone min-semiring
	// algorithms (SSSP, BFS) — subgraph tasks are independent, min
	// folding is exact, and task results are merged in deterministic
	// order. For sum-semiring algorithms (PageRank, PHP) identical runs
	// agree within StatesClose tolerance: floating-point accumulation
	// order inside the multi-worker global iteration may differ at
	// rounding level. Across different Threads values, results agree
	// within the algorithm's convergence tolerance.
	Threads int
	// MaxCommunitySize is the paper's K (0 = ~0.1% of |V|).
	MaxCommunitySize int
	// ReplicationThreshold is the paper's R (0 = 3).
	ReplicationThreshold int
	// DisableReplication turns vertex replication off (Figure 8 ablation).
	DisableReplication bool
	// FusionChunksPerWorker tunes chunked task fusion: the lower-layer
	// fan-outs pack touched subgraphs into about this many edge-weight-
	// balanced chunks per pool worker instead of one task per subgraph
	// (0 = default 4). Chunk boundaries are a pure function of the sorted
	// subgraph list, the thread count and this knob, so the determinism
	// contract above is unaffected.
	FusionChunksPerWorker int
	// AdaptiveCommunities wires the incremental community adjustment into
	// every Update: vertex migrations, subgraph splits and merges are
	// applied in place (refreshing only the affected subgraphs' layer
	// structures) instead of freezing memberships until a full rebuild.
	// The adjustment and the structural migration are deterministic, so
	// the determinism contract above is unaffected. Pair with
	// StreamConfig.Relayer for the background full-re-layer backstop.
	AdaptiveCommunities bool
}

// NewLayph builds the layered graph for g under a (offline phase), runs the
// initial batch computation, and returns the incremental engine.
func NewLayph(g *Graph, a Algorithm, cfg Config) *core.Layph {
	return core.New(g, a, core.Options{
		Workers:               cfg.Threads,
		ReplicationThreshold:  cfg.ReplicationThreshold,
		DisableReplication:    cfg.DisableReplication,
		Community:             community.Config{MaxSize: cfg.MaxCommunitySize},
		FusionChunksPerWorker: cfg.FusionChunksPerWorker,
		AdaptiveCommunities:   cfg.AdaptiveCommunities,
	})
}

// NewIngress returns the Ingress baseline (memoization-free for PageRank and
// PHP, memoization-path for SSSP and BFS) — the engine Layph extends.
func NewIngress(g *Graph, a Algorithm, threads int) System {
	return ingress.New(g, a, engine.Options{Workers: threads})
}

// NewKickStarter returns the KickStarter baseline (SSSP/BFS only).
func NewKickStarter(g *Graph, a Algorithm, threads int) System {
	return kickstarter.New(g, a, engine.Options{Workers: threads})
}

// NewRisGraph returns the RisGraph baseline (SSSP/BFS only).
func NewRisGraph(g *Graph, a Algorithm, threads int) System {
	return risgraph.New(g, a, engine.Options{Workers: threads})
}

// NewGraphBolt returns the GraphBolt baseline (PageRank/PHP only).
func NewGraphBolt(g *Graph, a Algorithm) System {
	return graphbolt.New(g, a, graphbolt.ModePull)
}

// NewDZiG returns the DZiG baseline (PageRank/PHP only).
func NewDZiG(g *Graph, a Algorithm) System {
	return graphbolt.New(g, a, graphbolt.ModeSparseAware)
}

// BatchGenerator produces seeded random update batches.
type BatchGenerator = delta.Generator

// NewBatchGenerator returns a seeded batch generator.
func NewBatchGenerator(seed int64) *BatchGenerator { return delta.NewGenerator(seed) }

// ApplyBatch mutates g according to the batch and returns the net changes to
// hand to System.Update.
func ApplyBatch(g *Graph, b Batch) *Applied { return delta.Apply(g, b) }

// UndoBatch reverses the effects recorded by ApplyBatch.
func UndoBatch(g *Graph, a *Applied) { delta.Undo(g, a) }

// StatesClose reports whether two state vectors agree within atol (infinite
// entries must match exactly); useful for validating incremental results
// against Run.
func StatesClose(a, b []float64, atol float64) bool { return algo.StatesClose(a, b, atol) }

// Stream is an ordered micro-batching ingestion pipeline feeding one
// incremental engine: Push unit updates from any goroutine, Query
// consistent snapshots between micro-batches, Drain/Close to flush.
type Stream = stream.Stream

// StreamConfig tunes micro-batching, backpressure and metrics of a Stream
// (zero value = defaults: 1024-update batches, 50ms window, blocking
// backpressure).
type StreamConfig = stream.Config

// StreamSnapshot is an immutable consistent view of the streamed state.
type StreamSnapshot = stream.Snapshot

// StreamMetrics summarizes stream counters and rolling rates.
type StreamMetrics = stream.Metrics

// RelayerConfig configures the adaptive re-layering controller of a Stream
// (StreamConfig.Relayer): layering-quality signals from every update feed
// drift thresholds, and decayed quality triggers a background full
// re-layer swapped in atomically at a batch boundary.
type RelayerConfig = stream.RelayerConfig

// RelayerMetrics reports the drift controller's state (StreamMetrics.Relayer
// and the /metrics "relayer" block).
type RelayerMetrics = stream.RelayerMetrics

// LayphRelayer returns a RelayerConfig whose Build hook performs a full
// re-layer with NewLayph — fresh community detection (which compacts the
// id space the incremental adjustment left gaps in), layer construction
// and the initial run — using the given algorithm and engine config.
// Thresholds are zero (defaults); override on the returned value.
func LayphRelayer(a Algorithm, cfg Config) *RelayerConfig {
	return &RelayerConfig{
		Build: func(g *Graph) System { return NewLayph(g, a, cfg) },
	}
}

// Backpressure policies for StreamConfig.Policy.
const (
	// BlockWhenFull makes Stream.Push wait for queue space (lossless).
	BlockWhenFull = stream.Block
	// DropWhenFull makes Stream.Push fail fast with ErrStreamQueueFull.
	DropWhenFull = stream.Drop
)

// Streaming sentinel errors (compare with errors.Is).
var (
	// ErrStreamClosed reports a Push/Drain on a closed Stream.
	ErrStreamClosed = stream.ErrClosed
	// ErrStreamQueueFull reports an update dropped under DropWhenFull.
	ErrStreamQueueFull = stream.ErrQueueFull
)

// NewStream starts a streaming pipeline over g driving sys (construct sys
// on g first, e.g. with NewLayph). After NewStream, mutate the graph only
// by pushing updates into the stream.
func NewStream(g *Graph, sys System, cfg StreamConfig) *Stream {
	return stream.New(g, sys, cfg)
}

// ShardedGroup is the multi-shard execution mode: K community-partitioned
// engines exchanging boundary state (see internal/shard). It implements
// System.
type ShardedGroup = shard.Group

// ShardInfo is a per-shard summary exposed through ShardedGroup.ShardInfos
// and the HTTP /metrics endpoint.
type ShardInfo = shard.Info

// ShardConfig tunes sharded execution.
type ShardConfig struct {
	// Shards is K, the number of partitioned engines (0 or 1 = one).
	Shards int
	// Threads is the worker count of each shard engine (0 = GOMAXPROCS).
	Threads int
	// MaxCommunitySize caps community size for the shard packing
	// (0 = the paper's default, ~0.1% of |V|).
	MaxCommunitySize int
}

// NewShardedSystem partitions g into cfg.Shards community-aware shards,
// runs one incremental engine per shard, and routes cross-shard edges
// through boundary vertices exchanged at skeleton level each batch. The
// determinism contract matches Config.Threads: with Shards and Threads
// fixed, min-semiring results are byte-identical across runs; sum-semiring
// results (and results across different shard counts) agree within the
// algorithm's convergence tolerance.
func NewShardedSystem(g *Graph, a Algorithm, cfg ShardConfig) *ShardedGroup {
	return shard.New(g, a, shard.Options{
		Shards:    cfg.Shards,
		Threads:   cfg.Threads,
		Community: community.Config{MaxSize: cfg.MaxCommunitySize},
	})
}

// NewShardedStream is NewStream over a sharded execution group: incoming
// micro-batches are split by destination shard, the shard engines run
// concurrently, and every published snapshot is the deterministic merge of
// one global exchange round — so /query reads spanning shards are always
// mutually consistent.
func NewShardedStream(g *Graph, a Algorithm, cfg ShardConfig, scfg StreamConfig) *Stream {
	return stream.New(g, NewShardedSystem(g, a, cfg), scfg)
}

// ParseUpdate parses one line of the text wire format used by `layph
// serve` ("a u v [w]", "d u v", "av u", "dv u").
func ParseUpdate(line string) (Update, error) { return delta.ParseUpdate(line) }

// ReadUpdates parses a whole text update stream into a Batch.
func ReadUpdates(r io.Reader) (Batch, error) { return delta.ReadUpdates(r) }

// WriteUpdates renders a batch in the text wire format.
func WriteUpdates(w io.Writer, b Batch) error { return delta.WriteUpdates(w, b) }

// Server is the HTTP/JSON daemon over a Stream: POST /push ingests
// update batches, GET /query reads point states and top-k from the
// current snapshot, GET /metrics and GET /healthz expose liveness and
// rolling throughput. See `layph serve -listen`.
type Server = server.Server

// ServerConfig tunes a Server (zero value = defaults: 127.0.0.1:8090,
// 8 MiB request bodies, 1024 vertices per query, top-k <= 100).
type ServerConfig = server.Config

// NewServer wraps st in an HTTP daemon without starting a listener; use
// its Handler for custom mux mounting, or Start/Shutdown directly.
func NewServer(st *Stream, cfg ServerConfig) *Server { return server.New(st, cfg) }

// Serve runs an HTTP daemon over st until ctx is cancelled, then shuts
// down gracefully: the stream drains (acknowledged pushes reach a final
// snapshot) before the listener stops. The stream is closed on return.
func Serve(ctx context.Context, st *Stream, cfg ServerConfig) error {
	srv := server.New(st, cfg)
	if err := srv.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
