// Command layph-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	layph-bench -list
//	layph-bench -experiment fig1
//	layph-bench -experiment all -scale 1.0 -threads 16
//
// Each experiment prints rows shaped like the corresponding plot of the
// paper's evaluation section; EXPERIMENTS.md records a captured run next to
// the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"layph/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiments and exit")
		scale      = flag.Float64("scale", 0, "dataset scale factor (0 = quick default)")
		threads    = flag.Int("threads", 0, "worker threads (0 = default)")
		batches    = flag.Int("batches", 0, "update batches per measurement (0 = default)")
		batchSize  = flag.Int("batchsize", 0, "|dG| per batch (0 = paper default 5000)")
		seed       = flag.Int64("seed", 0, "workload seed (0 = default)")
		summary    = flag.Bool("summary", false, "also print the headline speedup summary")
		perfsmoke  = flag.Bool("perfsmoke", false, "run the t=1 vs t=4 parallel perf smoke and exit nonzero if parallel loses to sequential (self-skips when GOMAXPROCS < 4)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	o := bench.Options{
		Scale: *scale, Threads: *threads, Batches: *batches,
		BatchSize: *batchSize, Seed: *seed,
	}

	if *perfsmoke {
		os.Exit(bench.PerfSmoke(os.Stdout, o))
	}

	run := func(e bench.Experiment) {
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		e.Run(os.Stdout, o)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range bench.All() {
			run(e)
		}
	} else {
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *experiment)
			os.Exit(2)
		}
		run(e)
	}
	if *summary {
		fmt.Println("== headline speedups (Layph vs competitors, Fig 5 matrix) ==")
		bench.SpeedupSummary(os.Stdout, o)
	}
}
