// Command graphgen generates the synthetic datasets used as stand-ins for
// the paper's Table I graphs and writes them as edge lists.
//
// Usage:
//
//	graphgen -preset UK -scale 0.5 > uk.el
//	graphgen -vertices 50000 -mean-community 40 -intra 8 -inter 0.3 -seed 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"layph/internal/gen"
	"layph/internal/graph"
)

func main() {
	var (
		preset   = flag.String("preset", "", "preset name: UK, IT, SK, WB (overrides custom flags)")
		scale    = flag.Float64("scale", 1.0, "preset scale factor")
		vertices = flag.Int("vertices", 10000, "custom: vertex count")
		mean     = flag.Int("mean-community", 40, "custom: mean community size")
		intra    = flag.Float64("intra", 8, "custom: intra-community degree")
		inter    = flag.Float64("inter", 0.3, "custom: inter-community degree")
		hubs     = flag.Float64("hubs", 0.01, "custom: hub fraction")
		weighted = flag.Bool("weighted", true, "random weights in [1,10)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	if *preset != "" {
		g = gen.Build(gen.Preset(*preset), *scale)
	} else {
		g, _ = gen.CommunityGraph(gen.CommunityConfig{
			Vertices:      *vertices,
			MeanCommunity: *mean,
			IntraDegree:   *intra,
			InterDegree:   *inter,
			HubFraction:   *hubs,
			HubDegree:     30,
			Weighted:      *weighted,
			Seed:          *seed,
		})
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	if err := g.WriteEdgeList(bw); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", graph.ComputeStats(g))
}
