// Command layph runs an algorithm incrementally over a graph, either
// replaying random update batches (the default mode) or serving a
// continuous update stream through the micro-batching pipeline (`layph
// serve`).
//
// Usage:
//
//	layph -preset UK -scale 0.25 -algo sssp -batches 5 -batchsize 5000
//	layph -graph web.el -algo pagerank -system ingress
//	layph serve -preset UK -scale 0.05 -algo sssp -rand 20000
//	graphgen ... | layph serve -graph web.el -algo sssp -input -
package main

import (
	"flag"
	"fmt"
	"os"

	"layph/internal/algo"
	"layph/internal/bench"
	"layph/internal/core"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/shard"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	runMain(os.Args[1:])
}

// engineFlags are the graph/workload/engine selection flags shared by
// the replay and serve modes.
type engineFlags struct {
	graphPath, preset, algoName, system string
	scale                               float64
	source                              uint
	threads                             int
	shards                              int
	adaptive                            bool
}

func registerEngineFlags(fs *flag.FlagSet) *engineFlags {
	ef := &engineFlags{}
	fs.StringVar(&ef.graphPath, "graph", "", "edge-list file (overrides -preset)")
	fs.StringVar(&ef.preset, "preset", "UK", "generated preset: UK, IT, SK, WB")
	fs.Float64Var(&ef.scale, "scale", 0.25, "preset scale factor")
	fs.StringVar(&ef.algoName, "algo", "sssp", "sssp | bfs | cc | pagerank | php")
	fs.StringVar(&ef.system, "system", "layph", "layph | ingress | kickstarter | risgraph | graphbolt | dzig | restart")
	fs.UintVar(&ef.source, "source", 0, "source vertex for sssp/bfs/php")
	fs.IntVar(&ef.threads, "threads", 0, "worker threads (0 = GOMAXPROCS)")
	fs.IntVar(&ef.shards, "shards", 0, "community-aware shard count (0 = unsharded; >1 overrides -system)")
	fs.BoolVar(&ef.adaptive, "adaptive", false, "adaptive community migration: split/merge subgraphs incrementally on every update (requires -system layph, unsharded)")
	return ef
}

// build loads the selected graph, prints its stats, and constructs the
// selected engine over it (running the initial batch computation).
func (ef *engineFlags) build() (*graph.Graph, inc.System, *core.Layph) {
	g := ef.loadGraph()
	sys, layered := ef.buildOn(g)
	return g, sys, layered
}

// loadGraph loads the selected graph and prints its stats.
func (ef *engineFlags) loadGraph() *graph.Graph {
	g, err := loadGraph(ef.graphPath, ef.preset, ef.scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(g))
	return g
}

// buildOn constructs the selected engine over an existing graph (running
// the initial batch computation) — used by the durable serve path, where
// the graph may come from a recovered checkpoint instead of -graph.
func (ef *engineFlags) buildOn(g *graph.Graph) (inc.System, *core.Layph) {
	mk := makeAlgo(ef.algoName, graph.VertexID(ef.source))
	if ef.shards > 1 {
		if ef.adaptive {
			fmt.Fprintln(os.Stderr, "-adaptive is not supported with -shards")
			os.Exit(2)
		}
		return shard.New(g, mk(), shard.Options{Shards: ef.shards, Threads: ef.threads}), nil
	}
	if ef.adaptive {
		if bench.SystemKind(ef.system) != bench.Layph {
			fmt.Fprintln(os.Stderr, "-adaptive requires -system layph")
			os.Exit(2)
		}
		l := core.New(g, mk(), core.Options{Workers: ef.threads, AdaptiveCommunities: true})
		return l, l
	}
	return bench.Build(bench.SystemKind(ef.system), g, mk, ef.threads)
}

// runMain is the original replay mode: pre-sized random batches, one
// Update per batch, per-batch statistics.
func runMain(args []string) {
	fs := flag.NewFlagSet("layph", flag.ExitOnError)
	ef := registerEngineFlags(fs)
	var (
		batches   = fs.Int("batches", 5, "number of update batches")
		batchSize = fs.Int("batchsize", 5000, "|dG| per batch")
		seed      = fs.Int64("seed", 42, "update stream seed")
	)
	fs.Parse(args)

	g, sys, layered := ef.build()
	if layered != nil {
		st := layered.OfflineStats
		fmt.Printf("offline: build=%.3fs initial=%.3fs subgraphs=%d proxies=%d shortcuts=%d\n",
			st.BuildSeconds, st.InitialSeconds, st.DenseSubgraphs, st.Proxies, st.ShortcutCount)
		upV, upE := layered.UpperLayerSize()
		fmt.Printf("skeleton: %d vertices, %d edges (graph: %d / %d)\n",
			upV, upE, g.NumVertices(), g.NumEdges())
	}

	genr := delta.NewGenerator(*seed)
	for i := 0; i < *batches; i++ {
		batch := genr.EdgeBatch(g, *batchSize, true)
		applied := delta.Apply(g, batch)
		st := sys.Update(applied)
		fmt.Printf("batch %2d: %8v  activations=%-10d rounds=%-4d resets=%d\n",
			i+1, st.Duration.Round(1000), st.Activations, st.Rounds, st.Resets)
		if layered != nil {
			fmt.Printf("          phases: %s\n", layered.LastPhases)
		}
	}
}

// makeAlgo returns a factory for the named workload (systems must not
// share algorithm instances).
func makeAlgo(name string, source graph.VertexID) bench.AlgoMaker {
	return func() algo.Algorithm {
		switch name {
		case "sssp":
			return algo.NewSSSP(source)
		case "bfs":
			return algo.NewBFS(source)
		case "cc":
			return algo.NewCC()
		case "pagerank":
			return algo.NewPageRank(0.85, 1e-6)
		case "php":
			return algo.NewPHP(source, 0.8, 1e-6)
		}
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", name)
		os.Exit(2)
		return nil
	}
}

func loadGraph(path, preset string, scale float64) (*graph.Graph, error) {
	if path == "" {
		return gen.Build(gen.Preset(preset), scale), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}
