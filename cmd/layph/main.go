// Command layph runs an algorithm incrementally over a graph with a stream
// of random update batches, printing per-batch statistics — a quick way to
// watch the layered engine work on a real edge list or a generated preset.
//
// Usage:
//
//	layph -preset UK -scale 0.25 -algo sssp -batches 5 -batchsize 5000
//	layph -graph web.el -algo pagerank -system ingress
package main

import (
	"flag"
	"fmt"
	"os"

	"layph/internal/algo"
	"layph/internal/bench"
	"layph/internal/delta"
	"layph/internal/gen"
	"layph/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (overrides -preset)")
		preset    = flag.String("preset", "UK", "generated preset: UK, IT, SK, WB")
		scale     = flag.Float64("scale", 0.25, "preset scale factor")
		algoName  = flag.String("algo", "sssp", "sssp | bfs | pagerank | php")
		system    = flag.String("system", "layph", "layph | ingress | kickstarter | risgraph | graphbolt | dzig | restart")
		source    = flag.Uint("source", 0, "source vertex for sssp/bfs/php")
		batches   = flag.Int("batches", 5, "number of update batches")
		batchSize = flag.Int("batchsize", 5000, "|dG| per batch")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 42, "update stream seed")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *preset, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(g))

	mk := func() algo.Algorithm {
		switch *algoName {
		case "sssp":
			return algo.NewSSSP(graph.VertexID(*source))
		case "bfs":
			return algo.NewBFS(graph.VertexID(*source))
		case "pagerank":
			return algo.NewPageRank(0.85, 1e-6)
		case "php":
			return algo.NewPHP(graph.VertexID(*source), 0.8, 1e-6)
		}
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algoName)
		os.Exit(2)
		return nil
	}

	sys, layered := bench.Build(bench.SystemKind(*system), g, mk, *threads)
	if layered != nil {
		st := layered.OfflineStats
		fmt.Printf("offline: build=%.3fs initial=%.3fs subgraphs=%d proxies=%d shortcuts=%d\n",
			st.BuildSeconds, st.InitialSeconds, st.DenseSubgraphs, st.Proxies, st.ShortcutCount)
		upV, upE := layered.UpperLayerSize()
		fmt.Printf("skeleton: %d vertices, %d edges (graph: %d / %d)\n",
			upV, upE, g.NumVertices(), g.NumEdges())
	}

	genr := delta.NewGenerator(*seed)
	for i := 0; i < *batches; i++ {
		batch := genr.EdgeBatch(g, *batchSize, true)
		applied := delta.Apply(g, batch)
		st := sys.Update(applied)
		fmt.Printf("batch %2d: %8v  activations=%-10d rounds=%-4d resets=%d\n",
			i+1, st.Duration.Round(1000), st.Activations, st.Rounds, st.Resets)
		if layered != nil {
			fmt.Printf("          phases: %s\n", layered.LastPhases)
		}
	}
}

func loadGraph(path, preset string, scale float64) (*graph.Graph, error) {
	if path == "" {
		return gen.Build(gen.Preset(preset), scale), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}
