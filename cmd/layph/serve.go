package main

// layph serve: continuous ingestion mode. Updates are read from a text
// stream (stdin or a file; see delta.ParseUpdate for the format) or
// synthesized with -rand, pushed into the micro-batching pipeline of
// internal/stream, and applied incrementally by the chosen engine while a
// reporter goroutine prints rolling state and throughput.
//
// With -listen ADDR the process becomes a daemon: an HTTP API
// (internal/server) accepts POST /push batches and serves GET /query
// reads from live snapshots, alongside any -input/-rand feed, until
// SIGINT/SIGTERM triggers a graceful drain and shutdown.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"layph"
	"layph/internal/delta"
	"layph/internal/graph"
	"layph/internal/inc"
	"layph/internal/server"
	"layph/internal/shard"
	"layph/internal/stream"
	"layph/internal/wal"
)

func serveMain(args []string) {
	fs := flag.NewFlagSet("layph serve", flag.ExitOnError)
	ef := registerEngineFlags(fs)
	var (
		input     = fs.String("input", "", "update stream file ('-' = stdin; empty requires -rand or -listen)")
		randN     = fs.Int("rand", 0, "synthesize this many random updates instead of reading -input")
		seed      = fs.Int64("seed", 42, "seed for -rand")
		maxBatch  = fs.Int("batch", 1024, "micro-batch count trigger")
		maxDelay  = fs.Duration("window", 50*time.Millisecond, "micro-batch time trigger")
		queueCap  = fs.Int("queue", 0, "bounded queue capacity (0 = 4*batch)")
		policy    = fs.String("policy", "block", "backpressure on full queue: block | drop")
		report    = fs.Duration("report", time.Second, "progress report interval (0 disables reports)")
		top       = fs.Int("top", 3, "sample this many vertex states in reports")
		maxVertex = fs.Uint("maxvertex", 0, "reject updates referencing vertex ids >= this (0 = |V| + 1048576)")
		listen    = fs.String("listen", "", "serve the HTTP API on this address (e.g. 127.0.0.1:8090) until SIGINT")

		relayer        = fs.Bool("relayer", false, "adaptive re-layering drift controller: background full re-layer + atomic swap when layering quality decays (pairs with -adaptive)")
		relayerTouched = fs.Float64("relayer-touched", 0, "touched-subgraph-ratio EWMA trigger threshold (0 = 0.35)")
		relayerGrowth  = fs.Float64("relayer-skeleton-growth", 0, "skeleton-fraction growth factor over the post-build baseline that triggers (0 = 1.5)")
		relayerDead    = fs.Float64("relayer-dead", 0, "dead community-id fraction that triggers (0 = 0.5)")
		relayerMinB    = fs.Int("relayer-min-batches", 0, "cooldown: applied batches after a (re)build before triggers re-arm (0 = 16)")
		relayerSwapLag = fs.Int("relayer-swap-lag", 0, "applied batches between trigger and the deterministic swap boundary (0 = 8)")

		walDir        = fs.String("wal", "", "durability directory: write-ahead log + checkpoints; a restart on the same directory recovers and resumes")
		ckptEvery     = fs.Int("checkpoint-every", 64, "cut a snapshot checkpoint after this many micro-batches (with -wal)")
		fsync         = fs.String("fsync", "batch", "WAL fsync policy: batch | interval | off (with -wal)")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "fsync period for -fsync interval")
	)
	fs.Parse(args)

	if *listen == "" && *input == "" && *randN <= 0 {
		fmt.Fprintln(os.Stderr, "serve: need -input FILE, -input -, -rand N, or -listen ADDR")
		os.Exit(2)
	}
	var pol stream.Policy
	switch *policy {
	case "block":
		pol = stream.Block
	case "drop":
		pol = stream.Drop
	default:
		fmt.Fprintf(os.Stderr, "serve: unknown -policy %q\n", *policy)
		os.Exit(2)
	}

	scfg := stream.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay,
		QueueCap: *queueCap, Policy: pol,
	}
	if *relayer {
		scfg.Relayer = &stream.RelayerConfig{
			// The rebuild hook is the same construction path as the serving
			// engine, so a swap lands an identically-configured engine (with
			// fresh community detection) over the cloned graph.
			Build: func(g2 *graph.Graph) inc.System {
				sys, _ := ef.buildOn(g2)
				return sys
			},
			TouchedRatioThreshold: *relayerTouched,
			SkeletonGrowthFactor:  *relayerGrowth,
			DeadCommunityFraction: *relayerDead,
			MinBatches:            *relayerMinB,
			SwapLagBatches:        *relayerSwapLag,
		}
	}

	buildStart := time.Now()
	var (
		s   *stream.Stream
		g   *graph.Graph
		dur *layph.DurableStream
	)
	if *walDir != "" {
		syncPol, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(2)
		}
		// The workload tag pins the directory to this algo/engine/source
		// combination; resuming it under a different one is refused.
		meta := fmt.Sprintf("algo=%s system=%s source=%d", ef.algoName, ef.system, ef.source)
		if ef.shards > 1 {
			meta += fmt.Sprintf(" shards=%d", ef.shards)
		}
		if hasDurableState(*walDir) {
			fmt.Printf("wal: recovering from %s (-graph/-preset ignored)\n", *walDir)
		} else {
			g = ef.loadGraph()
		}
		dur, err = layph.OpenStream(g, func(g *graph.Graph) inc.System {
			sys, _ := ef.buildOn(g)
			return sys
		}, layph.DurableStreamConfig{
			Dir: *walDir,
			WAL: wal.Config{
				Sync: syncPol, Interval: *fsyncInterval,
				CheckpointEvery: *ckptEvery, Meta: meta,
			},
			Stream: scfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		s, g = dur.Stream, dur.Stream.Graph()
		if r := dur.Recovery; r != nil {
			fmt.Printf("wal: recovered to seq=%d updates=%d (checkpoint seq=%d + %d batches/%d updates replayed; load=%.0fms replay=%.0fms states-verified=%v)\n",
				r.Seq, r.Updates, r.CheckpointSeq, r.ReplayedBatches, r.ReplayedUpdates,
				r.LoadMillis, r.ReplayMillis, r.StatesVerified)
			if r.DiscardedBytes > 0 {
				fmt.Printf("wal: discarded %d bytes of torn log tail\n", r.DiscardedBytes)
			}
		}
		fmt.Printf("engine: %s ready in %v (durable, fsync=%s, checkpoint every %d batches)\n",
			s.System().Name(), time.Since(buildStart).Round(time.Millisecond), syncPol, *ckptEvery)
	} else {
		g0, sys, _ := ef.build()
		g = g0
		fmt.Printf("engine: %s ready in %v (initial batch computation done)\n",
			sys.Name(), time.Since(buildStart).Round(time.Millisecond))
		s = stream.New(g, sys, scfg)
	}

	stopReport := make(chan struct{})
	reportDone := make(chan struct{})
	if *report > 0 {
		go func() {
			defer close(reportDone)
			tick := time.NewTicker(*report)
			defer tick.Stop()
			for {
				select {
				case <-stopReport:
					return
				case <-tick.C:
					printReport(s, *top)
				}
			}
		}()
	} else {
		close(reportDone)
	}

	idCap := graph.VertexID(*maxVertex)
	if idCap == 0 {
		idCap = graph.VertexID(g.Cap() + 1<<20)
	}

	if *listen != "" {
		daemonMain(s, dur, *listen, idCap, *input, *randN, *seed, g, stopReport, reportDone, *top)
		return
	}

	pushed, dropped := feed(s, *input, *randN, *seed, g, idCap)

	if err := s.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	close(stopReport)
	<-reportDone
	s.Close()
	closeDurable(dur)

	fmt.Printf("done: pushed=%d dropped=%d\n", pushed, dropped)
	printFinal(s, *top)
}

// hasDurableState reports whether a WAL directory already holds
// checkpoints or segments (i.e. a restart should recover, not load a
// fresh graph).
func hasDurableState(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "checkpoint-") || strings.HasPrefix(e.Name(), "wal-") {
			return true
		}
	}
	return false
}

// closeDurable cuts the final checkpoint and closes the WAL (nil-safe),
// printing the log's lifetime totals.
func closeDurable(dur *layph.DurableStream) {
	if dur == nil {
		return
	}
	if err := dur.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wal:", err)
	}
	st := dur.Log.Stats()
	fmt.Printf("wal totals: batches=%d updates=%d bytes=%d fsyncs=%d checkpoints=%d (%.3fs) last-checkpoint-seq=%d\n",
		st.Batches, st.Updates, st.Bytes, st.Fsyncs, st.Checkpoints, st.CheckpointSeconds, st.LastCheckpointSeq)
}

// daemonMain runs serve's -listen mode: start the HTTP API, keep any
// -input/-rand feed running in the background, and block until
// SIGINT/SIGTERM, then drain the stream and stop the listener.
func daemonMain(s *stream.Stream, dur *layph.DurableStream, addr string, idCap graph.VertexID,
	input string, randN int, seed int64, g *graph.Graph,
	stopReport, reportDone chan struct{}, top int) {
	srv := server.New(s, server.Config{Addr: addr, MaxVertexID: idCap})
	if dur != nil {
		srv.AttachDurability(dur.Log, dur.Recovery)
	}
	if gr, ok := s.System().(server.ShardSource); ok {
		srv.AttachShards(gr)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on http://%s\n", srv.Addr())

	// Any local feed runs alongside the HTTP writers; it stops on its
	// own when the stream closes underneath it during shutdown.
	if input != "" || randN > 0 {
		go feed(s, input, randN, seed, g, idCap)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	signal.Stop(sig)
	fmt.Printf("%s: draining stream and shutting down\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		os.Exit(1)
	}
	closeDurable(dur)
	close(stopReport)
	<-reportDone
	printFinal(s, top)
}

// printFinal prints the end-of-run summary from the stream's final
// snapshot and metrics (valid after Close: snapshots stay readable).
func printFinal(s *stream.Stream, top int) {
	snap := s.Query()
	m := s.Metrics()
	fmt.Printf("stream totals: accepted=%d dropped=%d applied=%d batches=%d\n",
		m.Accepted, m.Dropped, m.Applied, m.Batches)
	fmt.Printf("engine totals: activations=%d rounds=%d resets=%d update-time=%v subgraph-tasks=%d pool-util=%.0f%%\n",
		m.Engine.Activations, m.Engine.Rounds, m.Engine.Resets, m.Engine.Duration.Round(time.Microsecond),
		m.Engine.SubgraphsParallel, 100*m.Engine.PoolUtilization)
	if gr, ok := s.System().(interface{ ShardInfos() []shard.Info }); ok {
		fmt.Printf("shard totals: shards=%d exchange-rounds=%d boundary-pins=%d\n",
			len(gr.ShardInfos()), m.Engine.ShardRounds, m.Engine.BoundaryPins)
	}
	if rl := m.Relayer; rl.Enabled {
		fmt.Printf("relayer totals: full-relayers=%d replayed-batches=%d touched-ewma=%.3f skeleton=%.3f/%.3f moves=%d last-trigger=%s\n",
			rl.FullRelayers, rl.ReplayedBatches, rl.TouchedRatioEWMA,
			rl.SkeletonFraction, rl.SkeletonBaseline, rl.MembershipMoves, rl.LastTrigger)
	}
	fmt.Printf("final snapshot: seq=%d updates=%d %s\n", snap.Seq, snap.Updates, sampleStates(snap.States, top))
}

// feed pushes the whole update source into the stream, returning how many
// updates were pushed and dropped. Updates referencing vertex ids at or
// above idCap are rejected: a single hostile "av 4294967295" line would
// otherwise make the graph (and every engine state vector) grow to that
// id and OOM the server. A closed stream (daemon shutdown racing the
// feed) ends the feed quietly instead of failing the process.
func feed(s *stream.Stream, input string, randN int, seed int64, g *graph.Graph, idCap graph.VertexID) (pushed, dropped int64) {
	var errStop = errors.New("stream closed")
	push := func(u delta.Update) error {
		switch err := s.Push(u); {
		case err == nil:
			pushed++
		case errors.Is(err, stream.ErrQueueFull):
			dropped++
		case errors.Is(err, stream.ErrClosed):
			return errStop
		default:
			fmt.Fprintln(os.Stderr, "push:", err)
			os.Exit(1)
		}
		return nil
	}

	if randN > 0 {
		for _, u := range delta.NewGenerator(seed).UnitSequence(g, randN, true) {
			if push(u) != nil {
				return pushed, dropped
			}
		}
		return pushed, dropped
	}

	var r io.Reader
	if input == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	err := delta.ForEachUpdate(r, func(lineno int, u delta.Update, perr error) error {
		if perr != nil {
			fmt.Fprintf(os.Stderr, "line %d: %v (skipped)\n", lineno, perr)
			return nil
		}
		isEdge := u.Kind == delta.AddEdge || u.Kind == delta.DelEdge
		if u.U >= idCap || (isEdge && u.V >= idCap) {
			fmt.Fprintf(os.Stderr, "line %d: vertex id beyond -maxvertex %d (skipped)\n", lineno, idCap)
			return nil
		}
		return push(u)
	})
	if err != nil && !errors.Is(err, errStop) {
		fmt.Fprintln(os.Stderr, "read:", err)
	}
	return pushed, dropped
}

func printReport(s *stream.Stream, top int) {
	snap := s.Query()
	m := s.Metrics()
	relayers := ""
	if m.Relayer.Enabled {
		relayers = fmt.Sprintf(" relayers=%d", m.Relayer.FullRelayers)
	}
	fmt.Printf("t=%s seq=%-6d applied=%-9d rate=%.0f/s batch-lat=%v subs-par=%d pool-util=%.0f%%%s %s\n",
		time.Now().Format("15:04:05"), snap.Seq, m.Applied, m.Throughput,
		m.MeanBatchLatency.Round(time.Microsecond), m.Engine.SubgraphsParallel,
		100*m.Engine.PoolUtilization, relayers, sampleStates(snap.States, top))
}

func sampleStates(x []float64, top int) string {
	if top <= 0 {
		return ""
	}
	parts := make([]string, 0, top)
	for i := 0; i < top && i < len(x); i++ {
		parts = append(parts, fmt.Sprintf("x[%d]=%.4g", i, x[i]))
	}
	return strings.Join(parts, " ")
}
